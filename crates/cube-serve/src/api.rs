//! Route table and request handlers.
//!
//! | Method | Path                       | Body            | Returns |
//! |--------|----------------------------|-----------------|---------|
//! | PUT    | `/experiments`             | `.cube`/`.cubec`| JSON id |
//! | GET    | `/experiments/{id}/stats`  | —               | JSON    |
//! | GET    | `/experiments/{id}/lint`   | —               | JSON    |
//! | POST   | `/check`                   | expr text/JSON  | JSON    |
//! | POST   | `/eval`                    | expr text/JSON  | `.cube` |
//! | GET    | `/stats`                   | —               | JSON    |
//! | GET    | `/healthz`                 | —               | JSON    |
//!
//! `/eval` responses are byte-identical to the files `cube stats` /
//! `cube diff` write: the CUBE body followed by the checksum footer
//! line. That identity is what the CI serve gate diffs, and it holds
//! on cache hits too — the `X-Cache` header says which path produced
//! the bytes.
//!
//! Every `/eval` runs the static checker ([`cube_algebra::check()`]) as
//! a mandatory pre-flight after the cache lookup: operands are opened
//! metadata-only (the lazy `.cubec` path — no severity pages are read)
//! and a statically-invalid expression is rejected with its `A0xx`
//! code and full diagnostics array *before* any evaluation work or
//! cache insertion. `/check` exposes the same analysis directly,
//! returning the full report (diagnostics, rewrite, cost estimate) in
//! the same JSON shape `cube check --format json` prints.

use crate::cache::lock_recover;
use crate::error::ServeError;
use crate::http::{Deadline, Request, Response};
use crate::json::{extract_string_field, json_string};
use crate::server::Shared;
use cube_algebra::{
    check, parse_expr, render_expr, BatchOperand, BatchPlan, Expr, MergeOptions, OperandFacts,
    ParsedExpr, PlanTables,
};
use cube_model::Provenance;
use cube_store::ColumnarExperiment;
use cube_xml::footer::{crc32, footer_line};
use cube_xml::write_experiment;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Dispatches one request, converting every failure into its JSON
/// error body. Never panics the worker: unknown routes are 404, wrong
/// methods 405. `deadline` is the request's remaining time budget;
/// handlers doing repository work check it at phase boundaries and
/// surface expiry as `504 deadline_exceeded`.
pub fn handle(shared: &Shared, req: &Request, deadline: &Deadline) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("PUT", ["experiments"]) => ingest(shared, req),
        ("GET", ["experiments", id, "stats"]) => experiment_stats(shared, id, deadline),
        ("GET", ["experiments", id, "lint"]) => experiment_lint(shared, id),
        ("POST", ["check"]) => check_endpoint(shared, req),
        ("POST", ["eval"]) => eval(shared, req, deadline),
        ("GET", ["stats"]) => Ok(server_stats(shared)),
        ("GET", ["healthz"]) => Ok(healthz(shared)),
        (_, ["experiments"])
        | (_, ["check"])
        | (_, ["eval"])
        | (_, ["experiments", _, "stats" | "lint"]) => Err(ServeError::with_status(
            405,
            "method_not_allowed",
            format!("{} is not supported on {path}", req.method),
        )),
        _ => Err(ServeError::not_found(
            "no_such_route",
            format!("no route for {path}"),
        )),
    };
    result.unwrap_or_else(|e| error_response(&e))
}

/// Renders a [`ServeError`] as its JSON wire form. Errors carrying
/// checker details gain a `"diagnostics"` array of `A0xx` findings.
pub fn error_response(e: &ServeError) -> Response {
    let mut body = format!(
        "{{\"error\":{},\"code\":{}",
        json_string(&e.message),
        json_string(&e.code)
    );
    if let Some(details) = &e.details {
        let _ = write!(body, ",\"diagnostics\":{details}");
    }
    body.push('}');
    Response::json(e.status, body)
}

fn ingest(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    let outcome = shared.repo.ingest(&req.body)?;
    let status = if outcome.created { 201 } else { 200 };
    Ok(Response::json(
        status,
        format!(
            "{{\"id\":\"{}\",\"created\":{},\"label\":{}}}",
            outcome.id,
            outcome.created,
            json_string(&outcome.label)
        ),
    ))
}

fn provenance_kind(p: &Provenance) -> &'static str {
    match p {
        Provenance::Original { .. } => "original",
        Provenance::Derived { .. } => "derived",
        Provenance::Recovered { .. } => "recovered",
    }
}

fn experiment_stats(
    shared: &Shared,
    id: &str,
    deadline: &Deadline,
) -> Result<Response, ServeError> {
    let handle = shared.repo.open_within(id, deadline)?;
    shared.repo.ensure_severity(id, &handle, deadline)?;
    let md = handle.metadata();
    let values = handle.severity()?;
    let nonzero = values.iter().filter(|v| **v != 0.0).count();
    Ok(Response::json(
        200,
        format!(
            "{{\"id\":\"{id}\",\"label\":{},\"kind\":\"{}\",\
             \"metrics\":{},\"modules\":{},\"regions\":{},\"call_sites\":{},\
             \"call_nodes\":{},\"machines\":{},\"nodes\":{},\"processes\":{},\
             \"threads\":{},\"values\":{},\"nonzero\":{}}}",
            json_string(&handle.provenance().label()),
            provenance_kind(handle.provenance()),
            md.num_metrics(),
            md.modules().len(),
            md.regions().len(),
            md.call_sites().len(),
            md.num_call_nodes(),
            md.machines().len(),
            md.nodes().len(),
            md.processes().len(),
            md.num_threads(),
            values.len(),
            nonzero,
        ),
    ))
}

fn experiment_lint(shared: &Shared, id: &str) -> Result<Response, ServeError> {
    let path = shared.repo.locate(id)?;
    let report = cube_store::lint_file(&path);
    let mut s = format!("{{\"id\":\"{id}\",\"diagnostics\":[");
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"code\":\"{}\",\"level\":\"{}\",\"location\":{},\"message\":{}}}",
            d.code,
            d.level(),
            json_string(&d.location.to_string()),
            json_string(&d.message)
        );
    }
    let _ = write!(
        s,
        "],\"errors\":{},\"warnings\":{},\"ok\":{}}}",
        report.num_errors(),
        report.num_warnings(),
        !report.has_errors()
    );
    Ok(Response::json(200, s))
}

fn server_stats(shared: &Shared) -> Response {
    let (result_hits, result_misses, result_entries) = {
        let c = lock_recover(&shared.results);
        (c.hits(), c.misses(), c.len())
    };
    let (plan_hits, plan_misses, plan_entries) = {
        let c = lock_recover(&shared.plans);
        (c.hits(), c.misses(), c.len())
    };
    let faults = crate::faults::counters();
    Response::json(
        200,
        format!(
            "{{\"experiments\":{},\"requests\":{},\"evals\":{},\"rejected\":{},\
             \"fusion\":{},\
             \"result_cache\":{{\"hits\":{result_hits},\"misses\":{result_misses},\"entries\":{result_entries}}},\
             \"plan_cache\":{{\"hits\":{plan_hits},\"misses\":{plan_misses},\"entries\":{plan_entries}}},\
             \"deadline_expirations\":{},\"degraded_evals\":{},\"retries\":{},\"read_failures\":{},\
             \"quarantined\":{},\"swept_temp_files\":{},\
             \"faults\":{{\"io_errors\":{},\"torn_reads\":{},\"checksum_flips\":{},\"latencies\":{}}}}}",
            shared.repo.count(),
            shared.requests.load(Ordering::Relaxed),
            shared.evals.load(Ordering::Relaxed),
            shared.rejected.load(Ordering::Relaxed),
            cube_algebra::fusion_enabled(),
            shared.deadline_expirations.load(Ordering::Relaxed),
            shared.degraded_evals.load(Ordering::Relaxed),
            shared.repo.retries_performed.load(Ordering::Relaxed),
            shared.repo.read_failures.load(Ordering::Relaxed),
            shared.repo.open_breakers(),
            shared.repo.swept_temp_files(),
            faults.io_errors,
            faults.torn_reads,
            faults.checksum_flips,
            faults.latencies,
        ),
    )
}

/// `GET /healthz`: liveness plus a coarse degradation signal. The
/// server reports `degraded` while any object id is quarantined by the
/// circuit breaker — it is still serving, but some operands answer
/// `503` (or are omitted under `keep_going`). `ok` stays `true` either
/// way: the process is alive and making progress.
fn healthz(shared: &Shared) -> Response {
    let quarantined = shared.repo.open_breakers();
    Response::json(
        200,
        format!(
            "{{\"ok\":true,\"status\":\"{}\",\"quarantined\":{quarantined},\
             \"read_failures\":{},\"deadline_expirations\":{}}}",
            if quarantined > 0 { "degraded" } else { "ok" },
            shared.repo.read_failures.load(Ordering::Relaxed),
            shared.deadline_expirations.load(Ordering::Relaxed),
        ),
    )
}

/// The expression text from a `/eval` body: either a flat JSON object
/// with an `expr` field, or the expression itself as plain text.
fn body_expr(req: &Request) -> Result<String, ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("bad_encoding", "request body is not UTF-8"))?;
    let trimmed = text.trim();
    if trimmed.starts_with('{') {
        extract_string_field(trimmed, "expr").ok_or_else(|| {
            ServeError::bad_request("missing_expr", "JSON body has no string \"expr\" field")
        })
    } else if trimmed.is_empty() {
        Err(ServeError::bad_request(
            "missing_expr",
            "empty body; send an expression or {\"expr\": \"...\"}",
        ))
    } else {
        Ok(trimmed.to_string())
    }
}

/// Renders a derived experiment exactly as `write_experiment_file`
/// commits it to disk: the CUBE body followed by the checksum footer.
fn render_cube_bytes(exp: &cube_model::Experiment) -> Vec<u8> {
    let body = write_experiment(exp);
    let mut bytes = body.into_bytes();
    let line = footer_line(crc32(&bytes), bytes.len() as u64);
    bytes.extend_from_slice(line.as_bytes());
    bytes
}

fn plan_for<'a>(
    shared: &Shared,
    parsed: &ParsedExpr,
    ops: &[&'a dyn BatchOperand],
) -> Result<BatchPlan<'a>, ServeError> {
    let plan_key = parsed.operands.join(",");
    if let Some(tables) = lock_recover(&shared.plans).get(&plan_key) {
        // Content ids key the cache, so cached tables can only mismatch
        // if an object was replaced underneath us; rebuild in that case.
        if let Ok(plan) = BatchPlan::from_tables(ops, tables) {
            return Ok(plan);
        }
    }
    let tables = Arc::new(PlanTables::build(ops, MergeOptions::default()));
    lock_recover(&shared.plans).insert(plan_key, Arc::clone(&tables));
    BatchPlan::from_tables(ops, tables).map_err(ServeError::from)
}

/// Opens each operand id metadata-only, keeping per-operand outcomes
/// so resolution failures become `A001` facts instead of aborting the
/// whole request before the checker can report them all.
fn open_operands(
    shared: &Shared,
    pairs: &[(String, String)],
) -> Vec<(String, Result<Arc<ColumnarExperiment>, ServeError>)> {
    pairs
        .iter()
        .map(|(name, id)| (name.clone(), shared.repo.open(id)))
        .collect()
}

/// Operand facts for the checker, borrowing metadata from the opened
/// handles. Only metadata is consulted — severity pages stay unread.
fn facts_of(
    opened: &[(String, Result<Arc<ColumnarExperiment>, ServeError>)],
) -> Vec<OperandFacts<'_>> {
    opened
        .iter()
        .map(|(name, res)| match res {
            Ok(handle) => OperandFacts::known(name.clone(), handle.metadata()),
            Err(e) => OperandFacts::unknown(name.clone(), e.message.clone()),
        })
        .collect()
}

/// Mandatory `/eval` pre-flight: statically checks the expression
/// against metadata-only operand facts and converts a failing report
/// into the structured wire error — status 404 when an operand does
/// not resolve, 422 for other static errors, with the full `A0xx`
/// diagnostics array attached. Runs before any plan construction,
/// evaluation, or cache insertion.
fn preflight(
    parsed: &ParsedExpr,
    opened: &[(String, Result<Arc<ColumnarExperiment>, ServeError>)],
) -> Result<(), ServeError> {
    let facts = facts_of(opened);
    let report = check(parsed, &facts);
    if report.num_errors() == 0 {
        return Ok(());
    }
    let unresolved = report.diagnostics.iter().any(|d| d.code == "A001");
    let (code, message) = report.first_error().map_or_else(
        || ("A000", "static check failed".to_string()),
        |d| (d.code, format!("static check failed: {}", d.message)),
    );
    Err(
        ServeError::with_status(if unresolved { 404 } else { 422 }, code, message)
            .with_details(report.diagnostics_json()),
    )
}

/// Fails with `504 deadline_exceeded` if the request budget is gone.
fn check_deadline(deadline: &Deadline, phase: &str) -> Result<(), ServeError> {
    if deadline.expired() {
        Err(ServeError::deadline(phase))
    } else {
        Ok(())
    }
}

/// Whether the request's query string sets `name` truthily
/// (`?name=1`, `?name=true`, or bare `?name`).
fn query_flag(req: &Request, name: &str) -> bool {
    let Some(query) = req.path.split_once('?').map(|(_, q)| q) else {
        return false;
    };
    query.split('&').any(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        k == name && matches!(v, "" | "1" | "true")
    })
}

/// Rewrites `expr` without the operands in `failed`: a failed index
/// simply leaves every reduction list it appears in. A failed operand
/// anywhere else (a diff side, a scale argument, a bare operand) has
/// no meaning-preserving removal, so the expression cannot be
/// degraded and the caller reports the underlying failure instead.
/// This generalizes [`cube_algebra::FailurePolicy::KeepGoing`] — the
/// CLI's `--keep-going` over one reduction — to arbitrary trees.
fn degrade_expr(expr: &Expr, failed: &HashSet<usize>) -> Option<Expr> {
    match expr {
        Expr::Operand(i) => (!failed.contains(i)).then_some(Expr::Operand(*i)),
        Expr::Zero => Some(Expr::Zero),
        Expr::Reduce(r, idxs) => {
            let kept: Vec<usize> = idxs
                .iter()
                .copied()
                .filter(|i| !failed.contains(i))
                .collect();
            (!kept.is_empty()).then_some(Expr::Reduce(*r, kept))
        }
        Expr::Diff(a, b) => Some(Expr::diff(
            degrade_expr(a, failed)?,
            degrade_expr(b, failed)?,
        )),
        Expr::Scale(inner, f) => Some(Expr::scale(degrade_expr(inner, failed)?, *f)),
    }
}

/// Renumbers operand indices through `remap` (old index → new index
/// over the surviving operand list).
fn remap_expr(expr: &Expr, remap: &[usize]) -> Expr {
    match expr {
        Expr::Operand(i) => Expr::Operand(remap[*i]),
        Expr::Zero => Expr::Zero,
        Expr::Reduce(r, idxs) => Expr::Reduce(*r, idxs.iter().map(|i| remap[*i]).collect()),
        Expr::Diff(a, b) => Expr::diff(remap_expr(a, remap), remap_expr(b, remap)),
        Expr::Scale(inner, f) => Expr::scale(remap_expr(inner, remap), *f),
    }
}

/// Answers a degraded `/eval`: evaluates the expression over the
/// surviving operands only and reports the omitted ones. `206` with a
/// JSON envelope (not raw CUBE bytes — the `omitted_operands` report
/// is part of the answer); never cached, because the result does not
/// correspond to the canonical expression.
fn degraded_response(
    shared: &Shared,
    parsed: &ParsedExpr,
    handles: Vec<Option<Arc<ColumnarExperiment>>>,
    failures: &[(usize, String, ServeError)],
) -> Result<Response, ServeError> {
    let failed: HashSet<usize> = failures.iter().map(|(i, _, _)| *i).collect();
    let Some(degraded) = degrade_expr(&parsed.expr, &failed) else {
        let (_, _, e) = &failures[0];
        let mut e = e.clone();
        e.message = format!(
            "{} (operand is structurally required; keep_going cannot omit it)",
            e.message
        );
        return Err(e);
    };
    let mut remap = vec![usize::MAX; handles.len()];
    let mut survivors: Vec<Arc<ColumnarExperiment>> = Vec::new();
    for (i, slot) in handles.into_iter().enumerate() {
        if let Some(handle) = slot {
            remap[i] = survivors.len();
            survivors.push(handle);
        }
    }
    let ops: Vec<&dyn BatchOperand> = survivors
        .iter()
        .map(|h| h.as_ref() as &dyn BatchOperand)
        .collect();
    // Degraded plans are built fresh, not cached: their operand set is
    // an accident of which reads failed, not a stable key.
    let tables = Arc::new(PlanTables::build(&ops, MergeOptions::default()));
    let plan = BatchPlan::from_tables(&ops, tables)?;
    let exp = plan.eval(&remap_expr(&degraded, &remap))?;
    let bytes = render_cube_bytes(&exp);
    shared.degraded_evals.fetch_add(1, Ordering::Relaxed);

    let mut body = format!(
        "{{\"status\":\"degraded\",\"expr\":{},\"used\":{},\"omitted_operands\":[",
        json_string(&render_expr(&degraded, &parsed.operands)),
        survivors.len(),
    );
    for (k, (index, id, e)) in failures.iter().enumerate() {
        if k > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"index\":{index},\"id\":{},\"code\":{},\"reason\":{}}}",
            json_string(id),
            json_string(&e.code),
            json_string(&e.message)
        );
    }
    let _ = write!(
        body,
        "],\"result\":{}}}",
        json_string(&String::from_utf8_lossy(&bytes))
    );
    Ok(Response::json(206, body).with_header("x-cache", "degraded"))
}

fn eval(shared: &Shared, req: &Request, deadline: &Deadline) -> Result<Response, ServeError> {
    shared.evals.fetch_add(1, Ordering::Relaxed);
    let keep_going = query_flag(req, "keep_going");
    let text = body_expr(req)?;
    let parsed = parse_expr(&text)?;
    let key = parsed.canonical();
    if let Some(bytes) = lock_recover(&shared.results).get(&key) {
        return Ok(
            Response::bytes(200, "application/cube+xml", bytes.as_ref().clone())
                .with_header("x-cache", "hit"),
        );
    }
    check_deadline(deadline, "resolving operands")?;
    let pairs: Vec<(String, String)> = parsed
        .operands
        .iter()
        .map(|id| (id.clone(), id.clone()))
        .collect();
    let opened: Vec<(String, Result<Arc<ColumnarExperiment>, ServeError>)> = pairs
        .iter()
        .map(|(name, id)| (name.clone(), shared.repo.open_within(id, deadline)))
        .collect();
    // Static resolution failures (bad/unknown ids) go through the
    // checker so the client gets the full A0xx diagnostics; transient
    // availability failures (503/504) are *not* static facts and take
    // the retry/degrade path below instead — when some operands are
    // unavailable the checker is skipped and plan-level validation
    // covers the survivors.
    let any_static = opened
        .iter()
        .any(|(_, r)| matches!(r, Err(e) if e.status < 500));
    if any_static || opened.iter().all(|(_, r)| r.is_ok()) {
        preflight(&parsed, &opened)?;
    }

    // Guarded severity loads — the second disk boundary an /eval
    // crosses. Failures here and open failures above both feed the
    // degraded path when the client opted in.
    let mut handles: Vec<Option<Arc<ColumnarExperiment>>> = Vec::with_capacity(opened.len());
    let mut failures: Vec<(usize, String, ServeError)> = Vec::new();
    for (index, (id, res)) in opened.into_iter().enumerate() {
        match res {
            Ok(handle) => match shared.repo.ensure_severity(&id, &handle, deadline) {
                Ok(()) => handles.push(Some(handle)),
                Err(e) if e.status == 504 => return Err(e),
                Err(e) => {
                    handles.push(None);
                    failures.push((index, id, e));
                }
            },
            Err(e) => {
                handles.push(None);
                failures.push((index, id, e));
            }
        }
    }
    if !failures.is_empty() {
        if !keep_going {
            let (_, _, e) = failures.swap_remove(0);
            return Err(e);
        }
        return degraded_response(shared, &parsed, handles, &failures);
    }

    check_deadline(deadline, "evaluating the expression")?;
    let handles: Vec<Arc<ColumnarExperiment>> = handles.into_iter().flatten().collect();
    let ops: Vec<&dyn BatchOperand> = handles
        .iter()
        .map(|h| h.as_ref() as &dyn BatchOperand)
        .collect();
    let plan = plan_for(shared, &parsed, &ops)?;
    let exp = plan.eval(&parsed.expr)?;
    let bytes = Arc::new(render_cube_bytes(&exp));
    lock_recover(&shared.results).insert(key, Arc::clone(&bytes));
    Ok(
        Response::bytes(200, "application/cube+xml", bytes.as_ref().clone())
            .with_header("x-cache", "miss"),
    )
}

/// Parses the optional flat `bind` field (`"A=id,B=id"`) of a
/// `/check` body into (name, id) pairs.
fn parse_bindings(bind: Option<&str>) -> Result<Vec<(String, String)>, ServeError> {
    let Some(bind) = bind else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for pair in bind.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let Some((name, id)) = pair.split_once('=') else {
            return Err(ServeError::bad_request(
                "bad_bind",
                format!("binding '{pair}' is not of the form name=id"),
            ));
        };
        out.push((name.trim().to_string(), id.trim().to_string()));
    }
    Ok(out)
}

/// `POST /check`: the static checker as an endpoint. The body is the
/// expression as plain text, or a flat JSON object with `expr` and an
/// optional `bind` field mapping expression names to repository ids
/// (`"A=<id>,B=<id>"`); without a binding each operand name must be a
/// repository id itself, exactly as `/eval` resolves them. Returns the
/// full report — the same JSON `cube check --format json` prints —
/// with status 200 even when diagnostics contain errors; only a body
/// that fails to parse is a 4xx.
fn check_endpoint(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("bad_encoding", "request body is not UTF-8"))?;
    let trimmed = text.trim();
    let (expr_text, bind) = if trimmed.starts_with('{') {
        let expr = extract_string_field(trimmed, "expr").ok_or_else(|| {
            ServeError::bad_request("missing_expr", "JSON body has no string \"expr\" field")
        })?;
        (expr, extract_string_field(trimmed, "bind"))
    } else if trimmed.is_empty() {
        return Err(ServeError::bad_request(
            "missing_expr",
            "empty body; send an expression or {\"expr\":\"...\",\"bind\":\"name=id,...\"}",
        ));
    } else {
        (trimmed.to_string(), None)
    };
    let parsed = parse_expr(&expr_text)?;
    let bindings = parse_bindings(bind.as_deref())?;
    let mut pairs: Vec<(String, String)> = parsed
        .operands
        .iter()
        .map(|name| {
            let id = bindings
                .iter()
                .find(|(n, _)| n == name)
                .map_or(name.as_str(), |(_, id)| id.as_str());
            (name.clone(), id.to_string())
        })
        .collect();
    // Bindings that name no operand of the expression still become
    // facts, so the checker reports them as dead operands (A005) —
    // the same behavior as unused file arguments on the CLI.
    for (name, id) in &bindings {
        if !parsed.operands.contains(name) {
            pairs.push((name.clone(), id.clone()));
        }
    }
    let opened = open_operands(shared, &pairs);
    let facts = facts_of(&opened);
    let report = check(&parsed, &facts);
    Ok(Response::json(200, report.to_json(&expr_text)))
}
