//! Route table and request handlers.
//!
//! | Method | Path                       | Body            | Returns |
//! |--------|----------------------------|-----------------|---------|
//! | PUT    | `/experiments`             | `.cube`/`.cubec`| JSON id |
//! | GET    | `/experiments/{id}/stats`  | —               | JSON    |
//! | GET    | `/experiments/{id}/lint`   | —               | JSON    |
//! | POST   | `/check`                   | expr text/JSON  | JSON    |
//! | POST   | `/eval`                    | expr text/JSON  | `.cube` |
//! | GET    | `/stats`                   | —               | JSON    |
//! | GET    | `/healthz`                 | —               | JSON    |
//!
//! `/eval` responses are byte-identical to the files `cube stats` /
//! `cube diff` write: the CUBE body followed by the checksum footer
//! line. That identity is what the CI serve gate diffs, and it holds
//! on cache hits too — the `X-Cache` header says which path produced
//! the bytes.
//!
//! Every `/eval` runs the static checker ([`cube_algebra::check()`]) as
//! a mandatory pre-flight after the cache lookup: operands are opened
//! metadata-only (the lazy `.cubec` path — no severity pages are read)
//! and a statically-invalid expression is rejected with its `A0xx`
//! code and full diagnostics array *before* any evaluation work or
//! cache insertion. `/check` exposes the same analysis directly,
//! returning the full report (diagnostics, rewrite, cost estimate) in
//! the same JSON shape `cube check --format json` prints.

use crate::cache::lock_recover;
use crate::error::ServeError;
use crate::http::{Request, Response};
use crate::json::{extract_string_field, json_string};
use crate::server::Shared;
use cube_algebra::{
    check, parse_expr, BatchOperand, BatchPlan, MergeOptions, OperandFacts, ParsedExpr, PlanTables,
};
use cube_model::Provenance;
use cube_store::ColumnarExperiment;
use cube_xml::footer::{crc32, footer_line};
use cube_xml::write_experiment;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Dispatches one request, converting every failure into its JSON
/// error body. Never panics the worker: unknown routes are 404, wrong
/// methods 405.
pub fn handle(shared: &Shared, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("PUT", ["experiments"]) => ingest(shared, req),
        ("GET", ["experiments", id, "stats"]) => experiment_stats(shared, id),
        ("GET", ["experiments", id, "lint"]) => experiment_lint(shared, id),
        ("POST", ["check"]) => check_endpoint(shared, req),
        ("POST", ["eval"]) => eval(shared, req),
        ("GET", ["stats"]) => Ok(server_stats(shared)),
        ("GET", ["healthz"]) => Ok(Response::json(200, "{\"ok\":true}".to_string())),
        (_, ["experiments"])
        | (_, ["check"])
        | (_, ["eval"])
        | (_, ["experiments", _, "stats" | "lint"]) => Err(ServeError::with_status(
            405,
            "method_not_allowed",
            format!("{} is not supported on {path}", req.method),
        )),
        _ => Err(ServeError::not_found(
            "no_such_route",
            format!("no route for {path}"),
        )),
    };
    result.unwrap_or_else(|e| error_response(&e))
}

/// Renders a [`ServeError`] as its JSON wire form. Errors carrying
/// checker details gain a `"diagnostics"` array of `A0xx` findings.
pub fn error_response(e: &ServeError) -> Response {
    let mut body = format!(
        "{{\"error\":{},\"code\":{}",
        json_string(&e.message),
        json_string(&e.code)
    );
    if let Some(details) = &e.details {
        let _ = write!(body, ",\"diagnostics\":{details}");
    }
    body.push('}');
    Response::json(e.status, body)
}

fn ingest(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    let outcome = shared.repo.ingest(&req.body)?;
    let status = if outcome.created { 201 } else { 200 };
    Ok(Response::json(
        status,
        format!(
            "{{\"id\":\"{}\",\"created\":{},\"label\":{}}}",
            outcome.id,
            outcome.created,
            json_string(&outcome.label)
        ),
    ))
}

fn provenance_kind(p: &Provenance) -> &'static str {
    match p {
        Provenance::Original { .. } => "original",
        Provenance::Derived { .. } => "derived",
        Provenance::Recovered { .. } => "recovered",
    }
}

fn experiment_stats(shared: &Shared, id: &str) -> Result<Response, ServeError> {
    let handle = shared.repo.open(id)?;
    let md = handle.metadata();
    let values = handle.severity()?;
    let nonzero = values.iter().filter(|v| **v != 0.0).count();
    Ok(Response::json(
        200,
        format!(
            "{{\"id\":\"{id}\",\"label\":{},\"kind\":\"{}\",\
             \"metrics\":{},\"modules\":{},\"regions\":{},\"call_sites\":{},\
             \"call_nodes\":{},\"machines\":{},\"nodes\":{},\"processes\":{},\
             \"threads\":{},\"values\":{},\"nonzero\":{}}}",
            json_string(&handle.provenance().label()),
            provenance_kind(handle.provenance()),
            md.num_metrics(),
            md.modules().len(),
            md.regions().len(),
            md.call_sites().len(),
            md.num_call_nodes(),
            md.machines().len(),
            md.nodes().len(),
            md.processes().len(),
            md.num_threads(),
            values.len(),
            nonzero,
        ),
    ))
}

fn experiment_lint(shared: &Shared, id: &str) -> Result<Response, ServeError> {
    let path = shared.repo.locate(id)?;
    let report = cube_store::lint_file(&path);
    let mut s = format!("{{\"id\":\"{id}\",\"diagnostics\":[");
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"code\":\"{}\",\"level\":\"{}\",\"location\":{},\"message\":{}}}",
            d.code,
            d.level(),
            json_string(&d.location.to_string()),
            json_string(&d.message)
        );
    }
    let _ = write!(
        s,
        "],\"errors\":{},\"warnings\":{},\"ok\":{}}}",
        report.num_errors(),
        report.num_warnings(),
        !report.has_errors()
    );
    Ok(Response::json(200, s))
}

fn server_stats(shared: &Shared) -> Response {
    let (result_hits, result_misses, result_entries) = {
        let c = lock_recover(&shared.results);
        (c.hits(), c.misses(), c.len())
    };
    let (plan_hits, plan_misses, plan_entries) = {
        let c = lock_recover(&shared.plans);
        (c.hits(), c.misses(), c.len())
    };
    Response::json(
        200,
        format!(
            "{{\"experiments\":{},\"requests\":{},\"evals\":{},\"rejected\":{},\
             \"result_cache\":{{\"hits\":{result_hits},\"misses\":{result_misses},\"entries\":{result_entries}}},\
             \"plan_cache\":{{\"hits\":{plan_hits},\"misses\":{plan_misses},\"entries\":{plan_entries}}}}}",
            shared.repo.count(),
            shared.requests.load(Ordering::Relaxed),
            shared.evals.load(Ordering::Relaxed),
            shared.rejected.load(Ordering::Relaxed),
        ),
    )
}

/// The expression text from a `/eval` body: either a flat JSON object
/// with an `expr` field, or the expression itself as plain text.
fn body_expr(req: &Request) -> Result<String, ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("bad_encoding", "request body is not UTF-8"))?;
    let trimmed = text.trim();
    if trimmed.starts_with('{') {
        extract_string_field(trimmed, "expr").ok_or_else(|| {
            ServeError::bad_request("missing_expr", "JSON body has no string \"expr\" field")
        })
    } else if trimmed.is_empty() {
        Err(ServeError::bad_request(
            "missing_expr",
            "empty body; send an expression or {\"expr\": \"...\"}",
        ))
    } else {
        Ok(trimmed.to_string())
    }
}

/// Renders a derived experiment exactly as `write_experiment_file`
/// commits it to disk: the CUBE body followed by the checksum footer.
fn render_cube_bytes(exp: &cube_model::Experiment) -> Vec<u8> {
    let body = write_experiment(exp);
    let mut bytes = body.into_bytes();
    let line = footer_line(crc32(&bytes), bytes.len() as u64);
    bytes.extend_from_slice(line.as_bytes());
    bytes
}

fn plan_for<'a>(
    shared: &Shared,
    parsed: &ParsedExpr,
    ops: &[&'a dyn BatchOperand],
) -> Result<BatchPlan<'a>, ServeError> {
    let plan_key = parsed.operands.join(",");
    if let Some(tables) = lock_recover(&shared.plans).get(&plan_key) {
        // Content ids key the cache, so cached tables can only mismatch
        // if an object was replaced underneath us; rebuild in that case.
        if let Ok(plan) = BatchPlan::from_tables(ops, tables) {
            return Ok(plan);
        }
    }
    let tables = Arc::new(PlanTables::build(ops, MergeOptions::default()));
    lock_recover(&shared.plans).insert(plan_key, Arc::clone(&tables));
    BatchPlan::from_tables(ops, tables).map_err(ServeError::from)
}

/// Opens each operand id metadata-only, keeping per-operand outcomes
/// so resolution failures become `A001` facts instead of aborting the
/// whole request before the checker can report them all.
fn open_operands(
    shared: &Shared,
    pairs: &[(String, String)],
) -> Vec<(String, Result<Arc<ColumnarExperiment>, ServeError>)> {
    pairs
        .iter()
        .map(|(name, id)| (name.clone(), shared.repo.open(id)))
        .collect()
}

/// Operand facts for the checker, borrowing metadata from the opened
/// handles. Only metadata is consulted — severity pages stay unread.
fn facts_of(
    opened: &[(String, Result<Arc<ColumnarExperiment>, ServeError>)],
) -> Vec<OperandFacts<'_>> {
    opened
        .iter()
        .map(|(name, res)| match res {
            Ok(handle) => OperandFacts::known(name.clone(), handle.metadata()),
            Err(e) => OperandFacts::unknown(name.clone(), e.message.clone()),
        })
        .collect()
}

/// Mandatory `/eval` pre-flight: statically checks the expression
/// against metadata-only operand facts and converts a failing report
/// into the structured wire error — status 404 when an operand does
/// not resolve, 422 for other static errors, with the full `A0xx`
/// diagnostics array attached. Runs before any plan construction,
/// evaluation, or cache insertion.
fn preflight(
    parsed: &ParsedExpr,
    opened: &[(String, Result<Arc<ColumnarExperiment>, ServeError>)],
) -> Result<(), ServeError> {
    let facts = facts_of(opened);
    let report = check(parsed, &facts);
    if report.num_errors() == 0 {
        return Ok(());
    }
    let unresolved = report.diagnostics.iter().any(|d| d.code == "A001");
    let (code, message) = report.first_error().map_or_else(
        || ("A000", "static check failed".to_string()),
        |d| (d.code, format!("static check failed: {}", d.message)),
    );
    Err(
        ServeError::with_status(if unresolved { 404 } else { 422 }, code, message)
            .with_details(report.diagnostics_json()),
    )
}

fn eval(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    shared.evals.fetch_add(1, Ordering::Relaxed);
    let text = body_expr(req)?;
    let parsed = parse_expr(&text)?;
    let key = parsed.canonical();
    if let Some(bytes) = lock_recover(&shared.results).get(&key) {
        return Ok(
            Response::bytes(200, "application/cube+xml", bytes.as_ref().clone())
                .with_header("x-cache", "hit"),
        );
    }
    let pairs: Vec<(String, String)> = parsed
        .operands
        .iter()
        .map(|id| (id.clone(), id.clone()))
        .collect();
    let opened = open_operands(shared, &pairs);
    preflight(&parsed, &opened)?;
    let handles: Vec<Arc<ColumnarExperiment>> = opened
        .into_iter()
        .map(|(_, res)| res)
        .collect::<Result<_, _>>()?;
    let ops: Vec<&dyn BatchOperand> = handles
        .iter()
        .map(|h| h.as_ref() as &dyn BatchOperand)
        .collect();
    let plan = plan_for(shared, &parsed, &ops)?;
    let exp = plan.eval(&parsed.expr)?;
    let bytes = Arc::new(render_cube_bytes(&exp));
    lock_recover(&shared.results).insert(key, Arc::clone(&bytes));
    Ok(
        Response::bytes(200, "application/cube+xml", bytes.as_ref().clone())
            .with_header("x-cache", "miss"),
    )
}

/// Parses the optional flat `bind` field (`"A=id,B=id"`) of a
/// `/check` body into (name, id) pairs.
fn parse_bindings(bind: Option<&str>) -> Result<Vec<(String, String)>, ServeError> {
    let Some(bind) = bind else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for pair in bind.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let Some((name, id)) = pair.split_once('=') else {
            return Err(ServeError::bad_request(
                "bad_bind",
                format!("binding '{pair}' is not of the form name=id"),
            ));
        };
        out.push((name.trim().to_string(), id.trim().to_string()));
    }
    Ok(out)
}

/// `POST /check`: the static checker as an endpoint. The body is the
/// expression as plain text, or a flat JSON object with `expr` and an
/// optional `bind` field mapping expression names to repository ids
/// (`"A=<id>,B=<id>"`); without a binding each operand name must be a
/// repository id itself, exactly as `/eval` resolves them. Returns the
/// full report — the same JSON `cube check --format json` prints —
/// with status 200 even when diagnostics contain errors; only a body
/// that fails to parse is a 4xx.
fn check_endpoint(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("bad_encoding", "request body is not UTF-8"))?;
    let trimmed = text.trim();
    let (expr_text, bind) = if trimmed.starts_with('{') {
        let expr = extract_string_field(trimmed, "expr").ok_or_else(|| {
            ServeError::bad_request("missing_expr", "JSON body has no string \"expr\" field")
        })?;
        (expr, extract_string_field(trimmed, "bind"))
    } else if trimmed.is_empty() {
        return Err(ServeError::bad_request(
            "missing_expr",
            "empty body; send an expression or {\"expr\":\"...\",\"bind\":\"name=id,...\"}",
        ));
    } else {
        (trimmed.to_string(), None)
    };
    let parsed = parse_expr(&expr_text)?;
    let bindings = parse_bindings(bind.as_deref())?;
    let mut pairs: Vec<(String, String)> = parsed
        .operands
        .iter()
        .map(|name| {
            let id = bindings
                .iter()
                .find(|(n, _)| n == name)
                .map_or(name.as_str(), |(_, id)| id.as_str());
            (name.clone(), id.to_string())
        })
        .collect();
    // Bindings that name no operand of the expression still become
    // facts, so the checker reports them as dead operands (A005) —
    // the same behavior as unused file arguments on the CLI.
    for (name, id) in &bindings {
        if !parsed.operands.contains(name) {
            pairs.push((name.clone(), id.clone()));
        }
    }
    let opened = open_operands(shared, &pairs);
    let facts = facts_of(&opened);
    let report = check(&parsed, &facts);
    Ok(Response::json(200, report.to_json(&expr_text)))
}
