//! Route table and request handlers.
//!
//! | Method | Path                       | Body            | Returns |
//! |--------|----------------------------|-----------------|---------|
//! | PUT    | `/experiments`             | `.cube`/`.cubec`| JSON id |
//! | GET    | `/experiments/{id}/stats`  | —               | JSON    |
//! | GET    | `/experiments/{id}/lint`   | —               | JSON    |
//! | POST   | `/eval`                    | expr text/JSON  | `.cube` |
//! | GET    | `/stats`                   | —               | JSON    |
//! | GET    | `/healthz`                 | —               | JSON    |
//!
//! `/eval` responses are byte-identical to the files `cube stats` /
//! `cube diff` write: the CUBE body followed by the checksum footer
//! line. That identity is what the CI serve gate diffs, and it holds
//! on cache hits too — the `X-Cache` header says which path produced
//! the bytes.

use crate::error::ServeError;
use crate::http::{Request, Response};
use crate::json::{extract_string_field, json_string};
use crate::server::Shared;
use cube_algebra::{parse_expr, BatchOperand, BatchPlan, MergeOptions, ParsedExpr, PlanTables};
use cube_model::Provenance;
use cube_store::ColumnarExperiment;
use cube_xml::footer::{crc32, footer_line};
use cube_xml::write_experiment;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Dispatches one request, converting every failure into its JSON
/// error body. Never panics the worker: unknown routes are 404, wrong
/// methods 405.
pub fn handle(shared: &Shared, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("PUT", ["experiments"]) => ingest(shared, req),
        ("GET", ["experiments", id, "stats"]) => experiment_stats(shared, id),
        ("GET", ["experiments", id, "lint"]) => experiment_lint(shared, id),
        ("POST", ["eval"]) => eval(shared, req),
        ("GET", ["stats"]) => Ok(server_stats(shared)),
        ("GET", ["healthz"]) => Ok(Response::json(200, "{\"ok\":true}".to_string())),
        (_, ["experiments"]) | (_, ["eval"]) | (_, ["experiments", _, "stats" | "lint"]) => {
            Err(ServeError {
                status: 405,
                code: "method_not_allowed".to_string(),
                message: format!("{} is not supported on {path}", req.method),
            })
        }
        _ => Err(ServeError::not_found(
            "no_such_route",
            format!("no route for {path}"),
        )),
    };
    result.unwrap_or_else(|e| error_response(&e))
}

/// Renders a [`ServeError`] as its JSON wire form.
pub fn error_response(e: &ServeError) -> Response {
    Response::json(
        e.status,
        format!(
            "{{\"error\":{},\"code\":{}}}",
            json_string(&e.message),
            json_string(&e.code)
        ),
    )
}

fn ingest(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    let outcome = shared.repo.ingest(&req.body)?;
    let status = if outcome.created { 201 } else { 200 };
    Ok(Response::json(
        status,
        format!(
            "{{\"id\":\"{}\",\"created\":{},\"label\":{}}}",
            outcome.id,
            outcome.created,
            json_string(&outcome.label)
        ),
    ))
}

fn provenance_kind(p: &Provenance) -> &'static str {
    match p {
        Provenance::Original { .. } => "original",
        Provenance::Derived { .. } => "derived",
        Provenance::Recovered { .. } => "recovered",
    }
}

fn experiment_stats(shared: &Shared, id: &str) -> Result<Response, ServeError> {
    let handle = shared.repo.open(id)?;
    let md = handle.metadata();
    let values = handle.severity()?;
    let nonzero = values.iter().filter(|v| **v != 0.0).count();
    Ok(Response::json(
        200,
        format!(
            "{{\"id\":\"{id}\",\"label\":{},\"kind\":\"{}\",\
             \"metrics\":{},\"modules\":{},\"regions\":{},\"call_sites\":{},\
             \"call_nodes\":{},\"machines\":{},\"nodes\":{},\"processes\":{},\
             \"threads\":{},\"values\":{},\"nonzero\":{}}}",
            json_string(&handle.provenance().label()),
            provenance_kind(handle.provenance()),
            md.num_metrics(),
            md.modules().len(),
            md.regions().len(),
            md.call_sites().len(),
            md.num_call_nodes(),
            md.machines().len(),
            md.nodes().len(),
            md.processes().len(),
            md.num_threads(),
            values.len(),
            nonzero,
        ),
    ))
}

fn experiment_lint(shared: &Shared, id: &str) -> Result<Response, ServeError> {
    let path = shared.repo.locate(id)?;
    let report = cube_store::lint_file(&path);
    let mut s = format!("{{\"id\":\"{id}\",\"diagnostics\":[");
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"code\":\"{}\",\"level\":\"{}\",\"location\":{},\"message\":{}}}",
            d.code,
            d.level(),
            json_string(&d.location.to_string()),
            json_string(&d.message)
        );
    }
    let _ = write!(
        s,
        "],\"errors\":{},\"warnings\":{},\"ok\":{}}}",
        report.num_errors(),
        report.num_warnings(),
        !report.has_errors()
    );
    Ok(Response::json(200, s))
}

fn server_stats(shared: &Shared) -> Response {
    let (result_hits, result_misses, result_entries) = {
        let c = shared.results.lock().expect("result cache lock poisoned");
        (c.hits(), c.misses(), c.len())
    };
    let (plan_hits, plan_misses, plan_entries) = {
        let c = shared.plans.lock().expect("plan cache lock poisoned");
        (c.hits(), c.misses(), c.len())
    };
    Response::json(
        200,
        format!(
            "{{\"experiments\":{},\"requests\":{},\"evals\":{},\"rejected\":{},\
             \"result_cache\":{{\"hits\":{result_hits},\"misses\":{result_misses},\"entries\":{result_entries}}},\
             \"plan_cache\":{{\"hits\":{plan_hits},\"misses\":{plan_misses},\"entries\":{plan_entries}}}}}",
            shared.repo.count(),
            shared.requests.load(Ordering::Relaxed),
            shared.evals.load(Ordering::Relaxed),
            shared.rejected.load(Ordering::Relaxed),
        ),
    )
}

/// The expression text from a `/eval` body: either a flat JSON object
/// with an `expr` field, or the expression itself as plain text.
fn body_expr(req: &Request) -> Result<String, ServeError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::bad_request("bad_encoding", "request body is not UTF-8"))?;
    let trimmed = text.trim();
    if trimmed.starts_with('{') {
        extract_string_field(trimmed, "expr").ok_or_else(|| {
            ServeError::bad_request("missing_expr", "JSON body has no string \"expr\" field")
        })
    } else if trimmed.is_empty() {
        Err(ServeError::bad_request(
            "missing_expr",
            "empty body; send an expression or {\"expr\": \"...\"}",
        ))
    } else {
        Ok(trimmed.to_string())
    }
}

/// Renders a derived experiment exactly as `write_experiment_file`
/// commits it to disk: the CUBE body followed by the checksum footer.
fn render_cube_bytes(exp: &cube_model::Experiment) -> Vec<u8> {
    let body = write_experiment(exp);
    let mut bytes = body.into_bytes();
    let line = footer_line(crc32(&bytes), bytes.len() as u64);
    bytes.extend_from_slice(line.as_bytes());
    bytes
}

fn plan_for<'a>(
    shared: &Shared,
    parsed: &ParsedExpr,
    ops: &[&'a dyn BatchOperand],
) -> Result<BatchPlan<'a>, ServeError> {
    let plan_key = parsed.operands.join(",");
    if let Some(tables) = shared
        .plans
        .lock()
        .expect("plan cache lock poisoned")
        .get(&plan_key)
    {
        // Content ids key the cache, so cached tables can only mismatch
        // if an object was replaced underneath us; rebuild in that case.
        if let Ok(plan) = BatchPlan::from_tables(ops, tables) {
            return Ok(plan);
        }
    }
    let tables = Arc::new(PlanTables::build(ops, MergeOptions::default()));
    shared
        .plans
        .lock()
        .expect("plan cache lock poisoned")
        .insert(plan_key, Arc::clone(&tables));
    BatchPlan::from_tables(ops, tables).map_err(ServeError::from)
}

fn eval(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    shared.evals.fetch_add(1, Ordering::Relaxed);
    let text = body_expr(req)?;
    let parsed = parse_expr(&text)?;
    let key = parsed.canonical();
    if let Some(bytes) = shared
        .results
        .lock()
        .expect("result cache lock poisoned")
        .get(&key)
    {
        return Ok(
            Response::bytes(200, "application/cube+xml", bytes.as_ref().clone())
                .with_header("x-cache", "hit"),
        );
    }
    let handles: Vec<Arc<ColumnarExperiment>> = parsed
        .operands
        .iter()
        .map(|id| shared.repo.open(id))
        .collect::<Result<_, _>>()?;
    let ops: Vec<&dyn BatchOperand> = handles
        .iter()
        .map(|h| h.as_ref() as &dyn BatchOperand)
        .collect();
    let plan = plan_for(shared, &parsed, &ops)?;
    let exp = plan.eval(&parsed.expr)?;
    let bytes = Arc::new(render_cube_bytes(&exp));
    shared
        .results
        .lock()
        .expect("result cache lock poisoned")
        .insert(key, Arc::clone(&bytes));
    Ok(
        Response::bytes(200, "application/cube+xml", bytes.as_ref().clone())
            .with_header("x-cache", "miss"),
    )
}
