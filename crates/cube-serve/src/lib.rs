//! # cube-serve — a concurrent analysis server over a sharded
//! # experiment repository
//!
//! `cube serve` turns the batch engine into a long-running analysis
//! service: experiments are ingested once into a content-addressed,
//! hash-sharded on-disk repository ([`Repository`]), then any number
//! of clients evaluate algebra expressions against them over a small
//! HTTP/1.1 JSON API — without re-parsing operands per query.
//!
//! ```text
//! PUT  /experiments              ingest .cube XML or .cubec binary
//! GET  /experiments/{id}/stats   shape and provenance summary
//! GET  /experiments/{id}/lint    lint report for the stored object
//! POST /eval                     evaluate e.g. diff(mean(a,b),mean(c,d))
//! GET  /stats                    server counters and cache stats
//! GET  /healthz                  liveness probe
//! ```
//!
//! The stack is deliberately dependency-free: framing is hand-rolled
//! over [`std::net::TcpListener`] ([`http`]), JSON needs are covered
//! by a string escaper and a flat-field scanner ([`json`]), and
//! concurrency comes from long-lived `std::thread` workers behind a
//! bounded admission queue ([`server`]) with evaluation fanning out on
//! the workspace `rayon` pool.
//!
//! Three caches make repeat analysis cheap, and the engine's
//! byte-determinism (docs/THREADS.md) makes them *sound*: derived
//! results keyed by canonical expression over content ids, plan
//! tables ([`cube_algebra::PlanTables`]) keyed by the operand-id
//! list, and open [`cube_store::ColumnarExperiment`] handles keyed by
//! id. A cache hit returns exactly the bytes a fresh evaluation at
//! any thread count would produce — `/eval` responses are
//! byte-identical to the files `cube stats` / `cube diff` write,
//! verified end-to-end by the CI serve gate.
//!
//! Protocol details and operational notes live in `docs/SERVE.md`.

#![deny(missing_docs)]

pub mod api;
pub mod cache;
pub mod error;
pub mod faults;
pub mod http;
pub mod json;
pub mod repo;
pub mod server;

pub use cache::LruCache;
pub use error::ServeError;
pub use faults::{FaultCounters, FaultPlan};
pub use repo::{content_id, repo_relative_origin, IngestOutcome, Repository, REPO_MARKER};
pub use server::{install_signal_handlers, signaled, start, RunningServer, ServeConfig, Shared};
