//! The threaded server: acceptor, bounded admission queue, worker
//! pool, and graceful shutdown.
//!
//! One `std::thread` acceptor polls a nonblocking listener and admits
//! connections into a bounded queue; `workers` long-lived threads
//! drain it. When the queue is full the *acceptor* answers 429
//! immediately — overload sheds load in microseconds instead of
//! stacking latency, and a client can always distinguish "busy" from
//! "hung". Inside a worker, evaluation fans out over the shared
//! `rayon` pool, whose length-driven splitting keeps every response
//! byte-identical at any thread count — which is also what makes the
//! result cache sound (docs/SERVE.md).
//!
//! Shutdown is cooperative: [`RunningServer::shutdown`] (or SIGTERM /
//! SIGINT via [`install_signal_handlers`]) stops the acceptor, then
//! workers drain every already-admitted connection before exiting, so
//! an accepted request is never dropped on the floor.

use crate::api;
use crate::cache::{lock_recover, LruCache};
use crate::error::ServeError;
use crate::faults::FaultPlan;
use crate::http::{read_request, write_response, Deadline, HttpError};
use crate::repo::Repository;
use cube_algebra::PlanTables;
use cube_xml::ReadLimits;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Everything `cube serve` can tune.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1`.
    pub addr: String,
    /// Port to bind; `0` picks an ephemeral port.
    pub port: u16,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admitted-but-unserved connections the queue holds before the
    /// acceptor starts answering 429.
    pub queue_depth: usize,
    /// Entries in the derived-result byte cache (0 disables).
    pub result_cache: usize,
    /// Entries in the plan-table cache (0 disables).
    pub plan_cache: usize,
    /// Entries in the open-handle cache (0 disables).
    pub handle_cache: usize,
    /// Maximum request-body size in bytes; also caps the parse limits
    /// applied to uploaded documents.
    pub max_body: usize,
    /// Test hook: sleep this long at the start of every request, so
    /// the stress harness can fill the queue deterministically.
    pub delay_ms: u64,
    /// Total per-request deadline in milliseconds (read + handle);
    /// expiry answers `504 deadline_exceeded`. `0` disables.
    pub request_deadline_ms: u64,
    /// Header-read deadline in milliseconds — the slow-loris cap: a
    /// peer trickling header bytes is cut off when it expires. `0`
    /// disables (the total deadline still applies).
    pub header_deadline_ms: u64,
    /// Per-socket read/write timeout in milliseconds, the coarse
    /// transport-level backstop beneath the deadlines. `0` disables.
    pub socket_timeout_ms: u64,
    /// Attempts per repository read before a transient failure is
    /// treated as persistent (1 = no retry).
    pub read_retries: u32,
    /// Base of the exponential retry backoff, in milliseconds; jitter
    /// is added deterministically (see `faults::jitter_ms`).
    pub backoff_base_ms: u64,
    /// Consecutive read failures after which the circuit breaker
    /// quarantines an object id. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// Fault-injection spec (`CUBE_FAULTS` grammar, docs/FAULTS.md);
    /// `None` means no faults and a zero-cost read path.
    pub faults: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1".to_string(),
            port: 0,
            workers: 4,
            queue_depth: 64,
            result_cache: 64,
            plan_cache: 16,
            handle_cache: 64,
            max_body: 256 << 20,
            delay_ms: 0,
            request_deadline_ms: 30_000,
            header_deadline_ms: 5_000,
            socket_timeout_ms: 30_000,
            read_retries: 3,
            backoff_base_ms: 5,
            breaker_threshold: 3,
            faults: None,
        }
    }
}

impl ServeConfig {
    /// The per-request [`ReadLimits`] this configuration implies:
    /// defaults, tightened so no parsed document may exceed the body
    /// cap.
    pub fn read_limits(&self) -> ReadLimits {
        let mut limits = ReadLimits::default();
        limits.max_input_bytes = limits.max_input_bytes.min(self.max_body);
        limits
    }
}

struct Queue {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

/// State shared by the acceptor, the workers, and the API handlers.
pub struct Shared {
    /// The experiment repository.
    pub repo: Repository,
    /// The configuration the server was started with.
    pub config: ServeConfig,
    /// Derived-result bytes keyed by canonical expression.
    pub results: Mutex<LruCache<String, Arc<Vec<u8>>>>,
    /// Plan tables keyed by the ordered operand-id list.
    pub plans: Mutex<LruCache<String, Arc<PlanTables>>>,
    /// Requests fully read and dispatched.
    pub requests: AtomicU64,
    /// `/eval` requests dispatched.
    pub evals: AtomicU64,
    /// Connections answered 429 at admission.
    pub rejected: AtomicU64,
    /// Requests answered `504 deadline_exceeded`.
    pub deadline_expirations: AtomicU64,
    /// `/eval` requests answered degraded (206 with omitted operands).
    pub degraded_evals: AtomicU64,
    queue: Mutex<Queue>,
    ready: Condvar,
    stop: AtomicBool,
}

impl Shared {
    fn new(repo: Repository, config: ServeConfig) -> Self {
        Self {
            repo,
            results: Mutex::new(LruCache::new(config.result_cache)),
            plans: Mutex::new(LruCache::new(config.plan_cache)),
            requests: AtomicU64::new(0),
            evals: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_expirations: AtomicU64::new(0),
            degraded_evals: AtomicU64::new(0),
            queue: Mutex::new(Queue {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            config,
        }
    }
}

/// A started server: its bound address plus the handles needed to stop
/// it. Dropping without [`RunningServer::join`] still signals the
/// threads to stop; `join` additionally waits for the drain.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    faults_active: bool,
}

/// Binds, spawns the acceptor and workers, and returns immediately.
/// `root` is the repository directory (created if needed).
pub fn start(config: ServeConfig, root: &Path) -> Result<RunningServer, ServeError> {
    let faults_active = match &config.faults {
        Some(spec) => {
            let plan = FaultPlan::parse(spec)
                .map_err(|e| ServeError::bad_request("bad_faults", format!("CUBE_FAULTS: {e}")))?;
            crate::faults::activate(plan)
        }
        None => false,
    };
    let mut repo = Repository::open_or_init(root, config.read_limits(), config.handle_cache)?;
    repo.set_resilience(
        config.read_retries,
        config.backoff_base_ms,
        config.breaker_threshold,
    );
    let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared::new(repo, config));

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cube-serve-accept".to_string())
            .spawn(move || accept_loop(&shared, &listener))
            .map_err(|e| ServeError::internal(format!("spawning acceptor: {e}")))?
    };
    let workers = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cube-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| ServeError::internal(format!("spawning worker {i}: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(RunningServer {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
        faults_active,
    })
}

impl RunningServer {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for tests and stats reporting.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Asks the acceptor and workers to stop. Already-admitted
    /// connections are still served; new ones are no longer accepted.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.ready_all();
    }

    fn ready_all(&self) {
        // Wake parked workers so they observe the closed queue.
        let _guard = lock_recover(&self.shared.queue);
        self.shared.ready.notify_all();
    }

    /// Waits for the acceptor to stop and the workers to drain the
    /// queue. Call [`RunningServer::shutdown`] first (or rely on a
    /// signal); `join` alone would wait forever.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown();
        if self.faults_active {
            // This server owned the fault schedule; make the hook
            // inert again so later servers in the same process (other
            // tests in the binary) see a clean read path.
            crate::faults::deactivate();
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) || signaled() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => admit(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    let mut queue = lock_recover(&shared.queue);
    queue.closed = true;
    drop(queue);
    shared.ready.notify_all();
}

fn admit(shared: &Shared, mut stream: TcpStream) {
    if shared.config.socket_timeout_ms > 0 {
        let t = Duration::from_millis(shared.config.socket_timeout_ms);
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let mut queue = lock_recover(&shared.queue);
    if queue.conns.len() >= shared.config.queue_depth {
        drop(queue);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        // Retry-After tells a well-behaved client how long to back off
        // before re-sending; the contract is documented in
        // docs/SERVE.md ("Overload and the client retry contract").
        let resp = api::error_response(&ServeError::with_status(
            429,
            "queue_full",
            format!(
                "admission queue is full ({} waiting); retry",
                shared.config.queue_depth
            ),
        ))
        .with_header("retry-after", "1");
        let _ = write_response(&mut stream, &resp);
        // The client may still be mid-send; closing with unread bytes
        // in the socket buffer raises RST and discards the 429 in
        // flight. Drain (briefly, bounded) until the client finishes,
        // so the rejection actually arrives.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 4096];
        for _ in 0..256 {
            match std::io::Read::read(&mut stream, &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        return;
    }
    queue.conns.push_back(stream);
    drop(queue);
    shared.ready.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(conn) = queue.conns.pop_front() {
                    break Some(conn);
                }
                if queue.closed {
                    break None;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match conn {
            Some(mut stream) => serve_connection(shared, &mut stream),
            None => break,
        }
    }
}

fn serve_connection(shared: &Shared, stream: &mut TcpStream) {
    if shared.config.delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(shared.config.delay_ms));
    }
    // The total budget starts when a worker picks the connection up,
    // so queue wait does not eat into it; the header budget is the
    // tighter slow-loris cap.
    let total = Deadline::after_ms(shared.config.request_deadline_ms);
    let head = Deadline::after_ms(shared.config.header_deadline_ms);
    let response = match read_request(stream, shared.config.max_body, &head, &total) {
        Ok(request) => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            api::handle(shared, &request, &total)
        }
        Err(HttpError::Closed) => return,
        Err(HttpError::Malformed(message)) => {
            api::error_response(&ServeError::bad_request("bad_http", message))
        }
        Err(HttpError::BodyTooLarge { declared, limit }) => {
            api::error_response(&ServeError::with_status(
                413,
                "body_too_large",
                format!("declared body of {declared} bytes exceeds the {limit}-byte cap"),
            ))
        }
        Err(HttpError::Io(e)) => {
            // Read timeout or reset mid-request: answer if the peer is
            // still there, otherwise the write fails harmlessly.
            api::error_response(&ServeError::bad_request(
                "read_failed",
                format!("could not read request: {e}"),
            ))
        }
        Err(HttpError::Deadline(phase)) => api::error_response(&ServeError::deadline(phase)),
    };
    if response.status == 504 {
        shared.deadline_expirations.fetch_add(1, Ordering::Relaxed);
    }
    // Arming the read timeout to a near-expired deadline leaves the
    // socket with a tiny timeout; restore the coarse one so writing
    // the response itself is not starved.
    if shared.config.socket_timeout_ms > 0 {
        let t = Duration::from_millis(shared.config.socket_timeout_ms);
        let _ = stream.set_write_timeout(Some(t));
    }
    let _ = write_response(stream, &response);
}

static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM and SIGINT handlers that flip the flag
/// [`signaled`] reads. Process-global; the CLI installs them once
/// before serving. `std` already links libc, so the raw `signal(2)`
/// binding adds no dependency.
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// True once SIGTERM or SIGINT has been delivered. The acceptor also
/// polls this, so a signal alone (without [`RunningServer::shutdown`])
/// begins a graceful drain.
pub fn signaled() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}
