//! The trace analyzer: replay, pattern search, experiment assembly.
//!
//! Analysis runs in three phases:
//!
//! 1. **Replay** (parallel over locations with Rayon): each location's
//!    event stream is replayed against a call stack, producing a local
//!    call tree with exclusive time, visit counts, *Late Sender*
//!    waiting (matched against the senders' send-post timestamps), and
//!    the per-instance enter/exit records of every collective.
//! 2. **Collective resolution** (sequential): the n-th instance of a
//!    collective operation across all locations is matched up;
//!    `last enter − own enter` becomes *Wait at Barrier* / *Wait at
//!    N x N*, `own exit − first exit` becomes *Barrier Completion*.
//! 3. **Assembly**: local call trees merge into one global call tree
//!    and the severity values land in a CUBE experiment.

use std::collections::HashMap;

use rayon::prelude::*;

use cube_model::builder::ExperimentBuilder;
use cube_model::{CallNodeId, CallSiteId, Experiment, RegionKind, ThreadId};
use epilog::{CollectiveOp, EpilogError, EventKind, Trace};

use crate::patterns::PatternIds;

/// Analyzer switches.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeOptions {
    /// Experiment name (provenance); defaults to
    /// `"EXPERT analysis of <machine>"`.
    pub name: Option<String>,
}

// ---------------------------------------------------------------------------
// Local (per-location) replay
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct LocalNode {
    parent: Option<usize>,
    region: u32,
    children: HashMap<u32, usize>,
}

#[derive(Clone, Copy, Debug)]
struct CollRecord {
    op: CollectiveOp,
    seq: usize,
    node: usize,
    enter: f64,
    exit: f64,
    root: i32,
}

#[derive(Clone, Debug, Default)]
struct LocalProfile {
    nodes: Vec<LocalNode>,
    time_excl: Vec<f64>,
    visits: Vec<f64>,
    late_sender: Vec<f64>,
    wait_nxn: Vec<f64>,
    late_broadcast: Vec<f64>,
    early_reduce: Vec<f64>,
    wait_barrier: Vec<f64>,
    barrier_completion: Vec<f64>,
    idle: Vec<f64>,
    colls: Vec<CollRecord>,
}

impl LocalProfile {
    fn node(&mut self, parent: Option<usize>, region: u32) -> usize {
        if let Some(p) = parent {
            if let Some(&n) = self.nodes[p].children.get(&region) {
                return n;
            }
        } else if let Some(n) = self
            .nodes
            .iter()
            .position(|n| n.parent.is_none() && n.region == region)
        {
            return n;
        }
        let id = self.nodes.len();
        self.nodes.push(LocalNode {
            parent,
            region,
            children: HashMap::new(),
        });
        self.time_excl.push(0.0);
        self.visits.push(0.0);
        self.late_sender.push(0.0);
        self.wait_nxn.push(0.0);
        self.late_broadcast.push(0.0);
        self.early_reduce.push(0.0);
        self.wait_barrier.push(0.0);
        self.barrier_completion.push(0.0);
        self.idle.push(0.0);
        if let Some(p) = parent {
            self.nodes[p].children.insert(region, id);
        }
        id
    }
}

struct Frame {
    node: usize,
    enter: f64,
    child_time: f64,
}

/// Sends available to one receiving location:
/// `(source rank, tag) → FIFO of send-post timestamps`.
type SendQueues = HashMap<(i32, i32), std::collections::VecDeque<f64>>;

fn replay_location(
    trace: &Trace,
    location: u32,
    mut sends: SendQueues,
) -> Result<LocalProfile, EpilogError> {
    let mut p = LocalProfile::default();
    let mut stack: Vec<Frame> = Vec::new();
    let mut coll_seq: HashMap<u8, usize> = HashMap::new();

    for e in trace.events_of(location) {
        match &e.kind {
            EventKind::Enter { region } => {
                let parent = stack.last().map(|f| f.node);
                let node = p.node(parent, *region);
                p.visits[node] += 1.0;
                stack.push(Frame {
                    node,
                    enter: e.time,
                    child_time: 0.0,
                });
            }
            EventKind::Exit { .. } => {
                let frame = stack.pop().ok_or_else(|| {
                    EpilogError::Invalid(format!("location {location}: exit with empty stack"))
                })?;
                let duration = e.time - frame.enter;
                p.time_excl[frame.node] += duration - frame.child_time;
                if let Some(parent) = stack.last_mut() {
                    parent.child_time += duration;
                }
            }
            EventKind::MpiRecv { source, tag, .. } => {
                let frame = stack.last().ok_or_else(|| {
                    EpilogError::Invalid(format!("location {location}: recv outside a region"))
                })?;
                if let Some(send_post) = sends.get_mut(&(*source, *tag)).and_then(|q| q.pop_front())
                {
                    let blocked = e.time - frame.enter;
                    let wait = (send_post - frame.enter).clamp(0.0, blocked.max(0.0));
                    p.late_sender[frame.node] += wait;
                }
            }
            EventKind::MpiSend { .. } => {
                // Eager sends never block: Late Receiver severity is zero.
            }
            EventKind::CollectiveExit { op, root, .. } => {
                let frame = stack.last().ok_or_else(|| {
                    EpilogError::Invalid(format!(
                        "location {location}: collective outside a region"
                    ))
                })?;
                let seq_slot = coll_seq.entry(op.tag()).or_insert(0);
                let seq = *seq_slot;
                *seq_slot += 1;
                p.colls.push(CollRecord {
                    op: *op,
                    seq,
                    node: frame.node,
                    enter: frame.enter,
                    exit: e.time,
                    root: *root,
                });
            }
        }
    }
    if !stack.is_empty() {
        return Err(EpilogError::Invalid(format!(
            "location {location}: {} unclosed region(s)",
            stack.len()
        )));
    }
    Ok(p)
}

// ---------------------------------------------------------------------------
// Analysis driver
// ---------------------------------------------------------------------------

/// Classification of a region by its name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegionClass {
    User,
    P2pSend,
    P2pRecv,
    Barrier,
    CollectiveData,
    OtherMpi,
}

fn classify(name: &str) -> RegionClass {
    match name {
        "MPI_Send" | "MPI_Isend" | "MPI_Ssend" | "MPI_Bsend" => RegionClass::P2pSend,
        "MPI_Recv" | "MPI_Irecv" => RegionClass::P2pRecv,
        "MPI_Barrier" => RegionClass::Barrier,
        "MPI_Alltoall" | "MPI_Allgather" | "MPI_Allreduce" | "MPI_Bcast" | "MPI_Reduce"
        | "MPI_Scatter" | "MPI_Gather" | "MPI_Reduce_scatter" => RegionClass::CollectiveData,
        _ if name.starts_with("MPI_") => RegionClass::OtherMpi,
        _ => RegionClass::User,
    }
}

/// Analyzes a trace and returns the resulting CUBE experiment.
///
/// The trace is validated first; analysis itself cannot fail on a valid
/// trace.
pub fn analyze(trace: &Trace, options: &AnalyzeOptions) -> Result<Experiment, EpilogError> {
    trace.validate()?;

    // Pre-group point-to-point sends by receiving rank.
    let mut send_queues: HashMap<i32, SendQueues> = HashMap::new();
    for e in &trace.events {
        if let EventKind::MpiSend { dest, tag, .. } = &e.kind {
            let src = trace.defs.locations[e.location as usize].rank;
            send_queues
                .entry(*dest)
                .or_default()
                .entry((src, *tag))
                .or_default()
                .push_back(e.time);
        }
    }

    // Phase 1: parallel replay.
    let locations: Vec<u32> = (0..trace.defs.locations.len() as u32).collect();
    let mut profiles: Vec<LocalProfile> = locations
        .par_iter()
        .map(|&loc| {
            let rank = trace.defs.locations[loc as usize].rank;
            let queues = send_queues.get(&rank).cloned().unwrap_or_default();
            replay_location(trace, loc, queues)
        })
        .collect::<Result<_, _>>()?;

    // Phase 2: collective instances across locations.
    struct Member {
        location: usize,
        node: usize,
        enter: f64,
        exit: f64,
        root: i32,
    }
    let mut instances: HashMap<(u8, usize), Vec<Member>> = HashMap::new();
    for (li, p) in profiles.iter().enumerate() {
        for c in &p.colls {
            instances
                .entry((c.op.tag(), c.seq))
                .or_default()
                .push(Member {
                    location: li,
                    node: c.node,
                    enter: c.enter,
                    exit: c.exit,
                    root: c.root,
                });
        }
    }
    let rank_of = |li: usize| trace.defs.locations[li].rank;
    for ((op_tag, _), members) in &instances {
        let op = CollectiveOp::from_tag(*op_tag).expect("tag from a valid op");
        let last_enter = members
            .iter()
            .map(|m| m.enter)
            .fold(f64::NEG_INFINITY, f64::max);
        let first_exit = members.iter().map(|m| m.exit).fold(f64::INFINITY, f64::min);
        match op {
            CollectiveOp::Barrier => {
                for m in members {
                    profiles[m.location].wait_barrier[m.node] += (last_enter - m.enter).max(0.0);
                    profiles[m.location].barrier_completion[m.node] +=
                        (m.exit - first_exit).max(0.0);
                }
            }
            CollectiveOp::AllToAll | CollectiveOp::AllReduce => {
                for m in members {
                    profiles[m.location].wait_nxn[m.node] += (last_enter - m.enter).max(0.0);
                }
            }
            CollectiveOp::Broadcast => {
                // Non-root ranks that enter before the root wait for it.
                if let Some(root) = members.iter().find(|m| rank_of(m.location) == m.root) {
                    let root_enter = root.enter;
                    for m in members {
                        if rank_of(m.location) != m.root {
                            let wait =
                                (root_enter - m.enter).clamp(0.0, (m.exit - m.enter).max(0.0));
                            profiles[m.location].late_broadcast[m.node] += wait;
                        }
                    }
                }
            }
            CollectiveOp::Reduce => {
                // A root that enters before the last sender waits for it.
                if let Some(root_idx) = members.iter().position(|m| rank_of(m.location) == m.root) {
                    let last_sender_enter = members
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != root_idx)
                        .map(|(_, m)| m.enter)
                        .fold(f64::NEG_INFINITY, f64::max);
                    let root = &members[root_idx];
                    let wait = (last_sender_enter - root.enter)
                        .clamp(0.0, (root.exit - root.enter).max(0.0));
                    profiles[root.location].early_reduce[root.node] += wait;
                }
            }
        }
    }

    // Phase 2b: Idle Threads (hybrid MPI + OpenMP runs). A worker
    // location is busy only inside parallel regions; the rest of its
    // rank's wall-clock span is idleness caused by the master's
    // sequential execution. The idle time is attributed to the rank's
    // root call path at the worker location (a simplification of
    // EXPERT's time-interval mapping, documented in DESIGN.md).
    {
        let nloc = trace.defs.locations.len();
        let mut spans: Vec<Option<(f64, f64)>> = vec![None; nloc];
        for e in &trace.events {
            let slot = &mut spans[e.location as usize];
            *slot = Some(match slot {
                Some((lo, hi)) => (lo.min(e.time), hi.max(e.time)),
                None => (e.time, e.time),
            });
        }
        for li in 0..nloc {
            let loc = trace.defs.locations[li].clone();
            if loc.thread == 0 {
                continue;
            }
            let Some(master_li) = trace
                .defs
                .locations
                .iter()
                .position(|l| l.rank == loc.rank && l.thread == 0)
            else {
                continue;
            };
            let Some((ms, me)) = spans[master_li] else {
                continue;
            };
            let busy: f64 = profiles[li].time_excl.iter().sum();
            let idle = ((me - ms) - busy).max(0.0);
            if idle <= 0.0 {
                continue;
            }
            let Some(root_region) = profiles[master_li]
                .nodes
                .iter()
                .find(|n| n.parent.is_none())
                .map(|n| n.region)
            else {
                continue;
            };
            let node = profiles[li].node(None, root_region);
            profiles[li].idle[node] += idle;
        }
    }

    // Phase 3: assemble the experiment.
    let name = options
        .name
        .clone()
        .unwrap_or_else(|| format!("EXPERT analysis of {}", trace.defs.machine_name));
    let mut b = ExperimentBuilder::new(name);
    let pat = PatternIds::define(&mut b);

    // Program dimension: modules per distinct file, regions from the
    // trace's region table, one call site per global call-tree node.
    let mut module_of_file: HashMap<&str, cube_model::ModuleId> = HashMap::new();
    let mut region_ids = Vec::with_capacity(trace.defs.regions.len());
    for r in &trace.defs.regions {
        let module = *module_of_file
            .entry(r.file.as_str())
            .or_insert_with(|| b.def_module(r.file.clone(), r.file.clone()));
        // EPILOG region records carry no kind distinction this analyzer
        // uses; MPI and user regions are told apart later by name.
        let kind = RegionKind::Function;
        region_ids.push(b.def_region(r.name.clone(), module, kind, r.line, r.line));
    }

    // Merge local call trees into a global tree keyed by
    // (parent, region). `global[key] -> (CallNodeId, CallSiteId)`.
    let mut global: HashMap<(Option<CallNodeId>, u32), CallNodeId> = HashMap::new();
    let mut site_of_region: HashMap<u32, CallSiteId> = HashMap::new();
    // Per location: local node index -> global call node.
    let mut node_maps: Vec<Vec<CallNodeId>> = Vec::with_capacity(profiles.len());
    for p in &profiles {
        let mut map = Vec::with_capacity(p.nodes.len());
        // Local nodes were created parent-before-child, so a single
        // forward pass suffices.
        for n in &p.nodes {
            let parent_global = n.parent.map(|pi| map[pi]);
            let key = (parent_global, n.region);
            let id = match global.get(&key) {
                Some(&id) => id,
                None => {
                    let region = region_ids[n.region as usize];
                    let site = *site_of_region.entry(n.region).or_insert_with(|| {
                        let def = &trace.defs.regions[n.region as usize];
                        b.def_call_site(def.file.clone(), def.line, region)
                    });
                    let id = b.def_call_node(site, parent_global);
                    global.insert(key, id);
                    id
                }
            };
            map.push(id);
        }
        node_maps.push(map);
    }

    // System dimension.
    let machine = b.def_machine(trace.defs.machine_name.clone());
    let node_ids: Vec<_> = trace
        .defs
        .node_names
        .iter()
        .map(|n| b.def_node(n.clone(), machine))
        .collect();
    let mut process_of_rank: HashMap<i32, cube_model::ProcessId> = HashMap::new();
    let mut thread_of_location: Vec<ThreadId> = Vec::with_capacity(trace.defs.locations.len());
    for l in &trace.defs.locations {
        let process = *process_of_rank.entry(l.rank).or_insert_with(|| {
            let node = node_ids
                .get(l.node_index as usize)
                .copied()
                .unwrap_or(node_ids[0]);
            b.def_process(format!("rank {}", l.rank), l.rank, node)
        });
        thread_of_location.push(b.def_thread(
            format!("rank {} thread {}", l.rank, l.thread),
            l.thread,
            process,
        ));
    }

    // Topology recorded with the trace (instrumented MPI_Cart_create).
    if let Some(t) = &trace.defs.topology {
        let mut topo =
            cube_model::CartTopology::new(t.name.clone(), t.dims.clone(), t.periodic.clone());
        for (rank, c) in &t.coords {
            if let Some(p) = process_of_rank.get(rank) {
                topo.coords.push((*p, c.clone()));
            }
        }
        b.def_topology(topo);
    }

    // Severity. Stored values are call-exclusive and metric-inclusive:
    // the hierarchy metrics (Execution, MPI, Communication, ...) are
    // restrictions of Time to the call paths of the relevant class.
    for (li, p) in profiles.iter().enumerate() {
        let thread = thread_of_location[li];
        for (ni, node) in p.nodes.iter().enumerate() {
            let cnode = node_maps[li][ni];
            let t = p.time_excl[ni];
            let idle = p.idle[ni];
            let class = classify(&trace.defs.regions[node.region as usize].name);
            if p.visits[ni] > 0.0 {
                b.set_severity(pat.visits, cnode, thread, p.visits[ni]);
            }
            if t != 0.0 || idle != 0.0 {
                b.set_severity(pat.time, cnode, thread, t + idle);
            }
            if t != 0.0 {
                b.set_severity(pat.execution, cnode, thread, t);
            }
            if idle > 0.0 {
                b.set_severity(pat.idle_threads, cnode, thread, idle);
            }
            match class {
                RegionClass::User => {}
                RegionClass::OtherMpi => {
                    b.set_severity(pat.mpi, cnode, thread, t);
                }
                RegionClass::P2pSend | RegionClass::P2pRecv => {
                    b.set_severity(pat.mpi, cnode, thread, t);
                    b.set_severity(pat.communication, cnode, thread, t);
                    b.set_severity(pat.p2p, cnode, thread, t);
                    if p.late_sender[ni] > 0.0 {
                        b.set_severity(pat.late_sender, cnode, thread, p.late_sender[ni]);
                    }
                }
                RegionClass::CollectiveData => {
                    b.set_severity(pat.mpi, cnode, thread, t);
                    b.set_severity(pat.communication, cnode, thread, t);
                    b.set_severity(pat.collective, cnode, thread, t);
                    if p.wait_nxn[ni] > 0.0 {
                        b.set_severity(pat.wait_at_nxn, cnode, thread, p.wait_nxn[ni]);
                    }
                    if p.late_broadcast[ni] > 0.0 {
                        b.set_severity(pat.late_broadcast, cnode, thread, p.late_broadcast[ni]);
                    }
                    if p.early_reduce[ni] > 0.0 {
                        b.set_severity(pat.early_reduce, cnode, thread, p.early_reduce[ni]);
                    }
                }
                RegionClass::Barrier => {
                    b.set_severity(pat.mpi, cnode, thread, t);
                    b.set_severity(pat.synchronization, cnode, thread, t);
                    if p.wait_barrier[ni] > 0.0 {
                        b.set_severity(pat.wait_at_barrier, cnode, thread, p.wait_barrier[ni]);
                    }
                    if p.barrier_completion[ni] > 0.0 {
                        b.set_severity(
                            pat.barrier_completion,
                            cnode,
                            thread,
                            p.barrier_completion[ni],
                        );
                    }
                }
            }
        }
    }

    b.build().map_err(|e| EpilogError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::aggregate::{metric_total, MetricSelection};
    use simmpi::apps::{pescan, sweep3d, PescanConfig, Sweep3dConfig};
    use simmpi::{simulate, EpilogTracer, MachineModel};

    fn trace_of(program: &simmpi::Program) -> Trace {
        let mut tracer = EpilogTracer::new("simulated cluster", 4);
        simulate(program, &MachineModel::default(), &mut tracer).unwrap();
        tracer.into_trace()
    }

    fn metric_sum(e: &Experiment, name: &str) -> f64 {
        let m = e.metadata().find_metric(name).unwrap();
        metric_total(e, MetricSelection::inclusive(m))
    }

    #[test]
    fn pescan_analysis_shows_barrier_waiting() {
        let t = trace_of(&pescan(&PescanConfig::default()));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        e.validate().unwrap();

        let time = metric_sum(&e, "Time");
        let wab = metric_sum(&e, "Wait at Barrier");
        let sync = metric_sum(&e, "Synchronization");
        assert!(time > 0.0);
        assert!(wab > 0.0, "barriers must produce waiting");
        assert!(sync >= wab, "waiting is a subset of synchronization");
        // Figure 1's headline: a large fraction of execution time is
        // Wait-at-Barrier — calibrated to sit near 13 %.
        let frac = wab / time;
        assert!(
            (0.05..0.30).contains(&frac),
            "Wait-at-Barrier fraction {frac:.3} implausible"
        );
        // Completion exists thanks to exit skew.
        assert!(metric_sum(&e, "Barrier Completion") > 0.0);
    }

    #[test]
    fn optimized_pescan_has_no_barrier_metrics() {
        let t = trace_of(&pescan(&PescanConfig {
            barriers: false,
            ..PescanConfig::default()
        }));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        assert_eq!(metric_sum(&e, "Wait at Barrier"), 0.0);
        assert_eq!(metric_sum(&e, "Synchronization"), 0.0);
        // Waiting migrated to P2P and NxN instead.
        assert!(metric_sum(&e, "Late Sender") > 0.0);
        assert!(metric_sum(&e, "Wait at N x N") > 0.0);
    }

    #[test]
    fn sweep3d_analysis_shows_late_sender() {
        let t = trace_of(&sweep3d(&Sweep3dConfig::default()));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        e.validate().unwrap();
        let ls = metric_sum(&e, "Late Sender");
        let p2p = metric_sum(&e, "P2P");
        assert!(ls > 0.0, "wavefront must produce Late Sender");
        assert!(p2p >= ls);
        // Late Sender should dominate P2P time in a pipeline fill.
        assert!(
            ls / p2p > 0.3,
            "Late Sender only {:.1}% of P2P",
            ls / p2p * 100.0
        );
    }

    #[test]
    fn hierarchy_inclusion_invariants_hold() {
        let t = trace_of(&pescan(&PescanConfig::default()));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        let time = metric_sum(&e, "Time");
        let exec = metric_sum(&e, "Execution");
        let mpi = metric_sum(&e, "MPI");
        let comm = metric_sum(&e, "Communication");
        let coll = metric_sum(&e, "Collective");
        let p2p = metric_sum(&e, "P2P");
        let sync = metric_sum(&e, "Synchronization");
        assert!(exec <= time + 1e-9);
        assert!(mpi <= exec + 1e-9);
        assert!(comm + sync <= mpi + 1e-9);
        assert!(coll + p2p <= comm + 1e-9);
        assert!(metric_sum(&e, "Wait at N x N") <= coll + 1e-9);
        assert!(metric_sum(&e, "Late Sender") <= p2p + 1e-9);
    }

    #[test]
    fn time_matches_trace_duration() {
        // Total Time = sum over locations of their root-region spans.
        let t = trace_of(&pescan(&PescanConfig {
            ranks: 4,
            iterations: 3,
            ..PescanConfig::default()
        }));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        let time = metric_sum(&e, "Time");
        // Each location's events span its root enter..exit.
        let mut expected = 0.0;
        for loc in 0..t.defs.locations.len() as u32 {
            let events: Vec<_> = t.events_of(loc).collect();
            expected += events.last().unwrap().time - events.first().unwrap().time;
        }
        assert!(
            (time - expected).abs() < 1e-9,
            "Time {time} != trace span {expected}"
        );
    }

    #[test]
    fn call_tree_matches_program_structure() {
        let t = trace_of(&pescan(&PescanConfig {
            ranks: 4,
            iterations: 2,
            ..PescanConfig::default()
        }));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        let md = e.metadata();
        assert_eq!(md.call_roots().len(), 1);
        let root = md.call_roots()[0];
        assert_eq!(md.region(md.call_node_callee(root)).name, "main");
        // main's children: setup, solver.
        let children: Vec<&str> = md
            .call_node_children(root)
            .iter()
            .map(|&c| md.region(md.call_node_callee(c)).name.as_str())
            .collect();
        assert_eq!(children, vec!["setup", "solver"]);
        // The barrier call path exists under solver.
        assert!(md
            .call_node_ids()
            .any(|c| md.region(md.call_node_callee(c)).name == "MPI_Barrier"));
    }

    #[test]
    fn visits_count_program_iterations() {
        let cfg = PescanConfig {
            ranks: 4,
            iterations: 5,
            ..PescanConfig::default()
        };
        let t = trace_of(&pescan(&cfg));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        let md = e.metadata();
        let visits = md.find_metric("Visits").unwrap();
        let fft = md
            .call_node_ids()
            .find(|&c| md.region(md.call_node_callee(c)).name == "fft_forward")
            .unwrap();
        let total: f64 = (0..md.num_threads())
            .map(|ti| e.severity().get(visits, fft, ThreadId::from_index(ti)))
            .sum();
        assert_eq!(total, (cfg.ranks * cfg.iterations) as f64);
    }

    #[test]
    fn stencil_analysis_shows_rooted_collective_patterns() {
        use simmpi::apps::{stencil, StencilConfig};
        let t = trace_of(&stencil(&StencilConfig::default()));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        e.validate().unwrap();
        // Rank 0 broadcasts late → others wait (Late Broadcast).
        let lb = metric_sum(&e, "Late Broadcast");
        assert!(lb > 0.0, "late broadcast must be detected");
        // Rank 0 is fastest under the static imbalance → it reaches the
        // final reduce early and waits (Early Reduce).
        let er = metric_sum(&e, "Early Reduce");
        assert!(er > 0.0, "early reduce must be detected");
        // Both are subsets of Collective time.
        let coll = metric_sum(&e, "Collective");
        assert!(lb + er + metric_sum(&e, "Wait at N x N") <= coll + 1e-9);
        // Late Broadcast severity sits at MPI_Bcast call paths only.
        let md = e.metadata();
        let m = md.find_metric("Late Broadcast").unwrap();
        for (_, c, _, v) in e.severity().iter_nonzero().filter(|(mm, _, _, _)| *mm == m) {
            assert!(v > 0.0);
            assert_eq!(md.region(md.call_node_callee(c)).name, "MPI_Bcast");
        }
    }

    #[test]
    fn early_reduce_attributed_to_the_root_only() {
        use simmpi::apps::{stencil, StencilConfig};
        let t = trace_of(&stencil(&StencilConfig {
            imbalance: 0.5,
            ..StencilConfig::default()
        }));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        let md = e.metadata();
        let m = md.find_metric("Early Reduce").unwrap();
        for (_, _, t_id, v) in e.severity().iter_nonzero().filter(|(mm, _, _, _)| *mm == m) {
            assert!(v > 0.0);
            let rank = md.process(md.thread(t_id).process).rank;
            assert_eq!(rank, 0, "early reduce belongs to the reduction root");
        }
    }

    #[test]
    fn hybrid_analysis_shows_idle_threads() {
        use simmpi::apps::{hybrid, HybridConfig};
        let t = trace_of(&hybrid(&HybridConfig::default()));
        t.validate().unwrap();
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        e.validate().unwrap();
        let md = e.metadata();
        // 4 ranks × 4 threads.
        assert_eq!(md.processes().len(), 4);
        assert_eq!(md.num_threads(), 16);
        let idle = metric_sum(&e, "Idle Threads");
        assert!(idle > 0.0, "sequential sections must idle the workers");
        // Time ⊇ Execution + Idle Threads (metric-inclusive convention).
        let time = metric_sum(&e, "Time");
        let exec = metric_sum(&e, "Execution");
        assert!(exec + idle <= time + 1e-9);
        // The parallel region is a call path shared by all threads.
        let omp = md
            .call_node_ids()
            .find(|&c| md.region(md.call_node_callee(c)).name == "!$omp parallel")
            .expect("parallel region call path");
        let visits = md.find_metric("Visits").unwrap();
        let total_visits: f64 = (0..md.num_threads())
            .map(|ti| e.severity().get(visits, omp, ThreadId::from_index(ti)))
            .sum();
        // Every thread of every rank visits every iteration's region.
        assert_eq!(total_visits, (4 * 4 * 12) as f64);
    }

    #[test]
    fn idle_threads_zero_for_pure_mpi() {
        let t = trace_of(&pescan(&PescanConfig {
            ranks: 4,
            iterations: 2,
            ..PescanConfig::default()
        }));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        assert_eq!(metric_sum(&e, "Idle Threads"), 0.0);
    }

    #[test]
    fn worker_idle_time_is_attributed_to_workers_only() {
        use simmpi::apps::{hybrid, HybridConfig};
        let t = trace_of(&hybrid(&HybridConfig {
            ranks: 2,
            threads: 3,
            iterations: 4,
            ..HybridConfig::default()
        }));
        let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
        let md = e.metadata();
        let idle = md.find_metric("Idle Threads").unwrap();
        for (_, _, t_id, v) in e
            .severity()
            .iter_nonzero()
            .filter(|(m, _, _, _)| *m == idle)
        {
            assert!(v > 0.0);
            assert!(
                md.thread(t_id).number > 0,
                "master threads never idle in this model"
            );
        }
    }

    #[test]
    fn custom_name_is_used() {
        let t = trace_of(&pescan(&PescanConfig {
            ranks: 2,
            iterations: 1,
            ..PescanConfig::default()
        }));
        let e = analyze(
            &t,
            &AnalyzeOptions {
                name: Some("my run".into()),
            },
        )
        .unwrap();
        assert_eq!(e.provenance().label(), "my run");
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let mut t = trace_of(&pescan(&PescanConfig {
            ranks: 2,
            iterations: 1,
            ..PescanConfig::default()
        }));
        t.events
            .push(epilog::Event::new(0.0, 0, EventKind::Enter { region: 0 }));
        assert!(analyze(&t, &AnalyzeOptions::default()).is_err());
    }
}
