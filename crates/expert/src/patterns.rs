//! The pattern (metric) hierarchy EXPERT reports.

use cube_model::{ExperimentBuilder, MetricId, Unit};

/// Metric identifiers of every pattern, in the hierarchy the analyzer
/// emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternIds {
    /// Root: total wall-clock time per (call path, location).
    pub time: MetricId,
    /// Time spent executing the application (vs. idling; equal to the
    /// whole measured time for pure MPI runs).
    pub execution: MetricId,
    /// Time worker threads sit idle outside parallel regions while the
    /// master executes sequential code (hybrid MPI + OpenMP runs).
    pub idle_threads: MetricId,
    /// Time inside MPI routines.
    pub mpi: MetricId,
    /// Time inside data-moving MPI routines.
    pub communication: MetricId,
    /// Time inside collective data-moving routines.
    pub collective: MetricId,
    /// Inherent N×N synchronization waiting inside all-to-all style
    /// collectives.
    pub wait_at_nxn: MetricId,
    /// Non-root ranks waiting in a broadcast for a late root.
    pub late_broadcast: MetricId,
    /// The root of a reduction waiting for late senders.
    pub early_reduce: MetricId,
    /// Time inside point-to-point routines.
    pub p2p: MetricId,
    /// Receiver waiting for a not-yet-posted send.
    pub late_sender: MetricId,
    /// Sender waiting for a not-yet-posted receive.
    pub late_receiver: MetricId,
    /// Time inside barrier synchronization.
    pub synchronization: MetricId,
    /// Waiting in front of the barrier for the last participant.
    pub wait_at_barrier: MetricId,
    /// Time in the barrier after the first process left it.
    pub barrier_completion: MetricId,
    /// Visit counts (occurrences) per call path and location.
    pub visits: MetricId,
}

impl PatternIds {
    /// Defines the full pattern hierarchy on a builder and returns the
    /// identifiers.
    pub fn define(b: &mut ExperimentBuilder) -> Self {
        let time = b.def_metric("Time", Unit::Seconds, "Total wall-clock time", None);
        let execution = b.def_metric(
            "Execution",
            Unit::Seconds,
            "Time spent executing the application",
            Some(time),
        );
        let idle_threads = b.def_metric(
            "Idle Threads",
            Unit::Seconds,
            "Worker threads idling outside parallel regions",
            Some(time),
        );
        let mpi = b.def_metric(
            "MPI",
            Unit::Seconds,
            "Time spent in MPI routines",
            Some(execution),
        );
        let communication = b.def_metric(
            "Communication",
            Unit::Seconds,
            "Time spent in data-moving MPI routines",
            Some(mpi),
        );
        let collective = b.def_metric(
            "Collective",
            Unit::Seconds,
            "Time spent in collective communication",
            Some(communication),
        );
        let wait_at_nxn = b.def_metric(
            "Wait at N x N",
            Unit::Seconds,
            "Waiting for the last participant of an N-to-N operation",
            Some(collective),
        );
        let late_broadcast = b.def_metric(
            "Late Broadcast",
            Unit::Seconds,
            "Non-root ranks waiting in a broadcast for a late root",
            Some(collective),
        );
        let early_reduce = b.def_metric(
            "Early Reduce",
            Unit::Seconds,
            "The reduction root waiting for late senders",
            Some(collective),
        );
        let p2p = b.def_metric(
            "P2P",
            Unit::Seconds,
            "Time spent in point-to-point communication",
            Some(communication),
        );
        let late_sender = b.def_metric(
            "Late Sender",
            Unit::Seconds,
            "Receiver blocked on a message whose send was not yet posted",
            Some(p2p),
        );
        let late_receiver = b.def_metric(
            "Late Receiver",
            Unit::Seconds,
            "Sender blocked on a receive that was not yet posted",
            Some(p2p),
        );
        let synchronization = b.def_metric(
            "Synchronization",
            Unit::Seconds,
            "Time spent in barrier synchronization",
            Some(mpi),
        );
        let wait_at_barrier = b.def_metric(
            "Wait at Barrier",
            Unit::Seconds,
            "Waiting in front of the barrier for the last participant",
            Some(synchronization),
        );
        let barrier_completion = b.def_metric(
            "Barrier Completion",
            Unit::Seconds,
            "Time in the barrier after the first process has left it",
            Some(synchronization),
        );
        let visits = b.def_metric(
            "Visits",
            Unit::Occurrences,
            "Number of visits per call path",
            None,
        );
        Self {
            time,
            execution,
            idle_threads,
            mpi,
            communication,
            collective,
            wait_at_nxn,
            late_broadcast,
            early_reduce,
            p2p,
            late_sender,
            late_receiver,
            synchronization,
            wait_at_barrier,
            barrier_completion,
            visits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_well_formed() {
        let mut b = ExperimentBuilder::new("p");
        let ids = PatternIds::define(&mut b);
        let md = b.metadata();
        md.validate().unwrap();
        // Two roots: Time and Visits.
        assert_eq!(md.metric_roots(), &[ids.time, ids.visits]);
        // Spot-check parent relations.
        assert_eq!(md.metric(ids.execution).parent, Some(ids.time));
        assert_eq!(md.metric(ids.wait_at_nxn).parent, Some(ids.collective));
        assert_eq!(md.metric(ids.late_sender).parent, Some(ids.p2p));
        assert_eq!(
            md.metric(ids.barrier_completion).parent,
            Some(ids.synchronization)
        );
        // Units: everything under Time is seconds, Visits is occurrences.
        assert_eq!(md.metric(ids.wait_at_barrier).unit, Unit::Seconds);
        assert_eq!(md.metric(ids.visits).unit, Unit::Occurrences);
    }

    #[test]
    fn names_match_the_paper_figures() {
        let mut b = ExperimentBuilder::new("p");
        let ids = PatternIds::define(&mut b);
        let md = b.metadata();
        assert_eq!(md.metric(ids.wait_at_barrier).name, "Wait at Barrier");
        assert_eq!(md.metric(ids.wait_at_nxn).name, "Wait at N x N");
        assert_eq!(md.metric(ids.p2p).name, "P2P");
    }
}
