//! # expert — post-mortem trace analysis
//!
//! Reproduces the EXPERT analyzer the paper pairs with CUBE: it searches
//! an EPILOG event trace for execution patterns that indicate
//! inefficient behavior and transforms the trace into "a compact
//! representation of performance behavior, which is essentially a
//! mapping of tuples (performance problem, call path, location) onto
//! the time spent on a particular performance problem" — i.e. a CUBE
//! experiment.
//!
//! ## Pattern hierarchy
//!
//! The performance problems form a specialization hierarchy (general →
//! specific), which becomes the experiment's metric tree:
//!
//! ```text
//! Time
//! ├─ Idle Threads          (hybrid MPI + OpenMP runs)
//! └─ Execution
//!    └─ MPI
//!       ├─ Communication
//!       │  ├─ Collective
//!       │  │  ├─ Wait at N x N
//!       │  │  ├─ Late Broadcast
//!       │  │  └─ Early Reduce
//!       │  └─ P2P
//!       │     ├─ Late Sender
//!       │     └─ Late Receiver
//!       └─ Synchronization
//!          ├─ Wait at Barrier
//!          └─ Barrier Completion
//! Visits
//! ```
//!
//! * **Wait at Barrier** — time a process waits inside the barrier for
//!   the last participant to reach it (`last enter − own enter`);
//! * **Barrier Completion** — time spent in the barrier after the first
//!   process has left it (`own exit − first exit`);
//! * **Wait at N x N** — the same inherent synchronization applied to
//!   all-to-all style collectives;
//! * **Late Broadcast** — non-root ranks waiting inside a broadcast
//!   because the root entered late;
//! * **Early Reduce** — the reduction root waiting because it entered
//!   before the last sender;
//! * **Late Sender** — a receiver blocked waiting for a message whose
//!   send had not been posted yet;
//! * **Late Receiver** — a sender blocked on an unposted receive (zero
//!   under the simulator's eager-send model, reported for hierarchy
//!   fidelity).
//!
//! Severity values are seconds, mapped onto the call path of the MPI
//! operation and the location that incurred the waiting — exactly the
//! (metric, call path, thread) domain of the CUBE data model.

pub mod analyzer;
pub mod patterns;

pub use analyzer::{analyze, AnalyzeOptions};
pub use patterns::PatternIds;
