//! Precision tests: hand-built traces with known timestamps, so every
//! pattern's severity is checked against an exact hand-computed value
//! (the app-based tests only check shapes).

use cube_model::aggregate::{metric_total, MetricSelection};
use cube_model::Experiment;
use epilog::{CollectiveOp, Event, EventKind, RegionDef, Trace, TraceDefs};
use expert::{analyze, AnalyzeOptions};

fn total(e: &Experiment, name: &str) -> f64 {
    let m = e.metadata().find_metric(name).unwrap();
    metric_total(e, MetricSelection::inclusive(m))
}

fn defs(ranks: usize) -> TraceDefs {
    let mut d = TraceDefs::pure_mpi("handmade", ranks, 1);
    for (name, file) in [
        ("main", "app.c"),
        ("MPI_Send", "mpi"),
        ("MPI_Recv", "mpi"),
        ("MPI_Barrier", "mpi"),
        ("MPI_Allreduce", "mpi"),
        ("MPI_Bcast", "mpi"),
        ("MPI_Reduce", "mpi"),
    ] {
        d.regions.push(RegionDef {
            name: name.into(),
            file: file.into(),
            line: 0,
        });
    }
    d
}

const MAIN: u32 = 0;
const SEND: u32 = 1;
const RECV: u32 = 2;
const BARRIER: u32 = 3;
const ALLREDUCE: u32 = 4;
const BCAST: u32 = 5;
const REDUCE: u32 = 6;

fn ev(t: f64, loc: u32, kind: EventKind) -> Event {
    Event::new(t, loc, kind)
}

#[test]
fn late_sender_is_the_send_delay() {
    // Rank 1 posts a recv at t=1; rank 0 posts the send at t=4; the
    // message arrives and the recv completes at t=5.
    // Late Sender = send_post − recv_enter = 3.
    let mut t = Trace::new(defs(2));
    t.push(ev(0.0, 0, EventKind::Enter { region: MAIN }));
    t.push(ev(4.0, 0, EventKind::Enter { region: SEND }));
    t.push(ev(
        4.0,
        0,
        EventKind::MpiSend {
            dest: 1,
            tag: 7,
            bytes: 100,
        },
    ));
    t.push(ev(4.2, 0, EventKind::Exit { region: SEND }));
    t.push(ev(10.0, 0, EventKind::Exit { region: MAIN }));

    t.push(ev(0.0, 1, EventKind::Enter { region: MAIN }));
    t.push(ev(1.0, 1, EventKind::Enter { region: RECV }));
    t.push(ev(
        5.0,
        1,
        EventKind::MpiRecv {
            source: 0,
            tag: 7,
            bytes: 100,
        },
    ));
    t.push(ev(5.0, 1, EventKind::Exit { region: RECV }));
    t.push(ev(10.0, 1, EventKind::Exit { region: MAIN }));

    let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
    assert!((total(&e, "Late Sender") - 3.0).abs() < 1e-12);
    // The recv region time is 4 seconds, all of it P2P.
    assert!((total(&e, "P2P") - (4.0 + 0.2)).abs() < 1e-12);
    assert!((total(&e, "Time") - 20.0).abs() < 1e-12);
}

#[test]
fn late_sender_clamps_to_the_blocking_interval() {
    // Send posted after the receive already completed (eager buffered
    // match): waiting cannot exceed the time actually spent blocked.
    let mut t = Trace::new(defs(2));
    t.push(ev(0.0, 0, EventKind::Enter { region: MAIN }));
    t.push(ev(
        1.0,
        0,
        EventKind::MpiSend {
            dest: 1,
            tag: 0,
            bytes: 8,
        },
    ));
    t.push(ev(9.0, 0, EventKind::Exit { region: MAIN }));
    t.push(ev(0.0, 1, EventKind::Enter { region: MAIN }));
    t.push(ev(2.0, 1, EventKind::Enter { region: RECV }));
    t.push(ev(
        2.5,
        1,
        EventKind::MpiRecv {
            source: 0,
            tag: 0,
            bytes: 8,
        },
    ));
    t.push(ev(2.5, 1, EventKind::Exit { region: RECV }));
    t.push(ev(9.0, 1, EventKind::Exit { region: MAIN }));
    let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
    // Send at 1.0 predates the recv enter at 2.0 → no waiting at all.
    assert_eq!(total(&e, "Late Sender"), 0.0);
}

#[test]
fn barrier_waits_and_completion_are_exact() {
    // Ranks enter the barrier at 1, 3, 6; everyone leaves: rank0 at 7,
    // rank1 at 6.5, rank2 at 6.25.
    // Wait-at-Barrier: (6−1) + (6−3) + 0 = 8.
    // Completion (first exit 6.25): (7−6.25) + (6.5−6.25) + 0 = 1.0.
    let mut t = Trace::new(defs(3));
    let enters = [1.0, 3.0, 6.0];
    let exits = [7.0, 6.5, 6.25];
    for loc in 0..3u32 {
        t.push(ev(0.0, loc, EventKind::Enter { region: MAIN }));
        t.push(ev(
            enters[loc as usize],
            loc,
            EventKind::Enter { region: BARRIER },
        ));
        t.push(ev(
            exits[loc as usize],
            loc,
            EventKind::CollectiveExit {
                op: CollectiveOp::Barrier,
                bytes: 0,
                root: -1,
            },
        ));
        t.push(ev(
            exits[loc as usize],
            loc,
            EventKind::Exit { region: BARRIER },
        ));
        t.push(ev(8.0, loc, EventKind::Exit { region: MAIN }));
    }
    let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
    assert!((total(&e, "Wait at Barrier") - 8.0).abs() < 1e-12);
    assert!((total(&e, "Barrier Completion") - 1.0).abs() < 1e-12);
    // Synchronization = full barrier spans: (7−1)+(6.5−3)+(6.25−6)=9.75.
    assert!((total(&e, "Synchronization") - 9.75).abs() < 1e-12);
}

#[test]
fn wait_at_nxn_is_exact() {
    // Allreduce entered at 0 and 2, exits at 3 for both:
    // Wait at N x N = (2−0) + 0 = 2.
    let mut t = Trace::new(defs(2));
    for (loc, enter) in [(0u32, 0.0), (1, 2.0)] {
        t.push(ev(0.0, loc, EventKind::Enter { region: MAIN }));
        t.push(ev(enter, loc, EventKind::Enter { region: ALLREDUCE }));
        t.push(ev(
            3.0,
            loc,
            EventKind::CollectiveExit {
                op: CollectiveOp::AllReduce,
                bytes: 8,
                root: -1,
            },
        ));
        t.push(ev(3.0, loc, EventKind::Exit { region: ALLREDUCE }));
        t.push(ev(4.0, loc, EventKind::Exit { region: MAIN }));
    }
    let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
    assert!((total(&e, "Wait at N x N") - 2.0).abs() < 1e-12);
    assert!((total(&e, "Collective") - (3.0 + 1.0)).abs() < 1e-12);
}

#[test]
fn late_broadcast_and_early_reduce_are_exact() {
    // Broadcast root (rank 0) enters at 5; rank 1 enters at 1, rank 2
    // at 3. Late Broadcast = (5−1) + (5−3) = 6 (root contributes none).
    // Then a reduce to rank 0: root enters at 6, senders at 8 and 9 →
    // Early Reduce = 9−6 = 3.
    let mut t = Trace::new(defs(3));
    let bcast_enters = [5.0, 1.0, 3.0];
    let reduce_enters = [6.0, 8.0, 9.0];
    for loc in 0..3u32 {
        let i = loc as usize;
        t.push(ev(0.0, loc, EventKind::Enter { region: MAIN }));
        t.push(ev(bcast_enters[i], loc, EventKind::Enter { region: BCAST }));
        t.push(ev(
            5.5,
            loc,
            EventKind::CollectiveExit {
                op: CollectiveOp::Broadcast,
                bytes: 64,
                root: 0,
            },
        ));
        t.push(ev(5.5, loc, EventKind::Exit { region: BCAST }));
        t.push(ev(
            reduce_enters[i],
            loc,
            EventKind::Enter { region: REDUCE },
        ));
        t.push(ev(
            9.5,
            loc,
            EventKind::CollectiveExit {
                op: CollectiveOp::Reduce,
                bytes: 64,
                root: 0,
            },
        ));
        t.push(ev(9.5, loc, EventKind::Exit { region: REDUCE }));
        t.push(ev(10.0, loc, EventKind::Exit { region: MAIN }));
    }
    let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
    assert!((total(&e, "Late Broadcast") - 6.0).abs() < 1e-12);
    assert!((total(&e, "Early Reduce") - 3.0).abs() < 1e-12);
}

#[test]
fn exclusive_time_subtracts_nested_regions() {
    // main spans 10s, with a 2s send region inside: main's exclusive
    // time is 8, the send's is 2; together they carry Time = 10.
    let mut t = Trace::new(defs(2));
    t.push(ev(0.0, 0, EventKind::Enter { region: MAIN }));
    t.push(ev(4.0, 0, EventKind::Enter { region: SEND }));
    t.push(ev(
        4.0,
        0,
        EventKind::MpiSend {
            dest: 1,
            tag: 0,
            bytes: 8,
        },
    ));
    t.push(ev(6.0, 0, EventKind::Exit { region: SEND }));
    t.push(ev(10.0, 0, EventKind::Exit { region: MAIN }));
    t.push(ev(0.0, 1, EventKind::Enter { region: MAIN }));
    t.push(ev(
        7.0,
        1,
        EventKind::MpiRecv {
            source: 0,
            tag: 0,
            bytes: 8,
        },
    ));
    t.push(ev(10.0, 1, EventKind::Exit { region: MAIN }));

    let e = analyze(&t, &AnalyzeOptions::default()).unwrap();
    let md = e.metadata();
    let time = md.find_metric("Time").unwrap();
    let main_node = md
        .call_node_ids()
        .find(|&c| md.region(md.call_node_callee(c)).name == "main")
        .unwrap();
    let send_node = md
        .call_node_ids()
        .find(|&c| md.region(md.call_node_callee(c)).name == "MPI_Send")
        .unwrap();
    // Rank 0: main exclusive 8, send 2. Rank 1: main 10.
    assert!((e.severity().row_sum(time, main_node) - 18.0).abs() < 1e-12);
    assert!((e.severity().row_sum(time, send_node) - 2.0).abs() < 1e-12);
    assert!((total(&e, "Time") - 20.0).abs() < 1e-12);
}
