//! The baseline the paper compares against: the *performance
//! difference* operator of Karavanic & Miller's framework for
//! multi-execution performance tuning.
//!
//! Their operator "maps from its input space containing entire
//! experiments into a smaller representation (i.e., a list of
//! resources)": it returns the list of *foci* — combinations of
//! resources from the different hierarchies — whose discrepancy between
//! two experiments is significant. The paper's critique, reproduced
//! here so it can be demonstrated and benchmarked:
//!
//! * the output is **not** an experiment — "a repeated application is
//!   not possible, further processing would require a logic or a
//!   display different from one suitable for the original input data";
//! * there is no mean operator, and the structural merge is defined
//!   only for metadata, not for the performance numbers.
//!
//! [`performance_difference`] implements the operator faithfully
//! (metadata integration reused from CUBE's structural merge, which
//! instantiates the framework's structural-merge operator); the
//! contrast with [`ops::diff`](crate::ops::diff) — whose result feeds
//! straight back into every CUBE tool — is exercised in the
//! `baseline_comparison` tests and the `operators` bench.

use cube_model::Experiment;

use crate::extend::extend_severity;
use crate::integrate::integrate;
use crate::options::MergeOptions;

/// One focus with a significant discrepancy: a resource combination
/// drawn from the three hierarchies, with the observed severity delta.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffFocus {
    /// Metric name (qualified by its path from the tree root).
    pub metric: String,
    /// Call path, as region names from the root.
    pub call_path: Vec<String>,
    /// Process rank and thread number.
    pub location: (i32, u32),
    /// Severity in the first experiment (zero-extended).
    pub first: f64,
    /// Severity in the second experiment (zero-extended).
    pub second: f64,
}

impl DiffFocus {
    /// The discrepancy `first − second`.
    pub fn delta(&self) -> f64 {
        self.first - self.second
    }
}

/// The framework's performance difference operator: all foci whose
/// absolute discrepancy exceeds `threshold`, ordered by decreasing
/// absolute discrepancy.
///
/// Note the return type — a list, not an experiment. This is exactly
/// what the CUBE algebra improves on; the function exists as the
/// reproducible baseline.
pub fn performance_difference(
    first: &Experiment,
    second: &Experiment,
    threshold: f64,
) -> Vec<DiffFocus> {
    let integrated = integrate(&[first, second], MergeOptions::default());
    let md = &integrated.metadata;
    let shape = md.shape();
    let a = extend_severity(first, &integrated.maps[0], shape);
    let b = extend_severity(second, &integrated.maps[1], shape);

    let mut out = Vec::new();
    for m in md.metric_ids() {
        for c in md.call_node_ids() {
            let ra = a.row(m, c);
            let rb = b.row(m, c);
            for (ti, (&va, &vb)) in ra.iter().zip(rb).enumerate() {
                if (va - vb).abs() > threshold {
                    let t = cube_model::ThreadId::from_index(ti);
                    let thread = md.thread(t);
                    let process = md.process(thread.process);
                    out.push(DiffFocus {
                        metric: metric_path(md, m),
                        call_path: md.call_path(c).into_iter().map(str::to_string).collect(),
                        location: (process.rank, thread.number),
                        first: va,
                        second: vb,
                    });
                }
            }
        }
    }
    out.sort_by(|x, y| {
        y.delta()
            .abs()
            .partial_cmp(&x.delta().abs())
            .expect("severities are never NaN")
    });
    out
}

fn metric_path(md: &cube_model::Metadata, m: cube_model::MetricId) -> String {
    let mut parts = vec![md.metric(m).name.clone()];
    let mut cur = m;
    while let Some(p) = md.metric(cur).parent {
        parts.push(md.metric(p).name.clone());
        cur = p;
    }
    parts.reverse();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn sample(solve_value: f64) -> Experiment {
        let mut b = ExperimentBuilder::new("base");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "", Some(time));
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 2, 8);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 3, solve_r);
        let root = b.def_call_node(cs0, None);
        let solve = b.def_call_node(cs1, Some(root));
        let ts = single_threaded_system(&mut b, 2);
        for &t in &ts {
            b.set_severity(time, root, t, 1.0);
            b.set_severity(time, solve, t, solve_value);
            b.set_severity(mpi, solve, t, 0.25);
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_significant_foci_only() {
        let a = sample(5.0);
        let b = sample(2.0);
        let foci = performance_difference(&a, &b, 0.5);
        // Only the solve/time tuples differ by 3.0; everything else is
        // identical.
        assert_eq!(foci.len(), 2); // one per rank
        for f in &foci {
            assert_eq!(f.metric, "time");
            assert_eq!(f.call_path, vec!["main", "solve"]);
            assert!((f.delta() - 3.0).abs() < 1e-12);
        }
        // Threshold above the discrepancy: nothing is significant.
        assert!(performance_difference(&a, &b, 4.0).is_empty());
    }

    #[test]
    fn foci_are_sorted_by_discrepancy() {
        let a = sample(5.0);
        let mut b = sample(2.0);
        // Make rank 1's root differ hugely too.
        let time = b.metadata().find_metric("time").unwrap();
        let root = b.metadata().call_roots()[0];
        let t1 = cube_model::ThreadId::new(1);
        b.severity_mut().set(time, root, t1, -20.0);
        let foci = performance_difference(&a, &b, 0.5);
        assert!(foci
            .windows(2)
            .all(|w| w[0].delta().abs() >= w[1].delta().abs()));
        assert_eq!(foci[0].location, (1, 0));
        assert_eq!(foci[0].call_path, vec!["main"]);
    }

    #[test]
    fn metric_paths_are_qualified() {
        let a = sample(1.0);
        let mut b = sample(1.0);
        let mpi = b.metadata().find_metric("mpi").unwrap();
        let solve = cube_model::CallNodeId::new(1);
        b.severity_mut()
            .set(mpi, solve, cube_model::ThreadId::new(0), 9.0);
        let foci = performance_difference(&a, &b, 0.5);
        assert_eq!(foci.len(), 1);
        assert_eq!(foci[0].metric, "time/mpi");
    }

    /// The paper's critique, demonstrated: the baseline output cannot be
    /// fed back; CUBE's can — and browsing the CUBE difference with a
    /// threshold-style filter recovers the same foci.
    #[test]
    fn cube_difference_subsumes_the_baseline() {
        let a = sample(5.0);
        let b = sample(2.0);
        let threshold = 0.5;

        let baseline = performance_difference(&a, &b, threshold);

        // CUBE: one closed operator application ...
        let d = ops::diff(&a, &b);
        d.validate().unwrap(); // ... whose result is a full experiment,
        let twice = ops::diff(&d, &d); // ... so repeated application works,
        twice.validate().unwrap();

        // ... and the baseline's list is a trivial *view* of it.
        let md = d.metadata();
        let mut recovered = Vec::new();
        for (m, c, t, v) in d.severity().iter_nonzero() {
            if v.abs() > threshold {
                let thread = md.thread(t);
                recovered.push((
                    md.metric(m).name.clone(),
                    md.call_path(c).last().map(|s| s.to_string()),
                    md.process(thread.process).rank,
                    v,
                ));
            }
        }
        assert_eq!(recovered.len(), baseline.len());
        for f in &baseline {
            assert!(recovered.iter().any(|(m, leaf, rank, v)| {
                *m == f.metric.rsplit('/').next().unwrap()
                    && leaf.as_deref() == f.call_path.last().map(|s| s.as_str())
                    && *rank == f.location.0
                    && (*v - f.delta()).abs() < 1e-12
            }));
        }
    }
}
