//! Identifier mappings from operand metadata into integrated metadata.

use cube_model::{CallNodeId, MetricId, ThreadId};

/// For one operand experiment, where each of its severity-relevant
/// entities landed in the integrated metadata.
///
/// Every entry is total: integration never drops an operand entity, it
/// only shares or appends, so each old identifier has exactly one new
/// identifier.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OperandMap {
    /// Old metric id (by index) → new metric id.
    pub metrics: Vec<MetricId>,
    /// Old call-node id (by index) → new call-node id.
    pub call_nodes: Vec<CallNodeId>,
    /// Old thread id (by index) → new thread id.
    pub threads: Vec<ThreadId>,
}

impl OperandMap {
    /// An identity mapping for an operand whose metadata *is* the
    /// integrated metadata (the fast path for equal metadata).
    pub fn identity(num_metrics: usize, num_call_nodes: usize, num_threads: usize) -> Self {
        Self {
            metrics: (0..num_metrics as u32).map(MetricId::new).collect(),
            call_nodes: (0..num_call_nodes as u32).map(CallNodeId::new).collect(),
            threads: (0..num_threads as u32).map(ThreadId::new).collect(),
        }
    }

    /// Whether this mapping is the identity on all three dimensions.
    pub fn is_identity(&self) -> bool {
        self.metrics.iter().enumerate().all(|(i, m)| m.index() == i)
            && self
                .call_nodes
                .iter()
                .enumerate()
                .all(|(i, c)| c.index() == i)
            && self.threads.iter().enumerate().all(|(i, t)| t.index() == i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let m = OperandMap::identity(3, 4, 5);
        assert!(m.is_identity());
        assert_eq!(m.metrics.len(), 3);
        assert_eq!(m.call_nodes.len(), 4);
        assert_eq!(m.threads.len(), 5);
    }

    #[test]
    fn permuted_is_not_identity() {
        let mut m = OperandMap::identity(2, 1, 1);
        m.metrics.swap(0, 1);
        assert!(!m.is_identity());
    }

    #[test]
    fn empty_is_identity() {
        assert!(OperandMap::default().is_identity());
    }
}
