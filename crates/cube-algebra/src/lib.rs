//! # cube-algebra — the CUBE performance algebra
//!
//! Implements the operator layer of *"An Algebra for Cross-Experiment
//! Performance Analysis"* (Song et al., ICPP 2004): arithmetic operations
//! over whole [`Experiment`](cube_model::Experiment)s.
//!
//! ## Closure
//!
//! Every operator maps experiments to an experiment. The result — a
//! *derived* experiment — has complete metadata and a severity function
//! defined over that metadata, so it can be stored in the same file
//! format, rendered by the same display, and used as an operand of
//! further operators. Composite operations (the difference of means, the
//! merge of means, ...) are therefore just function composition.
//!
//! ## The two phases of every operator
//!
//! 1. **Metadata integration** ([`integrate()`]): the metric forests, call
//!    forests, and system hierarchies of all operands are merged by a
//!    top-down structural match. Nodes that compare equal (name + unit
//!    for metrics; call-site equality for call paths; application-level
//!    rank/thread number for the system) become shared nodes; nodes that
//!    differ are *both* carried into the result, together with their
//!    entire subtrees.
//! 2. **Element-wise arithmetic** ([`ops`]): each operand's severity
//!    array is *zero-extended* onto the integrated metadata (tuples the
//!    operand never defined count as zero) and the element-wise
//!    operation — subtraction, mean, first-wins selection, ... — is
//!    applied.
//!
//! ## Operators
//!
//! | operator | arity | purpose |
//! |---|---|---|
//! | [`ops::diff`] | 2 | before/after comparison of code or parameter changes |
//! | [`ops::merge`] | 2 | integrate data from different sources/event sets |
//! | [`ops::mean`] | n | smooth noise, summarize parameter ranges |
//! | [`ops::sum`], [`ops::min`], [`ops::max`] | n | natural extensions (the paper's §5.1 takes the *minimum* of a series) |
//! | [`ops::scale`] | 1 | scalar multiple, for normalization pipelines |
//! | [`cut::prune`], [`cut::reroot`] | 1 | call-tree surgery (the later `cube_cut` utility) |
//!
//! ```
//! use cube_algebra::ops;
//! # use cube_model::{ExperimentBuilder, Unit, RegionKind};
//! # use cube_model::builder::single_threaded_system;
//! # fn mk(v: f64) -> cube_model::Experiment {
//! #     let mut b = ExperimentBuilder::new("e");
//! #     let t = b.def_metric("time", Unit::Seconds, "", None);
//! #     let m = b.def_module("a", "a");
//! #     let r = b.def_region("main", m, RegionKind::Function, 1, 1);
//! #     let cs = b.def_call_site("a", 1, r);
//! #     let root = b.def_call_node(cs, None);
//! #     let ts = single_threaded_system(&mut b, 1);
//! #     b.set_severity(t, root, ts[0], v);
//! #     b.build().unwrap()
//! # }
//! let before = mk(10.0);
//! let after = mk(8.0);
//! let saved = ops::diff(&before, &after);       // a full experiment
//! let sanity = ops::diff(&saved, &saved);       // operators compose
//! assert_eq!(saved.severity().values()[0], 2.0);
//! assert_eq!(sanity.severity().values()[0], 0.0);
//! ```

pub mod baseline;
pub mod batch;
pub mod check;
pub mod cut;
pub mod error;
pub mod extend;
pub mod integrate;
mod invariant;
pub mod kernel;
pub mod mapping;
pub mod ops;
pub mod options;
pub mod parse;
pub mod stats;

pub use batch::{
    BatchOperand, BatchPlan, Expr, OperandError, PartialEvaluation, PartialOperand, PlanTables,
    Reduction,
};
pub use check::{
    check, check_expr, rewrite, CheckDiagnostic, CheckLevel, CheckReport, CostEstimate, FusedCost,
    OperandFacts, RewriteNote,
};
pub use error::AlgebraError;
pub use integrate::{integrate, integrate_metadata, Integrated};
pub use kernel::{fusion_enabled, set_fusion, KernelProgram};
pub use mapping::OperandMap;
pub use options::{CallSiteEq, FailurePolicy, MergeOptions, SystemMergeMode};
pub use parse::{parse_expr, render_expr, ExprParseError, ParsedExpr, Span, SpanNode};
