//! Textual algebra expressions: `diff(mean(A,B),mean(C,D))`.
//!
//! The batch engine's [`Expr`] is an index tree over a plan's operand
//! list; services and scripts want to *name* operands instead. This
//! module parses the obvious concrete syntax into an [`Expr`] plus the
//! ordered list of operand names it references, leaving it to the
//! caller to resolve names to actual experiments (a file set, a
//! content-addressed repository, ...).
//!
//! # Grammar
//!
//! ```text
//! expr    := "diff"  "(" expr "," expr ")"
//!          | "scale" "(" expr "," number ")"
//!          | REDUCER "(" name ("," name)* ")"
//!          | name
//! REDUCER := "mean" | "sum" | "min" | "max" | "variance" | "stddev"
//! name    := [A-Za-z0-9_.-]+        (function words are reserved)
//! number  := anything f64::from_str accepts, finite
//! ```
//!
//! Whitespace is allowed around every token. Reducers take operand
//! *names* (not sub-expressions), mirroring [`Expr::Reduce`]'s
//! index-list form; `diff` and `scale` nest arbitrarily up to a fixed
//! depth cap.
//!
//! # Errors
//!
//! Every rejection is an [`ExprParseError`] with a **stable code**
//! (`P001`–`P009`, table below) and the byte offset of the offending
//! token — the contract fuzzed by `tests/fuzz_parse.rs` and pinned by
//! the golden corpus in `tests/fixtures/expr/`. The parser never
//! panics on any input.
//!
//! | code | meaning |
//! |---|---|
//! | `P001` | unexpected end of input |
//! | `P002` | unexpected character |
//! | `P003` | expected `(` after a function name |
//! | `P004` | expected `,` or `)` in an argument list |
//! | `P005` | reducer argument must be an operand name |
//! | `P006` | trailing input after the expression |
//! | `P007` | invalid scale factor |
//! | `P008` | expression nested too deeply |
//! | `P009` | empty operand name or argument list |

use std::fmt;

use crate::batch::{Expr, Reduction};

/// Nesting cap for `diff`/`scale`: deep enough for any real composite,
/// shallow enough that parsing and evaluation never recurse unboundedly
/// (`P008`).
pub const MAX_DEPTH: usize = 64;

/// A parse rejection: stable code, byte offset, human message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExprParseError {
    /// Stable error code `P001`–`P009` (see the module table).
    pub code: &'static str,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ExprParseError {
    fn new(code: &'static str, offset: usize, message: impl Into<String>) -> Self {
        Self {
            code,
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at byte {}", self.code, self.message, self.offset)
    }
}

impl std::error::Error for ExprParseError {}

/// Byte range `[start, end)` of one token or sub-expression in the
/// source text. Offsets index the same bytes as [`ExprParseError`]'s,
/// so parse errors and semantic diagnostics point into one coordinate
/// system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes (synthetic nodes).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Source spans mirroring the shape of a parsed [`Expr`] tree, built
/// alongside it so semantic analysis ([`crate::check()`]) can point
/// diagnostics at the offending token rather than at the whole
/// expression. Each variant carries the span of the full construct
/// first, then the spans of its parts.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanNode {
    /// A bare operand reference.
    Operand(Span),
    /// A reducer call: the whole call, then one span per argument name
    /// (aligned with the index list of [`Expr::Reduce`]).
    Reduce(Span, Vec<Span>),
    /// A `diff` call: the whole call, then both sides.
    Diff(Span, Box<SpanNode>, Box<SpanNode>),
    /// A `scale` call: the whole call, the inner expression, the factor.
    Scale(Span, Box<SpanNode>, Span),
}

impl SpanNode {
    /// The span of the construct as a whole.
    pub fn span(&self) -> Span {
        match self {
            Self::Operand(s) | Self::Reduce(s, _) | Self::Diff(s, _, _) | Self::Scale(s, _, _) => {
                *s
            }
        }
    }
}

/// A parsed expression: the index tree plus the operand names it
/// references, in first-appearance order. A name used twice maps to
/// one index — `diff(A,A)` references one operand.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedExpr {
    /// The expression over operand indices into [`ParsedExpr::operands`].
    pub expr: Expr,
    /// Distinct operand names, in order of first appearance.
    pub operands: Vec<String>,
    /// Source spans, same tree shape as [`ParsedExpr::expr`].
    pub spans: SpanNode,
}

impl ParsedExpr {
    /// Renders the expression back to canonical text (no whitespace,
    /// names substituted) — equal inputs parse to equal renderings, so
    /// this is a usable cache key.
    pub fn canonical(&self) -> String {
        render_expr(&self.expr, &self.operands)
    }
}

/// Renders an expression tree to canonical text (no whitespace, operand
/// indices substituted with their names). This is the inverse of
/// [`parse_expr`] up to whitespace for every tree the parser produces;
/// the rewrite engine's synthetic [`Expr::Zero`] renders as `zero()`,
/// which is *not* part of the input grammar.
pub fn render_expr(expr: &Expr, names: &[String]) -> String {
    fn go(e: &Expr, names: &[String], out: &mut String) {
        match e {
            Expr::Operand(i) => out.push_str(&names[*i]),
            Expr::Reduce(r, idxs) => {
                out.push_str(r.name());
                out.push('(');
                for (k, &i) in idxs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&names[i]);
                }
                out.push(')');
            }
            Expr::Diff(a, b) => {
                out.push_str("diff(");
                go(a, names, out);
                out.push(',');
                go(b, names, out);
                out.push(')');
            }
            Expr::Scale(inner, f) => {
                out.push_str("scale(");
                go(inner, names, out);
                let _ = fmt::Write::write_fmt(out, format_args!(",{f}"));
                out.push(')');
            }
            Expr::Zero => out.push_str("zero()"),
        }
    }
    let mut s = String::new();
    go(expr, names, &mut s);
    s
}

fn reduction_named(name: &str) -> Option<Reduction> {
    Some(match name {
        "mean" => Reduction::Mean,
        "sum" => Reduction::Sum,
        "min" => Reduction::Min,
        "max" => Reduction::Max,
        "variance" => Reduction::Variance,
        "stddev" => Reduction::Stddev,
        _ => return None,
    })
}

fn is_function_word(word: &str) -> bool {
    word == "diff" || word == "scale" || reduction_named(word).is_some()
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-'
}

struct Parser<'s> {
    input: &'s [u8],
    pos: usize,
    operands: Vec<String>,
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eof(&self, what: &str) -> ExprParseError {
        ExprParseError::new("P001", self.pos, format!("unexpected end of input, {what}"))
    }

    /// Consumes one expected punctuation byte.
    fn expect(&mut self, byte: u8, code: &'static str, what: &str) -> Result<(), ExprParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(ExprParseError::new(
                code,
                self.pos,
                format!("expected {what}, found '{}'", printable(b)),
            )),
            None => Err(self.eof(&format!("expected {what}"))),
        }
    }

    /// Reads one `name` token (maximal run of name bytes).
    fn name(&mut self) -> Result<(String, usize), ExprParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.pos += 1;
        }
        if self.pos == start {
            return match self.peek() {
                Some(b) => Err(ExprParseError::new(
                    "P002",
                    start,
                    format!("expected an operand name, found '{}'", printable(b)),
                )),
                None => Err(self.eof("expected an operand name")),
            };
        }
        // The input is only sliced on name-byte boundaries, all ASCII,
        // so the token is valid UTF-8.
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("name tokens are ASCII")
            .to_string();
        Ok((text, start))
    }

    /// Index of `name` in the operand list, interning on first use.
    fn operand_index(&mut self, name: String) -> usize {
        match self.operands.iter().position(|n| n == &name) {
            Some(i) => i,
            None => {
                self.operands.push(name);
                self.operands.len() - 1
            }
        }
    }

    fn expr(&mut self, depth: usize) -> Result<(Expr, SpanNode), ExprParseError> {
        if depth > MAX_DEPTH {
            return Err(ExprParseError::new(
                "P008",
                self.pos,
                format!("expression nested deeper than {MAX_DEPTH} levels"),
            ));
        }
        let (word, word_at) = self.name()?;
        let word_end = self.pos;
        self.skip_ws();
        // Function words are reserved: a bare `diff` or `mean` is a
        // missing call, not an operand reference. Content-addressed
        // operand ids can never collide with them. Any *other* word
        // followed by '(' is a call to a function that does not exist.
        if !is_function_word(&word) {
            if self.peek() == Some(b'(') {
                return Err(ExprParseError::new(
                    "P005",
                    word_at,
                    format!(
                        "unknown function '{word}' (expected diff, scale, \
                         mean, sum, min, max, variance, or stddev)"
                    ),
                ));
            }
            let i = self.operand_index(word);
            let span = Span {
                start: word_at,
                end: word_end,
            };
            return Ok((Expr::Operand(i), SpanNode::Operand(span)));
        }
        match word.as_str() {
            "diff" => {
                self.expect(b'(', "P003", "'('")?;
                let (a, sa) = self.expr(depth + 1)?;
                self.expect(b',', "P004", "','")?;
                let (b, sb) = self.expr(depth + 1)?;
                self.expect(b')', "P004", "')'")?;
                let span = Span {
                    start: word_at,
                    end: self.pos,
                };
                Ok((
                    Expr::diff(a, b),
                    SpanNode::Diff(span, Box::new(sa), Box::new(sb)),
                ))
            }
            "scale" => {
                self.expect(b'(', "P003", "'('")?;
                let (inner, si) = self.expr(depth + 1)?;
                self.expect(b',', "P004", "','")?;
                let (factor, sf) = self.number()?;
                self.expect(b')', "P004", "')'")?;
                let span = Span {
                    start: word_at,
                    end: self.pos,
                };
                Ok((
                    Expr::scale(inner, factor),
                    SpanNode::Scale(span, Box::new(si), sf),
                ))
            }
            _ => {
                let r =
                    reduction_named(&word).expect("function words are diff, scale, or reducers");
                self.expect(b'(', "P003", "'('")?;
                let (idxs, arg_spans) = self.name_list()?;
                let span = Span {
                    start: word_at,
                    end: self.pos,
                };
                Ok((Expr::Reduce(r, idxs), SpanNode::Reduce(span, arg_spans)))
            }
        }
    }

    /// `name ("," name)* ")"` — the argument list of a reducer. Empty
    /// lists are rejected with `P009`.
    fn name_list(&mut self) -> Result<(Vec<usize>, Vec<Span>), ExprParseError> {
        self.skip_ws();
        if self.peek() == Some(b')') {
            return Err(ExprParseError::new(
                "P009",
                self.pos,
                "reducer needs at least one operand name",
            ));
        }
        let mut idxs = Vec::new();
        let mut spans = Vec::new();
        loop {
            let (name, at) = self.name()?;
            let name_end = self.pos;
            self.skip_ws();
            if self.peek() == Some(b'(') {
                return Err(ExprParseError::new(
                    "P005",
                    at,
                    format!(
                        "reducer arguments are operand names, but '{name}' \
                         is called like a function (reducers do not nest)"
                    ),
                ));
            }
            idxs.push(self.operand_index(name));
            spans.push(Span {
                start: at,
                end: name_end,
            });
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    return Ok((idxs, spans));
                }
                Some(b) => {
                    return Err(ExprParseError::new(
                        "P004",
                        self.pos,
                        format!("expected ',' or ')', found '{}'", printable(b)),
                    ))
                }
                None => return Err(self.eof("expected ',' or ')'")),
            }
        }
    }

    /// The scale factor: a maximal run of number-ish bytes fed to the
    /// float parser; NaN/infinity are rejected (the algebra's NaN
    /// policy treats stored NaNs as data, but a *requested* non-finite
    /// factor is always a mistake).
    fn number(&mut self) -> Result<(f64, Span), ExprParseError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("number bytes");
        let span = Span {
            start,
            end: self.pos,
        };
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok((f, span)),
            _ => Err(ExprParseError::new(
                "P007",
                start,
                if text.is_empty() {
                    "expected a scale factor".to_string()
                } else {
                    format!("'{text}' is not a finite scale factor")
                },
            )),
        }
    }
}

fn printable(b: u8) -> String {
    if b.is_ascii_graphic() || b == b' ' {
        (b as char).to_string()
    } else {
        format!("\\x{b:02x}")
    }
}

/// Parses a textual algebra expression.
///
/// ```
/// use cube_algebra::parse::parse_expr;
/// let p = parse_expr("diff(mean(A,B), mean(C,D))").unwrap();
/// assert_eq!(p.operands, ["A", "B", "C", "D"]);
/// assert_eq!(p.canonical(), "diff(mean(A,B),mean(C,D))");
///
/// let e = parse_expr("median(A)").unwrap_err();
/// assert_eq!(e.code, "P005");
/// ```
pub fn parse_expr(input: &str) -> Result<ParsedExpr, ExprParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        operands: Vec::new(),
    };
    let (expr, spans) = p.expr(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(ExprParseError::new(
            "P006",
            p.pos,
            "trailing input after the expression",
        ));
    }
    Ok(ParsedExpr {
        expr,
        operands: p.operands,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(inputs: &[&str]) -> Vec<&'static str> {
        inputs
            .iter()
            .map(|s| parse_expr(s).unwrap_err().code)
            .collect()
    }

    #[test]
    fn operands_intern_in_first_appearance_order() {
        let p = parse_expr("diff(mean(b, a), mean(a, c))").unwrap();
        assert_eq!(p.operands, ["b", "a", "c"]);
        assert_eq!(
            p.expr,
            Expr::diff(
                Expr::Reduce(Reduction::Mean, vec![0, 1]),
                Expr::Reduce(Reduction::Mean, vec![1, 2]),
            )
        );
    }

    #[test]
    fn every_reducer_and_nesting_parses() {
        for r in ["mean", "sum", "min", "max", "variance", "stddev"] {
            let p = parse_expr(&format!("{r}(x,y)")).unwrap();
            assert_eq!(p.canonical(), format!("{r}(x,y)"));
        }
        let p = parse_expr(" scale( diff( a , sum(b,c) ) , 0.5 ) ").unwrap();
        assert_eq!(p.canonical(), "scale(diff(a,sum(b,c)),0.5)");
        // A bare name is the identity expression over one operand.
        let p = parse_expr("run-3.cubec").unwrap();
        assert_eq!(p.expr, Expr::Operand(0));
        assert_eq!(p.operands, ["run-3.cubec"]);
    }

    #[test]
    fn spans_point_into_the_source() {
        let src = " diff( mean(a, b) , scale( c , 2.5 ) ) ";
        let p = parse_expr(src).unwrap();
        let SpanNode::Diff(all, left, right) = &p.spans else {
            panic!("expected a diff span");
        };
        assert_eq!(
            &src[all.start..all.end],
            "diff( mean(a, b) , scale( c , 2.5 ) )"
        );
        let SpanNode::Reduce(call, args) = left.as_ref() else {
            panic!("expected a reduce span");
        };
        assert_eq!(&src[call.start..call.end], "mean(a, b)");
        assert_eq!(&src[args[0].start..args[0].end], "a");
        assert_eq!(&src[args[1].start..args[1].end], "b");
        let SpanNode::Scale(call, inner, factor) = right.as_ref() else {
            panic!("expected a scale span");
        };
        assert_eq!(&src[call.start..call.end], "scale( c , 2.5 )");
        assert_eq!(inner.span().len(), 1);
        assert_eq!(&src[factor.start..factor.end], "2.5");
        assert!(!factor.is_empty());
    }

    #[test]
    fn rejections_carry_stable_codes_and_offsets() {
        assert_eq!(
            codes(&[
                "diff(a,",        // P001: input ends mid-list
                "mean(a)!",       // P006: trailing junk
                "diff(a b)",      // P004: missing comma
                "median(a)",      // P005: unknown function
                "mean()",         // P009: empty reducer
                "scale(a, nope)", // P007: bad factor
                "(a)",            // P002: no leading name
                "mean(sum(a),b)", // P005: reducers take names only
                "scale(a, inf)",  // P007: non-finite factor
                "diff",           // P001: function word, then end of input
                "diff a,b",       // P003: function word without its '('
            ]),
            [
                "P001", "P006", "P004", "P005", "P009", "P007", "P002", "P005", "P007", "P001",
                "P003",
            ]
        );
        let deep = format!("{}a{}", "scale(".repeat(70), ",2)".repeat(70));
        assert_eq!(parse_expr(&deep).unwrap_err().code, "P008");
        let e = parse_expr("diff(a b)").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.to_string().starts_with("P004:"));
    }

    #[test]
    fn parses_compose_with_plan_evaluation() {
        use cube_model::builder::single_threaded_system;
        use cube_model::{ExperimentBuilder, RegionKind, Unit};
        let mk = |name: &str, v: f64| {
            let mut b = ExperimentBuilder::new(name);
            let t = b.def_metric("time", Unit::Seconds, "", None);
            let m = b.def_module("a", "a");
            let r = b.def_region("main", m, RegionKind::Function, 1, 1);
            let cs = b.def_call_site("a", 1, r);
            let root = b.def_call_node(cs, None);
            let ts = single_threaded_system(&mut b, 1);
            b.set_severity(t, root, ts[0], v);
            b.build().unwrap()
        };
        let (a, b, c) = (mk("a", 9.0), mk("b", 11.0), mk("c", 4.0));
        let p = parse_expr("diff(mean(a,b), c)").unwrap();
        assert_eq!(p.operands, ["a", "b", "c"]);
        let plan = crate::batch::BatchPlan::new(&[&a, &b, &c]);
        let result = plan.eval(&p.expr).unwrap();
        assert_eq!(result.severity().values(), &[6.0]);
    }
}
