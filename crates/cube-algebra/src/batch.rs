//! Batch evaluation engine: integrate once, reduce k operands in one pass.
//!
//! The paper's closure property makes derived experiments operands of
//! further operators, so real cross-experiment studies apply reductions
//! over *series* — the §5.1 speedup table takes the minimum of two
//! ten-run series, and parameter sweeps average dozens of runs per
//! figure. Folding such a series through repeated **pairwise** merges
//! re-runs metadata integration and re-allocates zero-extended severity
//! arrays once per operand: O(k) structural merges and O(k) full-size
//! allocations for one answer.
//!
//! A [`BatchPlan`] does the work once:
//!
//! 1. **Integrate once.** All k operands' metric forests, call forests,
//!    and system hierarchies are folded into one integrated
//!    [`Metadata`] by a single call to [`crate::integrate()`], and the
//!    per-operand [`OperandMap`]s (source id → integrated id) are
//!    cached on the plan.
//! 2. **Cache gather tables.** Each operand's mapping is inverted into
//!    per-dimension gather tables (integrated id → source id, or
//!    *absent*), so an operand's value at any integrated tuple is three
//!    table lookups — no zero-extended copy of the operand is ever
//!    materialized. Operands whose mapping is the identity are read
//!    directly; the rare operand with structurally equal siblings
//!    (a non-injective mapping) falls back to one cached zero-extended
//!    copy.
//! 3. **Reduce in one pass.** [`BatchPlan::reduce`] evaluates an n-ary
//!    [`Reduction`] — `sum`, `mean`, `min`, `max`, `variance`,
//!    `stddev` — by streaming over the integrated severity rows once,
//!    accumulating across all operands per row. Row blocks are
//!    distributed over Rayon above the same element-count threshold the
//!    element-wise kernels in [`crate::ops`] use.
//!
//! Composite expressions — the paper's "difference of averaged data" —
//! are evaluated by [`BatchPlan::eval`] over an [`Expr`] tree on the
//! *same* integrated metadata, so `diff(mean(A…), mean(B…))` costs one
//! integration total instead of three.
//!
//! The pre-batch evaluation path is kept verbatim in [`pairwise`] as a
//! differential oracle: `BatchPlan` results are tested value-identical
//! against it.
//!
//! # Worked example: a k-experiment study
//!
//! Three noisy runs, averaged, then compared against a two-run
//! baseline — one integration for the whole expression:
//!
//! ```
//! use cube_algebra::batch::{BatchPlan, Expr, Reduction};
//! # use cube_model::builder::single_threaded_system;
//! # use cube_model::{ExperimentBuilder, RegionKind, Unit};
//! # fn run(name: &str, v: f64) -> cube_model::Experiment {
//! #     let mut b = ExperimentBuilder::new(name);
//! #     let t = b.def_metric("time", Unit::Seconds, "", None);
//! #     let m = b.def_module("a", "a");
//! #     let r = b.def_region("main", m, RegionKind::Function, 1, 1);
//! #     let cs = b.def_call_site("a", 1, r);
//! #     let root = b.def_call_node(cs, None);
//! #     let ts = single_threaded_system(&mut b, 1);
//! #     b.set_severity(t, root, ts[0], v);
//! #     b.build().unwrap()
//! # }
//! let (a1, a2, a3) = (run("a1", 9.0), run("a2", 10.0), run("a3", 11.0));
//! let (b1, b2) = (run("b1", 7.0), run("b2", 9.0));
//!
//! // One plan over all five operands: metadata integration runs once.
//! let plan = BatchPlan::new(&[&a1, &a2, &a3, &b1, &b2]);
//!
//! // Plain n-ary reduction over a subset of the series…
//! let avg = plan
//!     .eval(&Expr::reduce(Reduction::Mean, 0..3))
//!     .unwrap();
//! assert_eq!(avg.severity().values(), &[10.0]);
//!
//! // …and the paper's composite, still on the one integrated schema.
//! let saved = plan
//!     .eval(&Expr::diff(
//!         Expr::reduce(Reduction::Mean, 0..3),
//!         Expr::reduce(Reduction::Mean, 3..5),
//!     ))
//!     .unwrap();
//! assert_eq!(saved.severity().values(), &[2.0]);
//! assert_eq!(
//!     saved.provenance().label(),
//!     "difference(mean(a1, a2, a3), mean(b1, b2))"
//! );
//! // Closure: the result is a full experiment, usable as an operand.
//! saved.validate().unwrap();
//! ```

use std::sync::Arc;

use rayon::prelude::*;

use cube_model::{Experiment, Metadata, Provenance, Severity};

use crate::error::AlgebraError;
use crate::extend::extend_severity_values;
use crate::integrate::{integrate_metadata, Integrated};
use crate::kernel;
use crate::mapping::OperandMap;
use crate::ops::PAR_THRESHOLD;
use crate::options::{FailurePolicy, MergeOptions};

/// Sentinel in gather tables: this integrated id has no preimage in the
/// operand, so the operand's zero-extended value there is 0.0.
const ABSENT: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// operand sources
// ---------------------------------------------------------------------------

/// A severity source a [`BatchPlan`] can gather from.
///
/// The plan only ever needs three things from an operand: its metadata
/// (for the one-time integration), its provenance (for derived labels),
/// and a dense severity slice in the canonical layout (thread fastest,
/// metric slowest). [`Experiment`] implements this trivially; storage
/// backends — e.g. the `.cubec` columnar store's lazy handle — implement
/// it by lending their decoded pages, so a reduction over on-disk
/// operands never materializes intermediate `Experiment`s.
///
/// `Sync` is required because plans fork evaluation across the worker
/// pool; implementations must tolerate concurrent reads.
pub trait BatchOperand: Sync {
    /// The operand's metadata (integration input).
    fn metadata(&self) -> &Metadata;
    /// The operand's provenance (used for derived labels).
    fn provenance(&self) -> &Provenance;
    /// The severity shape `(metrics, call nodes, threads)`.
    fn severity_shape(&self) -> (usize, usize, usize);
    /// The dense severity values, length = product of the shape, in the
    /// canonical `(metric, call node, thread)` row-major layout.
    fn severity_values(&self) -> &[f64];
}

impl BatchOperand for Experiment {
    fn metadata(&self) -> &Metadata {
        Experiment::metadata(self)
    }

    fn provenance(&self) -> &Provenance {
        Experiment::provenance(self)
    }

    fn severity_shape(&self) -> (usize, usize, usize) {
        self.severity().shape()
    }

    fn severity_values(&self) -> &[f64] {
        self.severity().values()
    }
}

/// Borrowed severity pages of one operand, resolved once at plan build
/// so the per-row hot paths index plain slices instead of re-entering
/// the trait object on every row.
#[derive(Clone, Copy)]
struct OperandView<'a> {
    values: &'a [f64],
    shape: (usize, usize, usize),
}

impl<'a> OperandView<'a> {
    fn of(op: &'a dyn BatchOperand) -> Self {
        Self {
            values: op.severity_values(),
            shape: op.severity_shape(),
        }
    }

    /// The thread row at flat row index `r` (`m * nc + c` in the
    /// operand's own shape).
    fn row(&self, r: usize) -> &'a [f64] {
        let nt = self.shape.2;
        &self.values[r * nt..(r + 1) * nt]
    }
}

// ---------------------------------------------------------------------------
// reductions and expressions
// ---------------------------------------------------------------------------

/// An n-ary element-wise reduction over a series of experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Element-wise sum.
    Sum,
    /// Element-wise arithmetic mean.
    Mean,
    /// Element-wise minimum (the paper's §5.1 series selection).
    Min,
    /// Element-wise maximum.
    Max,
    /// Element-wise population variance.
    Variance,
    /// Element-wise population standard deviation.
    Stddev,
}

impl Reduction {
    /// The operator name used in derived provenance, matching the names
    /// the [`crate::ops`] / [`crate::stats`] entry points have always
    /// written.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sum => "sum",
            Self::Mean => "mean",
            Self::Min => "min",
            Self::Max => "max",
            Self::Variance => "variance",
            Self::Stddev => "stddev",
        }
    }
}

/// A composite expression over the operands of one [`BatchPlan`].
///
/// Every node evaluates to a severity-shaped value over the plan's
/// integrated metadata, so arbitrary nesting needs no further
/// integration — that is the closure property, collapsed onto a single
/// schema.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// The zero-extended severity of one operand (by plan index).
    Operand(usize),
    /// An n-ary reduction over a set of operands (by plan index).
    Reduce(Reduction, Vec<usize>),
    /// Element-wise difference of two sub-expressions.
    Diff(Box<Expr>, Box<Expr>),
    /// Scalar multiple of a sub-expression.
    Scale(Box<Expr>, f64),
    /// The additive identity: severity zero at every position of the
    /// integrated metadata. Not produced by the parser — the rewrite
    /// pass ([`crate::check::rewrite`]) folds statically-zero trees
    /// (`diff(X,X)`) into this node so evaluation skips their severity
    /// reads entirely.
    Zero,
}

impl Expr {
    /// A reduction over the operand indices in `range` (convenience for
    /// the common "contiguous slice of the series" case).
    pub fn reduce(r: Reduction, range: impl IntoIterator<Item = usize>) -> Self {
        Self::Reduce(r, range.into_iter().collect())
    }

    /// `minuend − subtrahend`, element-wise.
    pub fn diff(minuend: Expr, subtrahend: Expr) -> Self {
        Self::Diff(Box::new(minuend), Box::new(subtrahend))
    }

    /// `factor ×` the sub-expression, element-wise.
    pub fn scale(inner: Expr, factor: f64) -> Self {
        Self::Scale(Box::new(inner), factor)
    }
}

// ---------------------------------------------------------------------------
// cached operand sources
// ---------------------------------------------------------------------------

/// Per-dimension inverse of an [`OperandMap`]: integrated id → source
/// id, with [`ABSENT`] where the operand defines nothing.
#[derive(Debug)]
struct GatherMap {
    metric: Vec<u32>,
    call: Vec<u32>,
    thread: Vec<u32>,
    /// `Some(n)` when the thread table is the identity on `0..n` and
    /// absent beyond — the dominant rank-matched union case, where a
    /// source row is one contiguous prefix of the integrated row.
    thread_prefix: Option<usize>,
}

impl GatherMap {
    /// Inverts a mapping; `None` when two source ids collide on one
    /// integrated id (non-injective — the structurally-equal-siblings
    /// case, which needs accumulating extension instead of gathering).
    fn invert(ids: impl Iterator<Item = usize>, dst_len: usize) -> Option<Vec<u32>> {
        let mut inv = vec![ABSENT; dst_len];
        for (src, dst) in ids.enumerate() {
            if inv[dst] != ABSENT {
                return None;
            }
            inv[dst] = src as u32;
        }
        Some(inv)
    }

    fn try_build(map: &OperandMap, shape: (usize, usize, usize)) -> Option<Self> {
        let metric = Self::invert(map.metrics.iter().map(|m| m.index()), shape.0)?;
        let call = Self::invert(map.call_nodes.iter().map(|c| c.index()), shape.1)?;
        let thread = Self::invert(map.threads.iter().map(|t| t.index()), shape.2)?;
        let n = map.threads.len();
        let identity_prefix = thread
            .iter()
            .take(n)
            .enumerate()
            .all(|(i, &v)| v == i as u32)
            && thread.iter().skip(n).all(|&v| v == ABSENT);
        Some(Self {
            metric,
            call,
            thread,
            thread_prefix: identity_prefix.then_some(n),
        })
    }
}

/// How one operand's values are read at integrated coordinates.
#[derive(Debug)]
enum Source {
    /// Mapping is the identity and shapes agree: read the operand's
    /// severity slice directly.
    Direct,
    /// Injective mapping: translate coordinates through cached gather
    /// tables (no copy of the operand's data).
    Gather(GatherMap),
    /// Non-injective mapping: one zero-extended (accumulating) copy,
    /// materialized at plan build time and reused by every evaluation.
    Extended(Severity),
}

/// One operand's contribution to an integrated `(metric, call node)`
/// row.
enum RowRef<'p> {
    /// A full integrated-width slice.
    Dense(&'p [f64]),
    /// The leading values of the row; positions beyond are zero.
    Prefix(&'p [f64]),
    /// Per-thread gather: `idx[t]` indexes into `src`, [`ABSENT`] = 0.
    Gather { src: &'p [f64], idx: &'p [u32] },
    /// The operand defines nothing on this row: all zeros.
    Zero,
}

/// `dst = row`, materializing zero-extension.
fn assign_row(dst: &mut [f64], row: &RowRef<'_>) {
    match row {
        RowRef::Dense(s) => dst.copy_from_slice(s),
        RowRef::Prefix(s) => {
            dst[..s.len()].copy_from_slice(s);
            dst[s.len()..].fill(0.0);
        }
        RowRef::Gather { src, idx } => {
            for (d, &j) in dst.iter_mut().zip(idx.iter()) {
                *d = if j == ABSENT { 0.0 } else { src[j as usize] };
            }
        }
        RowRef::Zero => dst.fill(0.0),
    }
}

/// `dst[t] = f(dst[t], row[t])` with `row`'s zero-extension applied —
/// absent positions combine with 0.0 (they must, for selections like
/// `min`, where a missing measurement still competes as zero).
fn combine_row(dst: &mut [f64], row: &RowRef<'_>, f: impl Fn(f64, f64) -> f64) {
    match row {
        RowRef::Dense(s) => {
            for (d, &v) in dst.iter_mut().zip(s.iter()) {
                *d = f(*d, v);
            }
        }
        RowRef::Prefix(s) => {
            let (head, tail) = dst.split_at_mut(s.len());
            for (d, &v) in head.iter_mut().zip(s.iter()) {
                *d = f(*d, v);
            }
            for d in tail {
                *d = f(*d, 0.0);
            }
        }
        RowRef::Gather { src, idx } => {
            for (d, &j) in dst.iter_mut().zip(idx.iter()) {
                let v = if j == ABSENT { 0.0 } else { src[j as usize] };
                *d = f(*d, v);
            }
        }
        RowRef::Zero => {
            for d in dst {
                *d = f(*d, 0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// degraded evaluation
// ---------------------------------------------------------------------------

/// One operand of a degraded k-ary evaluation: either a usable
/// experiment or the reason it could not be loaded.
///
/// Callers that read operands from disk translate each load failure
/// into [`PartialOperand::Broken`] so the index positions of the
/// original argument list are preserved in the error report.
#[derive(Clone, Copy, Debug)]
pub enum PartialOperand<'a> {
    /// The operand loaded fine.
    Ok(&'a Experiment),
    /// The operand is unusable; the string says why.
    Broken(&'a str),
}

impl<'a> PartialOperand<'a> {
    /// `true` for a usable operand.
    pub fn is_ok(&self) -> bool {
        matches!(self, Self::Ok(_))
    }
}

/// A skipped operand of a [`BatchPlan::evaluate_partial`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OperandError {
    /// Zero-based index in the original operand list.
    pub index: usize,
    /// Why the operand was skipped.
    pub reason: String,
}

/// Result of a degraded k-ary evaluation: the reduction over the
/// surviving operands plus the per-operand failure report.
#[derive(Debug)]
pub struct PartialEvaluation {
    /// The reduction over the survivors.
    pub result: Experiment,
    /// How many operands actually contributed.
    pub used: usize,
    /// The operands that were skipped, in argument order.
    pub skipped: Vec<OperandError>,
}

// ---------------------------------------------------------------------------
// the plan
// ---------------------------------------------------------------------------

/// The cacheable product of building a [`BatchPlan`]: the integrated
/// metadata, per-operand id mappings, and gather tables.
///
/// Building these is the expensive half of a plan (one metadata
/// integration plus one gather-table inversion per operand); the
/// evaluation half is pure arithmetic. Long-running services cache
/// `PlanTables` keyed by the *identity of the operand list* — e.g. the
/// content hashes of the operands in order — and rebuild a cheap
/// [`BatchPlan`] around the cached tables with
/// [`BatchPlan::from_tables`] on every request.
///
/// # Reuse contract
///
/// Tables are only valid for an operand list whose metadata (and, for
/// the rare non-injective operand, severity values) is identical to
/// the list they were built from. [`BatchPlan::from_tables`] verifies
/// the operand count and severity shapes and reports
/// [`AlgebraError::PlanMismatch`] on disagreement; metadata equality
/// beyond the shape is the caller's key discipline (content-addressed
/// stores get it for free).
pub struct PlanTables {
    metadata: Metadata,
    maps: Vec<OperandMap>,
    shape: (usize, usize, usize),
    sources: Vec<Source>,
    /// Severity shapes the operands had at build time, revalidated on
    /// reuse by [`BatchPlan::from_tables`].
    operand_shapes: Vec<(usize, usize, usize)>,
}

impl PlanTables {
    /// Integrates the operands' metadata and builds the per-operand
    /// gather tables.
    pub fn build(operands: &[&dyn BatchOperand], options: MergeOptions) -> Self {
        if operands.is_empty() {
            // Nothing to integrate; every reduction over this plan
            // reports `EmptyOperandList`.
            return Self {
                metadata: Metadata::new(),
                maps: Vec::new(),
                shape: (0, 0, 0),
                sources: Vec::new(),
                operand_shapes: Vec::new(),
            };
        }
        let mds: Vec<&Metadata> = operands.iter().map(|op| op.metadata()).collect();
        let Integrated { metadata, maps } = integrate_metadata(&mds, options);
        let shape = metadata.shape();
        let views: Vec<OperandView<'_>> = operands.iter().map(|op| OperandView::of(*op)).collect();
        let sources = views
            .iter()
            .zip(&maps)
            .map(|(view, map)| {
                if view.shape == shape && map.is_identity() {
                    Source::Direct
                } else if let Some(g) = GatherMap::try_build(map, shape) {
                    Source::Gather(g)
                } else {
                    Source::Extended(extend_severity_values(view.values, view.shape, map, shape))
                }
            })
            .collect();
        Self {
            metadata,
            maps,
            shape,
            sources,
            operand_shapes: views.iter().map(|v| v.shape).collect(),
        }
    }

    /// The integrated metadata all evaluations are defined over.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// The integrated severity shape `(metrics, call nodes, threads)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.shape
    }

    /// Number of operands the tables were built over.
    pub fn num_operands(&self) -> usize {
        self.operand_shapes.len()
    }
}

/// A reusable batch-evaluation plan over k operand experiments.
///
/// Construction integrates the operands' metadata **once** and caches
/// per-operand id translations; every subsequent [`BatchPlan::reduce`]
/// or [`BatchPlan::eval`] call is pure element-wise arithmetic over the
/// cached schema. See the [module documentation](self) for the worked
/// example.
pub struct BatchPlan<'a> {
    operands: Vec<&'a dyn BatchOperand>,
    views: Vec<OperandView<'a>>,
    tables: Arc<PlanTables>,
}

impl<'a> BatchPlan<'a> {
    /// Builds a plan with default [`MergeOptions`].
    pub fn new(operands: &[&'a Experiment]) -> Self {
        Self::with_options(operands, MergeOptions::default())
    }

    /// Builds a plan with explicit integration switches.
    pub fn with_options(operands: &[&'a Experiment], options: MergeOptions) -> Self {
        let ops: Vec<&'a dyn BatchOperand> =
            operands.iter().map(|e| *e as &dyn BatchOperand).collect();
        Self::from_operands(&ops, options)
    }

    /// Builds a plan over any [`BatchOperand`] sources — full
    /// experiments, lazy storage handles, or a mix.
    pub fn from_operands(operands: &[&'a dyn BatchOperand], options: MergeOptions) -> Self {
        let tables = Arc::new(PlanTables::build(operands, options));
        Self::from_tables(operands, tables).expect("freshly built tables match their operands")
    }

    /// Rebuilds a plan around cached [`PlanTables`], skipping metadata
    /// integration and gather-table construction entirely.
    ///
    /// This is the plan-cache hook for long-running evaluators: the
    /// tables carry no borrow of the operands, so they can be held in
    /// an LRU across requests and combined with freshly opened operand
    /// handles here. Fails with [`AlgebraError::PlanMismatch`] when the
    /// operand count or any severity shape disagrees with the list the
    /// tables were built from.
    pub fn from_tables(
        operands: &[&'a dyn BatchOperand],
        tables: Arc<PlanTables>,
    ) -> Result<Self, AlgebraError> {
        if operands.len() != tables.operand_shapes.len() {
            return Err(AlgebraError::PlanMismatch {
                reason: format!(
                    "tables were built over {} operands, got {}",
                    tables.operand_shapes.len(),
                    operands.len()
                ),
            });
        }
        let views: Vec<OperandView<'a>> = operands.iter().map(|op| OperandView::of(*op)).collect();
        for (i, (view, built)) in views.iter().zip(&tables.operand_shapes).enumerate() {
            if view.shape != *built {
                return Err(AlgebraError::PlanMismatch {
                    reason: format!(
                        "operand {i} has severity shape {:?}, tables were built over {:?}",
                        view.shape, built
                    ),
                });
            }
        }
        Ok(Self {
            operands: operands.to_vec(),
            views,
            tables,
        })
    }

    /// The cached tables behind this plan, shareable across plans over
    /// equal operand lists.
    pub fn tables(&self) -> &Arc<PlanTables> {
        &self.tables
    }

    /// The integrated metadata all evaluations are defined over.
    pub fn metadata(&self) -> &Metadata {
        &self.tables.metadata
    }

    /// The cached per-operand id mappings, in operand order.
    pub fn maps(&self) -> &[OperandMap] {
        &self.tables.maps
    }

    /// The integrated severity shape `(metrics, call nodes, threads)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.tables.shape
    }

    /// Number of operands in the plan.
    pub fn num_operands(&self) -> usize {
        self.operands.len()
    }

    /// Whether the plan has no operands (every reduction then errors).
    pub fn is_empty(&self) -> bool {
        self.operands.is_empty()
    }

    /// Evaluates a reduction over **all** operands of the plan.
    pub fn reduce(&self, r: Reduction) -> Result<Experiment, AlgebraError> {
        self.eval(&Expr::reduce(r, 0..self.operands.len()))
    }

    /// Degraded k-ary evaluation: reduces over the operands that could
    /// be loaded, skipping the broken ones.
    ///
    /// Under [`FailurePolicy::Abort`] the first broken operand fails
    /// the evaluation with [`AlgebraError::OperandFailed`]. Under
    /// [`FailurePolicy::KeepGoing`] the plan is built over the
    /// survivors only, so `mean` renormalizes over them by
    /// construction — a k-ary mean with one broken operand equals the
    /// (k−1)-ary mean of the survivors — and every skipped operand is
    /// recorded in the returned [`PartialEvaluation::skipped`] report.
    /// All operands broken is still an error: there is nothing to
    /// reduce over.
    pub fn evaluate_partial(
        operands: &[PartialOperand<'a>],
        reduction: Reduction,
        options: MergeOptions,
        policy: FailurePolicy,
    ) -> Result<PartialEvaluation, AlgebraError> {
        let mut survivors: Vec<&'a Experiment> = Vec::with_capacity(operands.len());
        let mut skipped: Vec<OperandError> = Vec::new();
        for (index, op) in operands.iter().enumerate() {
            match *op {
                PartialOperand::Ok(exp) => survivors.push(exp),
                PartialOperand::Broken(reason) => match policy {
                    FailurePolicy::Abort => {
                        return Err(AlgebraError::OperandFailed {
                            index,
                            reason: reason.to_string(),
                        });
                    }
                    FailurePolicy::KeepGoing => skipped.push(OperandError {
                        index,
                        reason: reason.to_string(),
                    }),
                },
            }
        }
        if survivors.is_empty() {
            return Err(AlgebraError::EmptyOperandList {
                operator: reduction.name(),
            });
        }
        let plan = BatchPlan::with_options(&survivors, options);
        let result = plan.reduce(reduction)?;
        Ok(PartialEvaluation {
            result,
            used: survivors.len(),
            skipped,
        })
    }

    /// Evaluates a composite expression into a full derived experiment
    /// over the integrated metadata.
    pub fn eval(&self, expr: &Expr) -> Result<Experiment, AlgebraError> {
        let values = self.eval_values(expr)?;
        let severity = Severity::from_values(
            self.tables.shape.0,
            self.tables.shape.1,
            self.tables.shape.2,
            values,
        );
        let result = Experiment::new_unchecked(
            self.tables.metadata.clone(),
            severity,
            self.provenance_of(expr),
        );
        crate::invariant::debug_assert_closed(&result, "batch eval");
        Ok(result)
    }

    // -- expression evaluation ---------------------------------------------

    fn check_index(&self, i: usize) -> Result<(), AlgebraError> {
        if i >= self.operands.len() {
            return Err(AlgebraError::OperandOutOfRange {
                index: i,
                len: self.operands.len(),
            });
        }
        Ok(())
    }

    fn eval_values(&self, expr: &Expr) -> Result<Vec<f64>, AlgebraError> {
        if let Some(out) = self.eval_fused(expr) {
            return Ok(out);
        }
        match expr {
            Expr::Operand(i) => {
                self.check_index(*i)?;
                let mut out = self.zeroed();
                self.for_each_row(&mut out, |m, c, row| {
                    assign_row(row, &self.operand_row(*i, m, c));
                });
                Ok(out)
            }
            Expr::Reduce(r, idxs) => self.reduce_values(*r, idxs),
            Expr::Diff(a, b) => {
                // The two sides are independent whole-plan evaluations
                // (e.g. `diff(mean(A…), mean(B…))`), so fork them; each
                // side's own kernels are deterministic, and the results
                // land positionally, so the fork cannot change values.
                let (x, y) = rayon::join(|| self.eval_values(a), || self.eval_values(b));
                let mut x = x?;
                zip_sub(&mut x, &y?);
                Ok(x)
            }
            Expr::Scale(inner, factor) => {
                let mut x = self.eval_values(inner)?;
                let f = *factor;
                map_values(&mut x, |v| v * f);
                Ok(x)
            }
            Expr::Zero => Ok(self.zeroed()),
        }
    }

    /// Fused single-pass evaluation ([`crate::kernel`]): lowers the
    /// whole tree into one kernel program and runs it in one traversal
    /// of the operand arrays. Returns `None` — falling back to the
    /// unfused tree walk — when fusion is switched off, when the tree
    /// fails to compile (the unfused walk then re-diagnoses the same
    /// error), or when a referenced operand needs gathering; in the
    /// last case the `Diff`/`Scale` recursion still retries fusion on
    /// each gather-free subtree. Results are byte-identical to the
    /// unfused path at every thread count (see `docs/KERNELS.md`).
    fn eval_fused(&self, expr: &Expr) -> Option<Vec<f64>> {
        if !kernel::fusion_enabled() {
            return None;
        }
        let prog = kernel::KernelProgram::compile(expr, self.operands.len()).ok()?;
        let sources = prog
            .slots()
            .iter()
            .map(|&i| self.dense_values(i))
            .collect::<Option<Vec<_>>>()?;
        let mut out = self.zeroed();
        kernel::eval_fused(&prog, &sources, &mut out);
        Some(out)
    }

    /// Whether [`Self::eval`] would route `expr` through the fused
    /// single-pass kernel program at the top level: fusion is enabled,
    /// the tree compiles, and every referenced operand is gather-free.
    /// Exposed so tests and CI gates can assert which path an
    /// evaluation takes.
    pub fn fusible(&self, expr: &Expr) -> bool {
        kernel::fusion_enabled()
            && kernel::KernelProgram::compile(expr, self.operands.len())
                .map(|p| p.slots().iter().all(|&i| self.dense_values(i).is_some()))
                .unwrap_or(false)
    }

    fn reduce_values(&self, r: Reduction, idxs: &[usize]) -> Result<Vec<f64>, AlgebraError> {
        let Some((&first, rest)) = idxs.split_first() else {
            return Err(AlgebraError::EmptyOperandList { operator: r.name() });
        };
        for &i in idxs {
            self.check_index(i)?;
        }
        let k = idxs.len() as f64;
        let mut out = self.zeroed();
        match r {
            Reduction::Sum | Reduction::Mean => {
                let scale = if r == Reduction::Mean { 1.0 / k } else { 1.0 };
                self.fold_rows(&mut out, first, rest, |x, y| x + y, scale);
            }
            Reduction::Min => self.fold_rows(&mut out, first, rest, f64::min, 1.0),
            Reduction::Max => self.fold_rows(&mut out, first, rest, f64::max, 1.0),
            Reduction::Variance | Reduction::Stddev => {
                // Two blocked passes: the element-wise mean, then the
                // averaged squared deviations against it. Divisions (not
                // reciprocal multiplies) keep results bit-identical to
                // the pairwise oracle.
                let mut mean = self.zeroed();
                self.fold_rows(&mut mean, first, rest, |x, y| x + y, 1.0);
                map_values(&mut mean, |v| v / k);
                if self.all_dense(idxs) {
                    for &i in idxs {
                        let src = self.dense_values(i).expect("checked dense");
                        accumulate_sqdev_dense(&mut out, src, &mean);
                    }
                } else {
                    let nt = self.tables.shape.2;
                    self.for_each_row(&mut out, |m, c, row| {
                        let r0 = m * self.tables.shape.1 + c;
                        let mrow = &mean[r0 * nt..(r0 + 1) * nt];
                        for &i in idxs {
                            accumulate_sqdev(row, &self.operand_row(i, m, c), mrow);
                        }
                    });
                }
                map_values(&mut out, |v| v / k);
                if r == Reduction::Stddev {
                    map_values(&mut out, f64::sqrt);
                }
            }
        }
        Ok(out)
    }

    /// Copy-first fold: `out = op_first`, then `out = f(out, op_i)` per
    /// remaining operand, one blocked pass over the integrated rows,
    /// finally multiplied by `scale` (1.0 = untouched). Generic in `f`
    /// so the per-element combine inlines (a `dyn` closure here costs a
    /// dynamic call per element and dominates the whole reduction).
    fn fold_rows(
        &self,
        out: &mut [f64],
        first: usize,
        rest: &[usize],
        f: impl Fn(f64, f64) -> f64 + Sync + Copy,
        scale: f64,
    ) {
        // Dense fast path: when no operand needs gathering, the fold is
        // a straight sweep over contiguous full-size arrays — no
        // per-row source dispatch (which otherwise dominates at small
        // thread counts). Same fold order, so results are identical.
        if self.all_dense(&[first]) && self.all_dense(rest) {
            out.copy_from_slice(self.dense_values(first).expect("checked dense"));
            // Two operands per sweep halve the accumulator traffic;
            // per element the applications stay in operand order, so
            // the result is bit-identical to a one-by-one fold.
            for pair in rest.chunks(2) {
                let s1 = self.dense_values(pair[0]).expect("checked dense");
                if let Some(&i2) = pair.get(1) {
                    let s2 = self.dense_values(i2).expect("checked dense");
                    if out.len() >= PAR_THRESHOLD {
                        out.par_iter_mut()
                            .zip(s1.par_iter().zip(s2.par_iter()))
                            .for_each(|(d, (a, b))| *d = f(f(*d, *a), *b));
                    } else {
                        for (d, (a, b)) in out.iter_mut().zip(s1.iter().zip(s2)) {
                            *d = f(f(*d, *a), *b);
                        }
                    }
                } else if out.len() >= PAR_THRESHOLD {
                    out.par_iter_mut()
                        .zip(s1.par_iter())
                        .for_each(|(d, s)| *d = f(*d, *s));
                } else {
                    for (d, s) in out.iter_mut().zip(s1) {
                        *d = f(*d, *s);
                    }
                }
            }
            if scale != 1.0 {
                map_values(out, |v| v * scale);
            }
            return;
        }
        self.for_each_row(out, |m, c, row| {
            assign_row(row, &self.operand_row(first, m, c));
            for &i in rest {
                combine_row(row, &self.operand_row(i, m, c), f);
            }
            if scale != 1.0 {
                for v in row {
                    *v *= scale;
                }
            }
        });
    }

    /// Whole-array view of an operand whose source needs no gathering.
    fn dense_values(&self, i: usize) -> Option<&[f64]> {
        match &self.tables.sources[i] {
            Source::Direct => Some(self.views[i].values),
            Source::Extended(s) => Some(s.values()),
            Source::Gather(_) => None,
        }
    }

    fn all_dense(&self, idxs: &[usize]) -> bool {
        idxs.iter().all(|&i| self.dense_values(i).is_some())
    }

    fn zeroed(&self) -> Vec<f64> {
        vec![0.0; self.tables.shape.0 * self.tables.shape.1 * self.tables.shape.2]
    }

    /// Runs `f(metric, call, row)` for every integrated row, in blocks
    /// of rows distributed over Rayon above the element threshold.
    fn for_each_row(&self, values: &mut [f64], f: impl Fn(usize, usize, &mut [f64]) + Sync) {
        let (_, nc, nt) = self.tables.shape;
        if values.is_empty() || nt == 0 {
            return;
        }
        let run = |start_row: usize, block: &mut [f64]| {
            for (i, row) in block.chunks_mut(nt).enumerate() {
                let r = start_row + i;
                f(r / nc, r % nc, row);
            }
        };
        if values.len() >= PAR_THRESHOLD {
            let rows_per_block = (PAR_THRESHOLD / nt).max(1);
            values
                .par_chunks_mut(rows_per_block * nt)
                .enumerate()
                .for_each(|(bi, block)| run(bi * rows_per_block, block));
        } else {
            run(0, values);
        }
    }

    /// The operand's contribution to integrated row `(m, c)`, read
    /// through the cached source — no allocation, no copies.
    fn operand_row(&self, i: usize, m: usize, c: usize) -> RowRef<'_> {
        match &self.tables.sources[i] {
            Source::Direct => RowRef::Dense(self.views[i].row(m * self.tables.shape.1 + c)),
            Source::Extended(sev) => RowRef::Dense(sev.row_at(m * self.tables.shape.1 + c)),
            Source::Gather(g) => {
                let (im, ic) = (g.metric[m], g.call[c]);
                if im == ABSENT || ic == ABSENT {
                    return RowRef::Zero;
                }
                let view = &self.views[i];
                let onc = view.shape.1;
                let src = view.row(im as usize * onc + ic as usize);
                match g.thread_prefix {
                    Some(_) => RowRef::Prefix(src),
                    None => RowRef::Gather {
                        src,
                        idx: &g.thread,
                    },
                }
            }
        }
    }

    // -- provenance ---------------------------------------------------------

    fn expr_label(&self, expr: &Expr) -> String {
        self.provenance_of(expr).label()
    }

    fn provenance_of(&self, expr: &Expr) -> Provenance {
        match expr {
            Expr::Operand(i) => self.operands[*i].provenance().clone(),
            Expr::Reduce(r, idxs) => Provenance::derived(
                r.name(),
                idxs.iter()
                    .map(|&i| self.operands[i].provenance().label())
                    .collect(),
            ),
            Expr::Diff(a, b) => {
                Provenance::derived("difference", vec![self.expr_label(a), self.expr_label(b)])
            }
            Expr::Scale(inner, factor) => {
                Provenance::derived("scale", vec![self.expr_label(inner), format!("{factor}")])
            }
            Expr::Zero => Provenance::derived("zero", Vec::new()),
        }
    }
}

/// `dst[i] = f(dst[i])`, parallel above the element threshold.
fn map_values(dst: &mut [f64], f: impl Fn(f64) -> f64 + Sync) {
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut().for_each(|v| *v = f(*v));
    } else {
        for v in dst {
            *v = f(*v);
        }
    }
}

fn zip_sub(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(d, s)| *d -= *s);
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d -= *s;
        }
    }
}

/// `dst[i] += (src[i] − mean[i])²` over whole dense arrays, parallel
/// above the element threshold.
fn accumulate_sqdev_dense(dst: &mut [f64], src: &[f64], mean: &[f64]) {
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(src.par_iter().zip(mean.par_iter()))
            .for_each(|(d, (&v, &m))| *d += (v - m) * (v - m));
    } else {
        for (d, (&v, &m)) in dst.iter_mut().zip(src.iter().zip(mean)) {
            *d += (v - m) * (v - m);
        }
    }
}

/// `dst[t] += (row[t] − mean[t])²` with zero-extension applied.
fn accumulate_sqdev(dst: &mut [f64], row: &RowRef<'_>, mean: &[f64]) {
    match row {
        RowRef::Dense(s) => {
            for ((d, &v), &m) in dst.iter_mut().zip(s.iter()).zip(mean) {
                *d += (v - m) * (v - m);
            }
        }
        RowRef::Prefix(s) => {
            for ((d, &v), &m) in dst.iter_mut().zip(s.iter()).zip(mean) {
                *d += (v - m) * (v - m);
            }
            for (d, &m) in dst.iter_mut().zip(mean).skip(s.len()) {
                *d += m * m;
            }
        }
        RowRef::Gather { src, idx } => {
            for ((d, &j), &m) in dst.iter_mut().zip(idx.iter()).zip(mean) {
                let v = if j == ABSENT { 0.0 } else { src[j as usize] };
                *d += (v - m) * (v - m);
            }
        }
        RowRef::Zero => {
            for (d, &m) in dst.iter_mut().zip(mean) {
                *d += m * m;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// the pairwise oracle
// ---------------------------------------------------------------------------

pub mod pairwise {
    //! The pre-batch evaluation path, kept as a **differential
    //! oracle**: every n-ary reduction here is the literal pairwise
    //! fold (or, for the moments, the extend-everything reference),
    //! re-running metadata integration at each step. `BatchPlan`
    //! results are tested value-identical against these functions; the
    //! `batch_reduce` bench in `cube-bench` measures the gap.

    use cube_model::{Experiment, Provenance, Severity};

    use crate::error::AlgebraError;
    use crate::extend::extend_severity;
    use crate::integrate::integrate;
    use crate::options::MergeOptions;

    fn labels(operands: &[&Experiment]) -> Vec<String> {
        operands.iter().map(|e| e.provenance().label()).collect()
    }

    /// Left fold of a binary element-wise operation, integrating the
    /// accumulator with the next operand at every step — the O(k)
    /// integrations the batch engine exists to avoid.
    fn fold(
        name: &'static str,
        operands: &[&Experiment],
        options: MergeOptions,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Experiment, AlgebraError> {
        let Some((&head, rest)) = operands.split_first() else {
            return Err(AlgebraError::EmptyOperandList { operator: name });
        };
        let mut acc = head.clone();
        for op in rest {
            let integrated = integrate(&[&acc, op], options);
            let shape = integrated.metadata.shape();
            let mut a = extend_severity(&acc, &integrated.maps[0], shape);
            let b = extend_severity(op, &integrated.maps[1], shape);
            for (d, s) in a.values_mut().iter_mut().zip(b.values()) {
                *d = f(*d, *s);
            }
            acc = Experiment::new_unchecked(integrated.metadata, a, Provenance::default());
        }
        acc.set_provenance(Provenance::derived(name, labels(operands)));
        crate::invariant::debug_assert_closed(&acc, name);
        Ok(acc)
    }

    /// Pairwise-fold sum.
    pub fn sum(
        operands: &[&Experiment],
        options: MergeOptions,
    ) -> Result<Experiment, AlgebraError> {
        fold("sum", operands, options, |x, y| x + y)
    }

    /// Pairwise-fold mean: fold the sum, then scale by `1/k`.
    pub fn mean(
        operands: &[&Experiment],
        options: MergeOptions,
    ) -> Result<Experiment, AlgebraError> {
        let mut e = fold("mean", operands, options, |x, y| x + y)?;
        let factor = 1.0 / operands.len() as f64;
        for v in e.severity_mut().values_mut() {
            *v *= factor;
        }
        Ok(e)
    }

    /// Pairwise-fold minimum.
    pub fn min(
        operands: &[&Experiment],
        options: MergeOptions,
    ) -> Result<Experiment, AlgebraError> {
        fold("min", operands, options, f64::min)
    }

    /// Pairwise-fold maximum.
    pub fn max(
        operands: &[&Experiment],
        options: MergeOptions,
    ) -> Result<Experiment, AlgebraError> {
        fold("max", operands, options, f64::max)
    }

    /// Reference population variance: integrates once but materializes
    /// every operand's zero-extended array (the pre-batch
    /// `stats::variance` implementation, verbatim).
    pub fn variance(
        operands: &[&Experiment],
        options: MergeOptions,
    ) -> Result<Experiment, AlgebraError> {
        if operands.is_empty() {
            return Err(AlgebraError::EmptyOperandList {
                operator: "variance",
            });
        }
        let integrated = integrate(operands, options);
        let shape = integrated.metadata.shape();
        let extended: Vec<_> = operands
            .iter()
            .zip(&integrated.maps)
            .map(|(op, map)| extend_severity(op, map, shape))
            .collect();
        let k = operands.len() as f64;
        let mut mean = extended[0].values().to_vec();
        for e in &extended[1..] {
            for (m, v) in mean.iter_mut().zip(e.values()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= k;
        }
        let mut var = Severity::zeros(shape.0, shape.1, shape.2);
        for e in &extended {
            for ((out, &v), &m) in var.values_mut().iter_mut().zip(e.values()).zip(&mean) {
                *out += (v - m) * (v - m);
            }
        }
        for v in var.values_mut() {
            *v /= k;
        }
        let result = Experiment::new_unchecked(
            integrated.metadata,
            var,
            Provenance::derived("variance", labels(operands)),
        );
        crate::invariant::debug_assert_closed(&result, "variance");
        Ok(result)
    }

    /// Reference population standard deviation (square root of
    /// [`variance`]).
    pub fn stddev(
        operands: &[&Experiment],
        options: MergeOptions,
    ) -> Result<Experiment, AlgebraError> {
        let mut e = variance(operands, options)?;
        for v in e.severity_mut().values_mut() {
            *v = v.sqrt();
        }
        e.set_provenance(Provenance::derived("stddev", labels(operands)));
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    /// One metric, one call node, `ranks` ranks, value `v` everywhere.
    fn uniform(name: &str, ranks: usize, v: f64) -> Experiment {
        let mut b = ExperimentBuilder::new(name);
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, ranks);
        for &tid in &ts {
            b.set_severity(t, root, tid, v);
        }
        b.build().unwrap()
    }

    /// A structurally different experiment (disjoint metric/region
    /// names) so integration exercises the gather path.
    fn disjoint(name: &str, ranks: usize, v: f64) -> Experiment {
        let mut b = ExperimentBuilder::new(name);
        let t = b.def_metric("cycles", Unit::Occurrences, "", None);
        let m = b.def_module("z", "z");
        let r = b.def_region("other", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("z", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, ranks);
        for &tid in &ts {
            b.set_severity(t, root, tid, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn equal_metadata_uses_direct_sources() {
        let a = uniform("a", 3, 1.0);
        let b = uniform("b", 3, 2.0);
        let plan = BatchPlan::new(&[&a, &b]);
        assert!(plan
            .tables
            .sources
            .iter()
            .all(|s| matches!(s, Source::Direct)));
        let m = plan.reduce(Reduction::Mean).unwrap();
        assert!(m.severity().values().iter().all(|&v| v == 1.5));
        m.validate().unwrap();
    }

    #[test]
    fn cached_tables_rebuild_identical_plans() {
        let a = uniform("a", 3, 1.0);
        let b = disjoint("b", 2, 2.0);
        let ops: Vec<&dyn BatchOperand> = vec![&a, &b];
        let first = BatchPlan::from_operands(&ops, MergeOptions::default());
        let tables = Arc::clone(first.tables());
        let fresh = first.reduce(Reduction::Mean).unwrap();
        drop(first);
        // Same operand list through the cached tables: no integration,
        // identical result bits.
        let reused = BatchPlan::from_tables(&ops, Arc::clone(&tables)).unwrap();
        let again = reused.reduce(Reduction::Mean).unwrap();
        assert_eq!(fresh.severity().values(), again.severity().values());
        assert_eq!(fresh.metadata(), again.metadata());
        assert_eq!(fresh.provenance().label(), again.provenance().label());
        // A mismatched operand list is rejected, not miscomputed.
        let short: Vec<&dyn BatchOperand> = vec![&a];
        assert!(matches!(
            BatchPlan::from_tables(&short, Arc::clone(&tables)),
            Err(AlgebraError::PlanMismatch { .. })
        ));
        let c = uniform("c", 5, 1.0);
        let wrong_shape: Vec<&dyn BatchOperand> = vec![&a, &c];
        assert!(matches!(
            BatchPlan::from_tables(&wrong_shape, tables),
            Err(AlgebraError::PlanMismatch { .. })
        ));
    }

    #[test]
    fn differing_thread_counts_use_prefix_gather() {
        let a = uniform("a", 2, 4.0);
        let b = uniform("b", 4, 2.0);
        let plan = BatchPlan::new(&[&a, &b]);
        assert_eq!(plan.shape().2, 4);
        // a has fewer threads → gather with a contiguous prefix.
        assert!(matches!(
            &plan.tables.sources[0],
            Source::Gather(g) if g.thread_prefix == Some(2)
        ));
        let s = plan.reduce(Reduction::Sum).unwrap();
        assert_eq!(s.severity().values(), &[6.0, 6.0, 2.0, 2.0]);
    }

    #[test]
    fn non_injective_mapping_falls_back_to_extension() {
        // Two structurally equal sibling roots collapse onto one
        // integrated node → non-injective call mapping.
        let mut b = ExperimentBuilder::new("dup");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let c0 = b.def_call_node(cs, None);
        let c1 = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, c0, ts[0], 1.0);
        b.set_severity(t, c1, ts[0], 2.0);
        let dup = b.build().unwrap();
        let other = uniform("o", 1, 5.0);
        let plan = BatchPlan::new(&[&dup, &other]);
        assert!(matches!(&plan.tables.sources[0], Source::Extended(_)));
        // The duplicate siblings accumulate (1 + 2) before the sum.
        let s = plan.reduce(Reduction::Sum).unwrap();
        assert_eq!(s.severity().values(), &[8.0]);
    }

    #[test]
    fn empty_plan_reductions_error() {
        let plan = BatchPlan::new(&[]);
        assert!(plan.is_empty());
        assert!(matches!(
            plan.reduce(Reduction::Mean),
            Err(AlgebraError::EmptyOperandList { operator: "mean" })
        ));
    }

    #[test]
    fn out_of_range_operand_errors() {
        let a = uniform("a", 1, 1.0);
        let plan = BatchPlan::new(&[&a]);
        assert!(matches!(
            plan.eval(&Expr::Operand(3)),
            Err(AlgebraError::OperandOutOfRange { index: 3, len: 1 })
        ));
        assert!(matches!(
            plan.eval(&Expr::reduce(Reduction::Sum, [0, 9])),
            Err(AlgebraError::OperandOutOfRange { index: 9, len: 1 })
        ));
    }

    #[test]
    fn composite_diff_of_means_single_integration() {
        let a1 = uniform("a1", 2, 2.0);
        let a2 = uniform("a2", 2, 4.0);
        let b1 = uniform("b1", 2, 1.0);
        let b2 = uniform("b2", 2, 2.0);
        let plan = BatchPlan::new(&[&a1, &a2, &b1, &b2]);
        let d = plan
            .eval(&Expr::diff(
                Expr::reduce(Reduction::Mean, 0..2),
                Expr::reduce(Reduction::Mean, 2..4),
            ))
            .unwrap();
        assert!(d
            .severity()
            .values()
            .iter()
            .all(|&v| (v - 1.5).abs() < 1e-12));
        assert_eq!(
            d.provenance().label(),
            "difference(mean(a1, a2), mean(b1, b2))"
        );
        d.validate().unwrap();
    }

    #[test]
    fn scale_and_operand_expressions() {
        let a = uniform("a", 1, 3.0);
        let b = disjoint("b", 1, 9.0);
        let plan = BatchPlan::new(&[&a, &b]);
        // Operand 0 zero-extended onto the union shape.
        let e = plan.eval(&Expr::Operand(0)).unwrap();
        assert_eq!(e.metadata(), plan.metadata());
        assert_eq!(
            e.severity()
                .metric_sum(plan.metadata().find_metric("time").unwrap()),
            3.0
        );
        let doubled = plan.eval(&Expr::scale(Expr::Operand(0), 2.0)).unwrap();
        assert_eq!(
            doubled
                .severity()
                .metric_sum(plan.metadata().find_metric("time").unwrap()),
            6.0
        );
        assert!(doubled.provenance().label().starts_with("scale(a, 2"));
    }

    #[test]
    fn variance_and_stddev_over_disjoint_metadata() {
        // Values 1 and 3 where both define the tuple → variance 1; at
        // tuples only one operand defines, the other counts as zero.
        let a = uniform("a", 1, 1.0);
        let b = uniform("b", 1, 3.0);
        let plan = BatchPlan::new(&[&a, &b]);
        let v = plan.reduce(Reduction::Variance).unwrap();
        assert!((v.severity().values()[0] - 1.0).abs() < 1e-12);
        let s = plan.reduce(Reduction::Stddev).unwrap();
        assert!((s.severity().values()[0] - 1.0).abs() < 1e-12);
        assert_eq!(s.provenance().label(), "stddev(a, b)");
    }

    #[test]
    fn nan_policy_through_batch_reductions() {
        // NaN injected through the unchecked path: additive reductions
        // poison the element; min/max (Rust semantics) drop the single
        // NaN operand. Pinned here per the documented Severity policy.
        let mut a = uniform("a", 1, 1.0);
        a.severity_mut().values_mut()[0] = f64::NAN;
        let b = uniform("b", 1, 3.0);
        let plan = BatchPlan::new(&[&a, &b]);
        assert!(plan.reduce(Reduction::Sum).unwrap().severity().values()[0].is_nan());
        assert!(plan.reduce(Reduction::Mean).unwrap().severity().values()[0].is_nan());
        assert!(plan
            .reduce(Reduction::Variance)
            .unwrap()
            .severity()
            .values()[0]
            .is_nan());
        assert_eq!(
            plan.reduce(Reduction::Min).unwrap().severity().values()[0],
            3.0
        );
        assert_eq!(
            plan.reduce(Reduction::Max).unwrap().severity().values()[0],
            3.0
        );
    }

    #[test]
    fn pairwise_oracle_agrees_on_a_small_series() {
        let a = uniform("a", 2, 2.0);
        let b = uniform("b", 3, 4.0);
        let c = disjoint("c", 2, 6.0);
        let ops: [&Experiment; 3] = [&a, &b, &c];
        let plan = BatchPlan::new(&ops);
        for r in [
            Reduction::Sum,
            Reduction::Mean,
            Reduction::Min,
            Reduction::Max,
            Reduction::Variance,
            Reduction::Stddev,
        ] {
            let fast = plan.reduce(r).unwrap();
            let slow = match r {
                Reduction::Sum => pairwise::sum(&ops, MergeOptions::default()),
                Reduction::Mean => pairwise::mean(&ops, MergeOptions::default()),
                Reduction::Min => pairwise::min(&ops, MergeOptions::default()),
                Reduction::Max => pairwise::max(&ops, MergeOptions::default()),
                Reduction::Variance => pairwise::variance(&ops, MergeOptions::default()),
                Reduction::Stddev => pairwise::stddev(&ops, MergeOptions::default()),
            }
            .unwrap();
            assert_eq!(fast.metadata(), slow.metadata(), "{r:?} metadata");
            assert_eq!(
                fast.severity().values(),
                slow.severity().values(),
                "{r:?} values"
            );
            assert_eq!(fast.provenance(), slow.provenance(), "{r:?} provenance");
        }
    }

    #[test]
    fn keep_going_mean_equals_survivor_mean() {
        // The differential property: a k-ary mean with one broken
        // operand under KeepGoing is the (k−1)-ary mean of the
        // survivors, bit for bit.
        let a = uniform("a", 2, 2.0);
        let b = uniform("b", 3, 4.0);
        let c = disjoint("c", 2, 6.0);
        let degraded = BatchPlan::evaluate_partial(
            &[
                PartialOperand::Ok(&a),
                PartialOperand::Broken("truncated mid-row"),
                PartialOperand::Ok(&c),
            ],
            Reduction::Mean,
            MergeOptions::default(),
            FailurePolicy::KeepGoing,
        )
        .unwrap();
        let oracle = BatchPlan::new(&[&a, &c]).reduce(Reduction::Mean).unwrap();
        assert_eq!(degraded.result.metadata(), oracle.metadata());
        assert_eq!(
            degraded.result.severity().values(),
            oracle.severity().values()
        );
        assert_eq!(degraded.result.provenance(), oracle.provenance());
        assert_eq!(degraded.used, 2);
        assert_eq!(
            degraded.skipped,
            vec![OperandError {
                index: 1,
                reason: "truncated mid-row".into()
            }]
        );
        // Sanity: the broken operand really would have changed the mean.
        let full = BatchPlan::new(&[&a, &b, &c])
            .reduce(Reduction::Mean)
            .unwrap();
        assert_ne!(full.severity().values(), oracle.severity().values());
    }

    #[test]
    fn abort_policy_fails_on_first_broken_operand() {
        let a = uniform("a", 1, 1.0);
        let err = BatchPlan::evaluate_partial(
            &[
                PartialOperand::Ok(&a),
                PartialOperand::Broken("no such file"),
            ],
            Reduction::Sum,
            MergeOptions::default(),
            FailurePolicy::Abort,
        )
        .unwrap_err();
        assert_eq!(
            err,
            AlgebraError::OperandFailed {
                index: 1,
                reason: "no such file".into()
            }
        );
    }

    #[test]
    fn all_operands_broken_is_still_an_error() {
        let err = BatchPlan::evaluate_partial(
            &[
                PartialOperand::Broken("gone"),
                PartialOperand::Broken("also gone"),
            ],
            Reduction::Mean,
            MergeOptions::default(),
            FailurePolicy::KeepGoing,
        )
        .unwrap_err();
        assert_eq!(err, AlgebraError::EmptyOperandList { operator: "mean" });
        assert!(!PartialOperand::Broken("gone").is_ok());
    }
}
