//! Fused SIMD evaluation kernels: one pass over the data per expression.
//!
//! BENCH_5.json shows the 1M-element element-wise layer is
//! memory-bound: the rayon and serial kernels run at the same speed, so
//! threading no longer pays and the remaining lever is *fewer passes*
//! over the severity arrays and *wider* per-element operations. This
//! module supplies both:
//!
//! 1. **A fusion planner.** [`KernelProgram::compile`] lowers a checked
//!    [`Expr`] tree into a flat program over a small virtual register
//!    file — one `Load` per *distinct* operand, then pure register
//!    arithmetic. Evaluating the program is a single traversal of the
//!    operand arrays: `diff(mean(A,B),mean(C,D))` reads A, B, C, D once
//!    each and writes the result once, where the tree-walking evaluator
//!    in [`crate::batch`] makes one full-array pass (plus an
//!    intermediate allocation) per operator node.
//! 2. **Explicit-width lane kernels.** [`eval_fused`] interprets the
//!    program over register *tiles* of [`TILE`] elements; each
//!    instruction's inner loop is written over [`LANE`]-wide chunks
//!    (`chunks_exact`, no `unsafe`) with a scalar remainder, the shape
//!    LLVM reliably turns into packed `f64x4` vector code. Instruction
//!    dispatch is amortized over the whole tile, so interpreter
//!    overhead is ~1/[`TILE`] of a branch per element.
//!
//! A plain per-element scalar interpreter, [`eval_scalar`], is kept as
//! the **differential oracle**: `kernel_props.rs` pins
//! `eval_fused == eval_scalar` *bitwise* across tail lengths and NaN
//! cases, and the CI kernel stage byte-compares whole CLI runs between
//! `--fusion on` and `--fusion off`.
//!
//! # Determinism contract
//!
//! Fused results are **byte-identical** to the unfused evaluator at
//! every thread count. This is what keeps `cube serve`'s result caches
//! sound when fusion is toggled, and it holds by construction:
//!
//! * Every `Expr` node lowers to the *exact* per-element operation
//!   sequence the unfused path applies — reductions are left folds in
//!   operand order, `mean` multiplies by a precomputed `1/k` (skipped
//!   when `k == 1`, as the unfused scale-skip does), the moments divide
//!   by `k` (true division, not a reciprocal multiply), `stddev` takes
//!   one final square root.
//! * All of those operations are element-wise, so block and tile
//!   boundaries — and therefore the worker count — cannot change any
//!   bit of any element.
//! * No value-changing rewrite is applied implicitly: the planner
//!   lowers the tree it is given. The advisory rewrite pass
//!   ([`crate::check::rewrite`]) stays a separate, opt-in step; trees
//!   containing its [`Expr::Zero`] foldings lower to a `Const` fill
//!   that skips severity reads entirely.
//!
//! # Page-granular streaming
//!
//! The parallel driver splits the output into blocks of
//! [`BLOCK_VALUES`] elements — exactly one `.cubec` severity page
//! (32 KiB of `f64`, see `docs/STORE.md`) — so a fused evaluation over
//! columnar operands streams the decoded pages through the cache in
//! page order, one page-sized working set per worker at a time.
//!
//! Fusion is on by default; `cube --fusion off` (or `CUBE_FUSION=off`
//! in the environment) routes evaluation through the unfused tree
//! walker, which the CI differential gate uses as the reference.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use rayon::prelude::*;

use crate::batch::{Expr, Reduction};
use crate::error::AlgebraError;
use crate::ops::PAR_THRESHOLD;

/// Lane width of the chunked kernels: four `f64`s, one AVX2 register
/// (and two NEON registers). Tail elements past the last full lane are
/// handled by the scalar remainder of each kernel.
pub const LANE: usize = 4;

/// Elements per interpreter tile: each instruction runs over a whole
/// tile before the next instruction dispatches, amortizing the
/// interpreter branch to ~1/64 of a match per element while keeping
/// the register file (`num_regs × TILE × 8` bytes) L1-resident.
pub const TILE: usize = 64;

/// Elements per parallel block: one `.cubec` severity page (32 KiB of
/// `f64`). Workers claim whole pages, so fused evaluation over
/// columnar operands streams the store's decode granularity.
pub const BLOCK_VALUES: usize = 4096;

// ---------------------------------------------------------------------------
// the fusion switch
// ---------------------------------------------------------------------------

/// Process-wide fusion switch, seeded once from `CUBE_FUSION` (any of
/// `0`/`off`/`false`/`no` disables; everything else — including the
/// variable being unset — enables).
fn fusion_cell() -> &'static AtomicBool {
    static FUSION: OnceLock<AtomicBool> = OnceLock::new();
    FUSION.get_or_init(|| {
        let on = match std::env::var("CUBE_FUSION") {
            Ok(v) => !matches!(
                v.to_ascii_lowercase().as_str(),
                "0" | "off" | "false" | "no"
            ),
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether [`crate::batch::BatchPlan::eval`] routes fusable expressions
/// through the fused kernels. Defaults to `true`; results are
/// byte-identical either way — the switch exists for differential
/// testing and benchmarking.
pub fn fusion_enabled() -> bool {
    fusion_cell().load(Ordering::Relaxed)
}

/// Turns the fused evaluation path on or off process-wide (the CLI's
/// global `--fusion on|off` flag lands here, overriding `CUBE_FUSION`).
pub fn set_fusion(on: bool) {
    fusion_cell().store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// the program
// ---------------------------------------------------------------------------

/// The fold applied by a [`Instr::Fold`] step, in unfused operand
/// order: `dst = op(dst, operand)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldOp {
    /// `dst + v` (sum, mean, and the moments' inner sums).
    Add,
    /// `f64::min(dst, v)` — Rust semantics: a NaN side loses.
    Min,
    /// `f64::max(dst, v)`.
    Max,
}

impl FoldOp {
    #[inline]
    fn apply(self, d: f64, v: f64) -> f64 {
        match self {
            Self::Add => d + v,
            Self::Min => d.min(v),
            Self::Max => d.max(v),
        }
    }
}

/// One step of a fused kernel program. Registers hold one value per
/// output element; `slot` indexes the program's distinct-operand table
/// ([`KernelProgram::slots`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// `r[dst] = operand[slot]`.
    Load { dst: usize, slot: usize },
    /// `r[dst] = value` (the [`Expr::Zero`] lowering).
    Const { dst: usize, value: f64 },
    /// `r[dst] = op(r[dst], operand[slot])`.
    Fold { dst: usize, slot: usize, op: FoldOp },
    /// `r[dst] -= r[src]` (the `diff` combination).
    SubAssign { dst: usize, src: usize },
    /// `r[dst] *= factor` (`scale`, and `mean`'s `1/k`).
    MulConst { dst: usize, factor: f64 },
    /// `r[dst] /= divisor` (the moments divide — bit-compatible with
    /// the unfused path, which never rewrites `/k` as `× (1/k)`).
    DivConst { dst: usize, divisor: f64 },
    /// `r[dst] += (operand[slot] − r[mean])²` (variance accumulation).
    SqDevAcc {
        dst: usize,
        slot: usize,
        mean: usize,
    },
    /// `r[dst] = sqrt(r[dst])` (the `stddev` finisher).
    Sqrt { dst: usize },
}

/// A fused kernel program: the flat lowering of one [`Expr`] tree.
///
/// Produced by [`KernelProgram::compile`], executed by [`eval_fused`]
/// (lane kernels) or [`eval_scalar`] (the oracle). The program is pure
/// data — no borrows of the plan or the operands — so callers may cache
/// it alongside [`crate::batch::PlanTables`].
#[derive(Clone, Debug)]
pub struct KernelProgram {
    instrs: Vec<Instr>,
    num_regs: usize,
    out: usize,
    slots: Vec<usize>,
}

impl KernelProgram {
    /// Lowers an expression over `num_operands` plan operands into a
    /// fused program.
    ///
    /// Fails with the same diagnosis the unfused evaluator would reach
    /// — [`AlgebraError::EmptyOperandList`] for an empty reduction,
    /// [`AlgebraError::OperandOutOfRange`] for a bad operand index — so
    /// a compile failure never changes which error a caller reports.
    pub fn compile(expr: &Expr, num_operands: usize) -> Result<Self, AlgebraError> {
        let mut c = Compiler {
            num_operands,
            instrs: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            num_regs: 0,
        };
        let out = c.lower(expr)?;
        Ok(Self {
            instrs: c.instrs,
            num_regs: c.num_regs,
            out,
            slots: c.slots,
        })
    }

    /// The program's steps, in execution order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Size of the virtual register file (peak live registers).
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// The distinct operand indices the program loads, in first-use
    /// order. [`eval_fused`]'s `sources` argument is indexed by
    /// position in this table, so each operand's severity array is
    /// bound exactly once however many times the expression names it.
    pub fn slots(&self) -> &[usize] {
        &self.slots
    }

    /// The register holding the result after the last instruction.
    pub fn out_reg(&self) -> usize {
        self.out
    }
}

/// Compile-time state: a bump-plus-free-list register allocator and the
/// distinct-operand slot table.
struct Compiler {
    num_operands: usize,
    instrs: Vec<Instr>,
    slots: Vec<usize>,
    free: Vec<usize>,
    num_regs: usize,
}

impl Compiler {
    fn alloc(&mut self) -> usize {
        self.free.pop().unwrap_or_else(|| {
            let r = self.num_regs;
            self.num_regs += 1;
            r
        })
    }

    fn release(&mut self, r: usize) {
        self.free.push(r);
    }

    fn slot(&mut self, operand: usize) -> usize {
        match self.slots.iter().position(|&s| s == operand) {
            Some(s) => s,
            None => {
                self.slots.push(operand);
                self.slots.len() - 1
            }
        }
    }

    fn check_index(&self, i: usize) -> Result<(), AlgebraError> {
        if i >= self.num_operands {
            return Err(AlgebraError::OperandOutOfRange {
                index: i,
                len: self.num_operands,
            });
        }
        Ok(())
    }

    /// Lowers one node, returning the register holding its value. The
    /// walk order (left before right, operands in list order) matches
    /// the unfused evaluator, so the *first* error agrees too.
    fn lower(&mut self, expr: &Expr) -> Result<usize, AlgebraError> {
        match expr {
            Expr::Operand(i) => {
                self.check_index(*i)?;
                let dst = self.alloc();
                let slot = self.slot(*i);
                self.instrs.push(Instr::Load { dst, slot });
                Ok(dst)
            }
            Expr::Zero => {
                let dst = self.alloc();
                self.instrs.push(Instr::Const { dst, value: 0.0 });
                Ok(dst)
            }
            Expr::Reduce(r, idxs) => self.lower_reduce(*r, idxs),
            Expr::Diff(a, b) => {
                let dst = self.lower(a)?;
                let src = self.lower(b)?;
                self.instrs.push(Instr::SubAssign { dst, src });
                self.release(src);
                Ok(dst)
            }
            Expr::Scale(inner, factor) => {
                let dst = self.lower(inner)?;
                // The unfused path multiplies unconditionally (even by
                // 1.0); mirror it exactly.
                self.instrs.push(Instr::MulConst {
                    dst,
                    factor: *factor,
                });
                Ok(dst)
            }
        }
    }

    fn lower_reduce(&mut self, r: Reduction, idxs: &[usize]) -> Result<usize, AlgebraError> {
        let Some((&first, rest)) = idxs.split_first() else {
            return Err(AlgebraError::EmptyOperandList { operator: r.name() });
        };
        for &i in idxs {
            self.check_index(i)?;
        }
        let k = idxs.len() as f64;
        match r {
            Reduction::Sum | Reduction::Mean | Reduction::Min | Reduction::Max => {
                let op = match r {
                    Reduction::Min => FoldOp::Min,
                    Reduction::Max => FoldOp::Max,
                    _ => FoldOp::Add,
                };
                let dst = self.alloc();
                let slot = self.slot(first);
                self.instrs.push(Instr::Load { dst, slot });
                for &i in rest {
                    let slot = self.slot(i);
                    self.instrs.push(Instr::Fold { dst, slot, op });
                }
                // `fold_rows` skips its scale pass when the factor is
                // exactly 1.0 (k == 1); skip the instruction likewise.
                let scale = if r == Reduction::Mean { 1.0 / k } else { 1.0 };
                if scale != 1.0 {
                    self.instrs.push(Instr::MulConst { dst, factor: scale });
                }
                Ok(dst)
            }
            Reduction::Variance | Reduction::Stddev => {
                // The unfused two-pass moment, collapsed per element:
                // mean = (Σ vᵢ) / k, then acc = (Σ (vᵢ − mean)²) / k.
                let mean = self.alloc();
                let slot = self.slot(first);
                self.instrs.push(Instr::Load { dst: mean, slot });
                for &i in rest {
                    let slot = self.slot(i);
                    self.instrs.push(Instr::Fold {
                        dst: mean,
                        slot,
                        op: FoldOp::Add,
                    });
                }
                self.instrs.push(Instr::DivConst {
                    dst: mean,
                    divisor: k,
                });
                let dst = self.alloc();
                self.instrs.push(Instr::Const { dst, value: 0.0 });
                for &i in idxs {
                    let slot = self.slot(i);
                    self.instrs.push(Instr::SqDevAcc { dst, slot, mean });
                }
                self.release(mean);
                self.instrs.push(Instr::DivConst { dst, divisor: k });
                if r == Reduction::Stddev {
                    self.instrs.push(Instr::Sqrt { dst });
                }
                Ok(dst)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// lane kernels
// ---------------------------------------------------------------------------
//
// Each kernel runs over same-length slices (≤ TILE elements): a
// `chunks_exact` loop over LANE-wide chunks — fixed-trip inner loops
// LLVM lowers to packed vector instructions — plus a scalar remainder
// for the tail. No `unsafe`, no platform intrinsics: determinism comes
// from performing the scalar-identical IEEE operation per element.

/// `dst[i] = op(dst[i], src[i])`, lane-chunked.
fn k_fold(dst: &mut [f64], src: &[f64], op: FoldOp) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANE);
    let mut s = src.chunks_exact(LANE);
    for (d, s) in (&mut d).zip(&mut s) {
        for l in 0..LANE {
            d[l] = op.apply(d[l], s[l]);
        }
    }
    for (d, &s) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d = op.apply(*d, s);
    }
}

/// `dst[i] -= src[i]`, lane-chunked.
fn k_sub(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANE);
    let mut s = src.chunks_exact(LANE);
    for (d, s) in (&mut d).zip(&mut s) {
        for l in 0..LANE {
            d[l] -= s[l];
        }
    }
    for (d, &s) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d -= s;
    }
}

/// `dst[i] *= factor`, lane-chunked.
fn k_mul(dst: &mut [f64], factor: f64) {
    let mut d = dst.chunks_exact_mut(LANE);
    for d in &mut d {
        for d in d.iter_mut() {
            *d *= factor;
        }
    }
    for d in d.into_remainder() {
        *d *= factor;
    }
}

/// `dst[i] /= divisor`, lane-chunked.
fn k_div(dst: &mut [f64], divisor: f64) {
    let mut d = dst.chunks_exact_mut(LANE);
    for d in &mut d {
        for d in d.iter_mut() {
            *d /= divisor;
        }
    }
    for d in d.into_remainder() {
        *d /= divisor;
    }
}

/// `dst[i] += (v[i] − m[i])²`, lane-chunked.
fn k_sqdev(dst: &mut [f64], v: &[f64], m: &[f64]) {
    debug_assert_eq!(dst.len(), v.len());
    debug_assert_eq!(dst.len(), m.len());
    let mut d = dst.chunks_exact_mut(LANE);
    let mut vv = v.chunks_exact(LANE);
    let mut mm = m.chunks_exact(LANE);
    for ((d, v), m) in (&mut d).zip(&mut vv).zip(&mut mm) {
        for l in 0..LANE {
            let x = v[l] - m[l];
            d[l] += x * x;
        }
    }
    for ((d, &v), &m) in d
        .into_remainder()
        .iter_mut()
        .zip(vv.remainder())
        .zip(mm.remainder())
    {
        let x = v - m;
        *d += x * x;
    }
}

/// `dst[i] = sqrt(dst[i])`, lane-chunked.
fn k_sqrt(dst: &mut [f64]) {
    let mut d = dst.chunks_exact_mut(LANE);
    for d in &mut d {
        for d in d.iter_mut() {
            *d = d.sqrt();
        }
    }
    for d in d.into_remainder() {
        *d = d.sqrt();
    }
}

/// Disjoint mutable/shared access to two registers of one tile file.
fn reg_pair(regs: &mut [[f64; TILE]], dst: usize, src: usize) -> (&mut [f64; TILE], &[f64; TILE]) {
    debug_assert_ne!(dst, src, "register pair aliases");
    if dst < src {
        let (lo, hi) = regs.split_at_mut(src);
        (&mut lo[dst], &hi[0])
    } else {
        let (lo, hi) = regs.split_at_mut(dst);
        (&mut hi[0], &lo[src])
    }
}

// ---------------------------------------------------------------------------
// execution
// ---------------------------------------------------------------------------

/// Runs the program over one tile: elements `[at, at + n)` of every
/// source, result landing in `block[.. n]`.
fn run_tile(
    prog: &KernelProgram,
    sources: &[&[f64]],
    at: usize,
    n: usize,
    regs: &mut [[f64; TILE]],
    out: &mut [f64],
) {
    for instr in &prog.instrs {
        match *instr {
            Instr::Load { dst, slot } => {
                regs[dst][..n].copy_from_slice(&sources[slot][at..at + n]);
            }
            Instr::Const { dst, value } => regs[dst][..n].fill(value),
            Instr::Fold { dst, slot, op } => {
                k_fold(&mut regs[dst][..n], &sources[slot][at..at + n], op);
            }
            Instr::SubAssign { dst, src } => {
                let (d, s) = reg_pair(regs, dst, src);
                k_sub(&mut d[..n], &s[..n]);
            }
            Instr::MulConst { dst, factor } => k_mul(&mut regs[dst][..n], factor),
            Instr::DivConst { dst, divisor } => k_div(&mut regs[dst][..n], divisor),
            Instr::SqDevAcc { dst, slot, mean } => {
                let (d, m) = reg_pair(regs, dst, mean);
                k_sqdev(&mut d[..n], &sources[slot][at..at + n], &m[..n]);
            }
            Instr::Sqrt { dst } => k_sqrt(&mut regs[dst][..n]),
        }
    }
    out[..n].copy_from_slice(&regs[prog.out][..n]);
}

/// Evaluates a fused program with the tiled lane kernels, in parallel
/// blocks of [`BLOCK_VALUES`] elements above the element threshold.
///
/// `sources` are the operand severity arrays in [`KernelProgram::slots`]
/// order; every source must be exactly `out.len()` long. Results are
/// bit-identical to [`eval_scalar`] at every thread count.
pub fn eval_fused(prog: &KernelProgram, sources: &[&[f64]], out: &mut [f64]) {
    assert_eq!(
        sources.len(),
        prog.slots.len(),
        "one source per program slot"
    );
    for s in sources {
        assert_eq!(s.len(), out.len(), "source length matches the output");
    }
    let run_block = |base: usize, block: &mut [f64]| {
        let mut regs = vec![[0.0f64; TILE]; prog.num_regs.max(1)];
        let mut off = 0;
        while off < block.len() {
            let n = TILE.min(block.len() - off);
            run_tile(prog, sources, base + off, n, &mut regs, &mut block[off..]);
            off += n;
        }
    };
    if out.len() >= PAR_THRESHOLD {
        out.par_chunks_mut(BLOCK_VALUES)
            .enumerate()
            .for_each(|(b, block)| run_block(b * BLOCK_VALUES, block));
    } else {
        run_block(0, out);
    }
}

/// The scalar reference interpreter: one element at a time, plain `f64`
/// registers. This is the differential oracle the lane kernels are
/// pinned against — deliberately simple, never vectorized.
pub fn eval_scalar(prog: &KernelProgram, sources: &[&[f64]], out: &mut [f64]) {
    assert_eq!(
        sources.len(),
        prog.slots.len(),
        "one source per program slot"
    );
    for s in sources {
        assert_eq!(s.len(), out.len(), "source length matches the output");
    }
    let mut regs = vec![0.0f64; prog.num_regs.max(1)];
    for (i, o) in out.iter_mut().enumerate() {
        for instr in &prog.instrs {
            match *instr {
                Instr::Load { dst, slot } => regs[dst] = sources[slot][i],
                Instr::Const { dst, value } => regs[dst] = value,
                Instr::Fold { dst, slot, op } => regs[dst] = op.apply(regs[dst], sources[slot][i]),
                Instr::SubAssign { dst, src } => regs[dst] -= regs[src],
                Instr::MulConst { dst, factor } => regs[dst] *= factor,
                Instr::DivConst { dst, divisor } => regs[dst] /= divisor,
                Instr::SqDevAcc { dst, slot, mean } => {
                    let x = sources[slot][i] - regs[mean];
                    regs[dst] += x * x;
                }
                Instr::Sqrt { dst } => regs[dst] = regs[dst].sqrt(),
            }
        }
        *o = regs[prog.out];
    }
}

// ---------------------------------------------------------------------------
// shared element-wise entry points (the non-expression surfaces)
// ---------------------------------------------------------------------------

/// `dst[i] -= src[i]` over whole arrays: the `diff` element-wise
/// kernel, lane-chunked and parallel above the element threshold.
/// Bit-identical to a serial scalar loop at any thread count.
pub fn sub_in_place(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    if dst.len() >= PAR_THRESHOLD {
        dst.par_chunks_mut(BLOCK_VALUES)
            .enumerate()
            .for_each(|(b, d)| {
                let at = b * BLOCK_VALUES;
                k_sub(d, &src[at..at + d.len()]);
            });
    } else {
        k_sub(dst, src);
    }
}

/// `dst[i] *= factor` over whole arrays: the `scale` element-wise
/// kernel, lane-chunked and parallel above the element threshold.
pub fn scale_in_place(dst: &mut [f64], factor: f64) {
    if dst.len() >= PAR_THRESHOLD {
        dst.par_chunks_mut(BLOCK_VALUES)
            .for_each(|d| k_mul(d, factor));
    } else {
        k_mul(dst, factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream with negatives, zeros, and magnitude
    /// spread (same LCG family the fuzz harnesses use).
    fn values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mantissa = (state >> 11) as f64 / (1u64 << 53) as f64;
                (mantissa - 0.5) * 1e6
            })
            .collect()
    }

    fn run_both(prog: &KernelProgram, sources: &[&[f64]], n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut fused = vec![0.0; n];
        let mut scalar = vec![0.0; n];
        eval_fused(prog, sources, &mut fused);
        eval_scalar(prog, sources, &mut scalar);
        (fused, scalar)
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: lengths");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn compile_dedups_operand_loads() {
        let expr = Expr::diff(
            Expr::reduce(Reduction::Mean, [0, 1]),
            Expr::reduce(Reduction::Mean, [1, 2]),
        );
        let prog = KernelProgram::compile(&expr, 3).unwrap();
        // Operand 1 appears in both reductions but gets one slot.
        assert_eq!(prog.slots(), &[0, 1, 2]);
        assert_eq!(prog.num_regs(), 2);
    }

    #[test]
    fn compile_reports_unfused_errors() {
        let empty = Expr::Reduce(Reduction::Mean, Vec::new());
        assert!(matches!(
            KernelProgram::compile(&empty, 2),
            Err(AlgebraError::EmptyOperandList { operator: "mean" })
        ));
        let out_of_range = Expr::reduce(Reduction::Sum, [0, 7]);
        assert!(matches!(
            KernelProgram::compile(&out_of_range, 2),
            Err(AlgebraError::OperandOutOfRange { index: 7, len: 2 })
        ));
    }

    #[test]
    fn fused_matches_scalar_on_composites_across_tails() {
        let expr = Expr::diff(
            Expr::reduce(Reduction::Mean, [0, 1]),
            Expr::scale(Expr::reduce(Reduction::Stddev, [2, 3, 0]), 2.5),
        );
        let prog = KernelProgram::compile(&expr, 4).unwrap();
        for n in [
            0,
            1,
            LANE - 1,
            LANE,
            LANE + 1,
            TILE - 1,
            TILE,
            TILE + 1,
            517,
        ] {
            let data: Vec<Vec<f64>> = (0..4).map(|s| values(n, s as u64 + 1)).collect();
            let sources: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
            let (fused, scalar) = run_both(&prog, &sources, n);
            assert_bits_eq(&fused, &scalar, &format!("composite at n={n}"));
        }
    }

    #[test]
    fn empty_program_inputs_are_harmless() {
        let prog = KernelProgram::compile(&Expr::Zero, 0).unwrap();
        let (fused, scalar) = run_both(&prog, &[], 5);
        assert_bits_eq(&fused, &scalar, "zero program");
        assert!(fused.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sub_and_scale_kernels_match_scalar_loops() {
        for n in [0, 1, 3, 4, 5, 1000] {
            let mut a = values(n, 9);
            let b = values(n, 10);
            let mut reference = a.clone();
            for (d, s) in reference.iter_mut().zip(&b) {
                *d -= *s;
            }
            sub_in_place(&mut a, &b);
            assert_bits_eq(&a, &reference, &format!("sub at n={n}"));
            let mut c = values(n, 11);
            let mut reference = c.clone();
            for d in reference.iter_mut() {
                *d *= -1.75;
            }
            scale_in_place(&mut c, -1.75);
            assert_bits_eq(&c, &reference, &format!("scale at n={n}"));
        }
    }
}
