//! Call-tree surgery: prune and reroot.
//!
//! These single-operand operators correspond to the `cube_cut` utility
//! that grew out of the CUBE algebra. Unlike the n-ary operators in
//! [`crate::ops`] they skip metadata integration (there is only one
//! operand) and instead rewrite the call dimension directly: [`prune`]
//! folds a subtree's severity into its root, [`reroot`] discards
//! everything outside a subtree. Both are closed like all other
//! operators — the result is a complete derived experiment with
//! consistent metadata, a re-shaped severity store, and provenance
//! naming the operation — so cut experiments feed straight back into
//! `diff`/`merge`/`mean` pipelines, the display, and the file format.

use std::collections::HashMap;

use cube_model::{CallNode, CallNodeId, Experiment, Metadata, Provenance, Severity};

/// Removes the descendants of `node`, accumulating their severity into
/// `node` itself (so every metric total is preserved). The pruned call
/// paths disappear from the metadata.
pub fn prune(e: &Experiment, node: CallNodeId) -> Experiment {
    let md = e.metadata();
    let subtree = md.call_subtree(node);
    // Redirect: every node of the subtree maps onto `node`; everything
    // else maps onto itself. Then rebuild the call forest without the
    // subtree's non-root members.
    let mut redirect: HashMap<CallNodeId, CallNodeId> = HashMap::new();
    for &s in &subtree {
        redirect.insert(s, node);
    }
    rebuild(
        e,
        |c| *redirect.get(&c).unwrap_or(&c),
        "prune",
        |c| c == node || !redirect.contains_key(&c),
    )
}

/// Keeps only the subtree rooted at `node`, which becomes the single
/// root of the result's call forest. Severity outside the subtree is
/// discarded.
pub fn reroot(e: &Experiment, node: CallNodeId) -> Experiment {
    let md = e.metadata();
    let keep: std::collections::HashSet<CallNodeId> = md.call_subtree(node).into_iter().collect();
    rebuild(e, |c| c, "reroot", move |c| keep.contains(&c))
}

/// Shared rebuild: keeps call nodes for which `kept` is true, remaps
/// severity through `redirect` (dropped nodes whose redirect target is
/// also dropped lose their severity — only `reroot` does that, by
/// design).
fn rebuild(
    e: &Experiment,
    redirect: impl Fn(CallNodeId) -> CallNodeId,
    op_name: &str,
    kept: impl Fn(CallNodeId) -> bool,
) -> Experiment {
    let md = e.metadata();
    let mut new_md = Metadata::new();

    // Metric dimension and static program structure are copied verbatim.
    for m in md.metrics() {
        new_md.add_metric(m.clone());
    }
    for m in md.modules() {
        new_md.add_module(m.clone());
    }
    for r in md.regions() {
        new_md.add_region(r.clone());
    }
    for cs in md.call_sites() {
        new_md.add_call_site(cs.clone());
    }

    // Kept call nodes, in id order (parents precede children, so the
    // parent's new id is always known; a kept node whose parent was
    // dropped becomes a root).
    let mut new_ids: HashMap<CallNodeId, CallNodeId> = HashMap::new();
    for c in md.call_node_ids() {
        if !kept(c) {
            continue;
        }
        let old = md.call_node(c);
        let parent = old.parent.and_then(|p| new_ids.get(&p).copied());
        let nid = new_md.add_call_node(CallNode {
            call_site: old.call_site,
            parent,
        });
        new_ids.insert(c, nid);
    }

    // System dimension copied verbatim.
    for m in md.machines() {
        new_md.add_machine(m.clone());
    }
    for n in md.nodes() {
        new_md.add_node(n.clone());
    }
    for p in md.processes() {
        new_md.add_process(p.clone());
    }
    for t in md.threads() {
        new_md.add_thread(t.clone());
    }

    let (nm, nc, nt) = new_md.shape();
    let mut sev = Severity::zeros(nm, nc, nt);
    for (m, c, t, v) in e.severity().iter_nonzero() {
        let target = redirect(c);
        if let Some(&nid) = new_ids.get(&target) {
            sev.add(m, nid, t, v);
        }
    }

    let result = Experiment::new_unchecked(
        new_md,
        sev,
        Provenance::derived(op_name, vec![e.provenance().label()]),
    );
    crate::invariant::debug_assert_closed(&result, op_name);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::aggregate::{call_value, CallSelection, MetricSelection};
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, MetricId, RegionKind, Unit};

    /// main(1.0) -> { solve(2.0) -> inner(4.0), io(8.0) }, 1 rank.
    fn sample() -> (Experiment, [CallNodeId; 4]) {
        let mut b = ExperimentBuilder::new("cut");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let names = ["main", "solve", "inner", "io"];
        let regions: Vec<_> = (0..4)
            .map(|i| b.def_region(names[i], m, RegionKind::Function, 1, 2))
            .collect();
        let css: Vec<_> = regions
            .iter()
            .map(|&r| b.def_call_site("a", 1, r))
            .collect();
        let n_main = b.def_call_node(css[0], None);
        let n_solve = b.def_call_node(css[1], Some(n_main));
        let n_inner = b.def_call_node(css[2], Some(n_solve));
        let n_io = b.def_call_node(css[3], Some(n_main));
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, n_main, ts[0], 1.0);
        b.set_severity(t, n_solve, ts[0], 2.0);
        b.set_severity(t, n_inner, ts[0], 4.0);
        b.set_severity(t, n_io, ts[0], 8.0);
        (b.build().unwrap(), [n_main, n_solve, n_inner, n_io])
    }

    #[test]
    fn prune_collapses_subtree_preserving_total() {
        let (e, [_, n_solve, ..]) = sample();
        let time = MetricId::new(0);
        let p = prune(&e, n_solve);
        p.validate().unwrap();
        assert_eq!(p.metadata().num_call_nodes(), 3); // inner removed
        assert_eq!(p.severity().metric_sum(time), 15.0); // total preserved
                                                         // solve now carries 2 + 4.
        let solve = p
            .metadata()
            .call_node_ids()
            .find(|&c| p.metadata().region(p.metadata().call_node_callee(c)).name == "solve")
            .unwrap();
        assert_eq!(
            call_value(
                &p,
                MetricSelection::inclusive(time),
                CallSelection::exclusive(solve)
            ),
            6.0
        );
    }

    #[test]
    fn prune_at_leaf_is_severity_identity() {
        let (e, [_, _, n_inner, _]) = sample();
        let p = prune(&e, n_inner);
        assert_eq!(p.metadata().num_call_nodes(), 4);
        assert_eq!(p.severity().values(), e.severity().values());
    }

    #[test]
    fn reroot_keeps_only_subtree() {
        let (e, [_, n_solve, ..]) = sample();
        let time = MetricId::new(0);
        let r = reroot(&e, n_solve);
        r.validate().unwrap();
        assert_eq!(r.metadata().num_call_nodes(), 2);
        assert_eq!(r.metadata().call_roots().len(), 1);
        assert_eq!(r.severity().metric_sum(time), 6.0); // 2 + 4
        let root = r.metadata().call_roots()[0];
        assert_eq!(
            r.metadata()
                .region(r.metadata().call_node_callee(root))
                .name,
            "solve"
        );
    }

    #[test]
    fn reroot_at_root_preserves_everything() {
        let (e, [n_main, ..]) = sample();
        let r = reroot(&e, n_main);
        assert_eq!(r.metadata().num_call_nodes(), 4);
        assert_eq!(r.severity().values(), e.severity().values());
    }

    #[test]
    fn cut_results_compose_with_other_operators() {
        let (e, [_, n_solve, ..]) = sample();
        let p = prune(&e, n_solve);
        let d = crate::ops::diff(&e, &p);
        d.validate().unwrap();
        // Total difference is zero (prune preserves totals) but the
        // distribution over call paths changed.
        let time = MetricId::new(0);
        assert!(d.severity().metric_sum(time).abs() < 1e-12);
        assert!(d.severity().max_abs() > 0.0);
    }
}
