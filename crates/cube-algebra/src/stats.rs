//! Statistical extensions over experiments and experiment series.
//!
//! The paper's conclusion anticipates "new operators which perform data
//! reduction, for example, based on multivariate statistical
//! techniques". This module provides the natural first steps, keeping
//! the closure discipline where the result is severity-shaped:
//!
//! * [`variance`] / [`stddev`] — element-wise moments of a series,
//!   returned as full derived experiments (browse the *variability* of
//!   your runs in the same viewer);
//! * [`hotspots`] — top-k severity tuples of one metric; works on
//!   original and difference experiments alike ("mechanisms aimed at
//!   finding hotspots can be applied to the original and the difference
//!   data likewise");
//! * [`imbalance`] — per-thread distribution summary of a metric, the
//!   load-imbalance view the paper's §5.1 closes with.

use cube_model::aggregate::MetricSelection;
use cube_model::{CallNodeId, Experiment, MetricId, ThreadId};

use crate::batch::{BatchPlan, Reduction};
use crate::error::AlgebraError;
use crate::options::MergeOptions;

/// Element-wise population variance of a series, as a derived
/// experiment over the integrated metadata.
///
/// Delegates to the batch engine — one metadata integration, two
/// blocked passes (mean, then averaged squared deviations). The
/// pre-batch extend-everything implementation survives verbatim in
/// [`crate::batch::pairwise::variance`] as its differential oracle.
pub fn variance(operands: &[&Experiment]) -> Result<Experiment, AlgebraError> {
    variance_with(operands, MergeOptions::default())
}

/// [`variance`] with explicit integration switches.
pub fn variance_with(
    operands: &[&Experiment],
    options: MergeOptions,
) -> Result<Experiment, AlgebraError> {
    BatchPlan::with_options(operands, options).reduce(Reduction::Variance)
}

/// Element-wise population standard deviation of a series, as a derived
/// experiment.
pub fn stddev(operands: &[&Experiment]) -> Result<Experiment, AlgebraError> {
    stddev_with(operands, MergeOptions::default())
}

/// [`stddev`] with explicit integration switches.
pub fn stddev_with(
    operands: &[&Experiment],
    options: MergeOptions,
) -> Result<Experiment, AlgebraError> {
    BatchPlan::with_options(operands, options).reduce(Reduction::Stddev)
}

/// One severity tuple in a hotspot listing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hotspot {
    /// Call path of the hotspot.
    pub call_node: CallNodeId,
    /// Thread of the hotspot.
    pub thread: ThreadId,
    /// The (possibly negative) severity value.
    pub value: f64,
}

/// The `k` tuples of `metric` with the largest absolute severity, in
/// decreasing order of magnitude. Negative values (difference
/// experiments) rank by magnitude, so regressions surface next to
/// improvements.
pub fn hotspots(e: &Experiment, metric: MetricId, k: usize) -> Vec<Hotspot> {
    let md = e.metadata();
    let mut all: Vec<Hotspot> = Vec::new();
    for c in md.call_node_ids() {
        for (ti, &v) in e.severity().row(metric, c).iter().enumerate() {
            if v != 0.0 {
                all.push(Hotspot {
                    call_node: c,
                    thread: ThreadId::from_index(ti),
                    value: v,
                });
            }
        }
    }
    all.sort_by(|a, b| {
        b.value
            .abs()
            .partial_cmp(&a.value.abs())
            .expect("severities are never NaN")
    });
    all.truncate(k);
    all
}

/// Summary of how a metric distributes over threads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImbalanceReport {
    /// Smallest per-thread total.
    pub min: f64,
    /// Largest per-thread total.
    pub max: f64,
    /// Mean per-thread total.
    pub mean: f64,
    /// `max / mean` (1.0 = perfectly balanced); 0.0 when mean is 0.
    pub imbalance_factor: f64,
}

/// Per-thread totals of a metric selection (over all call paths) and
/// their imbalance summary.
///
/// Passing an *exclusive* selection reproduces the paper's closing
/// §5.1 view — "how execution time without MPI calls is distributed
/// across the different processes" is
/// `imbalance(e, MetricSelection::exclusive(execution))` when MPI is
/// the only child of Execution.
pub fn imbalance(e: &Experiment, selection: MetricSelection) -> ImbalanceReport {
    let md = e.metadata();
    let nt = md.num_threads();
    let mut per_thread = vec![0.0f64; nt];
    for c in md.call_node_ids() {
        for (ti, acc) in per_thread.iter_mut().enumerate() {
            *acc +=
                cube_model::aggregate::metric_value_at(e, selection, c, ThreadId::from_index(ti));
        }
    }
    let min = per_thread.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_thread.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = per_thread.iter().sum::<f64>() / nt.max(1) as f64;
    ImbalanceReport {
        min,
        max,
        mean,
        imbalance_factor: if mean != 0.0 { max / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn mk(values: &[f64]) -> Experiment {
        let mut b = ExperimentBuilder::new("s");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, values.len());
        for (&v, &tid) in values.iter().zip(&ts) {
            b.set_severity(t, root, tid, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn variance_and_stddev_of_constant_series_is_zero() {
        let a = mk(&[2.0, 2.0]);
        let v = variance(&[&a, &a, &a]).unwrap();
        v.validate().unwrap();
        assert!(v.severity().values().iter().all(|&x| x == 0.0));
        let s = stddev(&[&a, &a]).unwrap();
        assert!(s.severity().values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Values 1, 3 → mean 2, population variance 1, stddev 1.
        let a = mk(&[1.0]);
        let b = mk(&[3.0]);
        let v = variance(&[&a, &b]).unwrap();
        assert!((v.severity().values()[0] - 1.0).abs() < 1e-12);
        let s = stddev(&[&a, &b]).unwrap();
        assert!((s.severity().values()[0] - 1.0).abs() < 1e-12);
        assert!(s.provenance().is_derived());
    }

    #[test]
    fn stddev_is_a_browsable_experiment() {
        let a = mk(&[1.0, 5.0]);
        let b = mk(&[3.0, 1.0]);
        let s = stddev(&[&a, &b]).unwrap();
        s.validate().unwrap();
        // Closure: feed it back into the algebra.
        let doubled = ops::sum(&[&s, &s]).unwrap();
        doubled.validate().unwrap();
    }

    #[test]
    fn empty_series_rejected() {
        assert!(variance(&[]).is_err());
        assert!(stddev(&[]).is_err());
    }

    #[test]
    fn hotspots_rank_by_magnitude() {
        let a = mk(&[1.0, -8.0, 3.0]);
        let t = a.metadata().find_metric("time").unwrap();
        let hs = hotspots(&a, t, 2);
        assert_eq!(hs.len(), 2);
        assert_eq!(hs[0].value, -8.0); // magnitude ranking
        assert_eq!(hs[1].value, 3.0);
        // k larger than the population returns everything nonzero.
        assert_eq!(hotspots(&a, t, 99).len(), 3);
    }

    #[test]
    fn hotspots_work_on_difference_experiments() {
        let a = mk(&[5.0, 1.0]);
        let b = mk(&[1.0, 2.0]);
        let d = ops::diff(&a, &b);
        let t = d.metadata().find_metric("time").unwrap();
        let hs = hotspots(&d, t, 10);
        assert_eq!(hs[0].value, 4.0);
        assert_eq!(hs[1].value, -1.0);
    }

    #[test]
    fn imbalance_report() {
        let a = mk(&[1.0, 3.0]);
        let t = a.metadata().find_metric("time").unwrap();
        let r = imbalance(&a, MetricSelection::inclusive(t));
        assert_eq!(r.min, 1.0);
        assert_eq!(r.max, 3.0);
        assert_eq!(r.mean, 2.0);
        assert!((r.imbalance_factor - 1.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let a = mk(&[2.0, 2.0, 2.0]);
        let t = a.metadata().find_metric("time").unwrap();
        let r = imbalance(&a, MetricSelection::inclusive(t));
        assert!((r.imbalance_factor - 1.0).abs() < 1e-12);
    }
}
