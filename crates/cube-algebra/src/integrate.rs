//! Metadata integration: the structural merge phase of every operator.
//!
//! Integration folds the operands' metadata into one integrated
//! [`Metadata`] and records, for every operand, where each of its
//! entities landed ([`OperandMap`]). The merge is *top-down*: starting
//! at the roots, nodes are matched with the dimension's equality
//! relation; matched nodes become shared nodes, unmatched nodes are
//! appended together with their entire subtree (even if that subtree
//! contains nodes that would match deeper down — exactly the behavior
//! the paper prescribes).
//!
//! Equality relations:
//!
//! * **metric**: same name and unit under an already-matched parent;
//! * **call node**: call-site equality under an already-matched parent —
//!   by default only the callee region (name + module name) is compared,
//!   because line numbers may shift between code versions; a strict mode
//!   additionally compares file and line (see [`CallSiteEq`]);
//! * **system**: processes and threads are matched by application-level
//!   rank and thread number. The machine/node levels are *not* matched:
//!   depending on [`SystemMergeMode`] they are copied from the first
//!   operand or collapsed to a single machine with a single node; the
//!   default collapses exactly when the partitioning of processes into
//!   nodes is incompatible between the operands.

use std::collections::HashMap;

use cube_model::{
    CallNode, CallNodeId, CallSite, CallSiteId, Experiment, Machine, Metadata, Metric, MetricId,
    Module, ModuleId, Process, Region, RegionId, SystemNode, Thread,
};

use crate::mapping::OperandMap;
use crate::options::{CallSiteEq, MergeOptions, SystemMergeMode};

/// The result of metadata integration.
#[derive(Clone, Debug)]
pub struct Integrated {
    /// The integrated metadata.
    pub metadata: Metadata,
    /// One identifier mapping per operand, in operand order.
    pub maps: Vec<OperandMap>,
}

/// Integrates the metadata of all operands.
///
/// Always succeeds: any two valid metadata sets can be integrated. With
/// a single operand and default options the result is (structurally)
/// that operand's metadata.
pub fn integrate(operands: &[&Experiment], options: MergeOptions) -> Integrated {
    let mds: Vec<&Metadata> = operands.iter().map(|e| e.metadata()).collect();
    integrate_metadata(&mds, options)
}

/// [`integrate`] over bare [`Metadata`] references.
///
/// Integration is purely structural — severity never participates — so
/// operands that are not full [`Experiment`]s (a lazy columnar handle,
/// a metadata-only probe) integrate through this entry point. The
/// batch engine's [`crate::batch::BatchOperand`] sources route here.
pub fn integrate_metadata(operands: &[&Metadata], options: MergeOptions) -> Integrated {
    // Fast path: all metadata identical, and no forced collapse that
    // would restructure the system dimension.
    if !operands.is_empty() {
        let first = operands[0];
        let all_equal = operands.iter().all(|md| *md == first);
        let collapse_is_noop = options.system_mode != SystemMergeMode::Collapse
            || (first.machines().len() <= 1 && first.nodes().len() <= 1);
        if all_equal && collapse_is_noop {
            let (nm, nc, nt) = first.shape();
            return Integrated {
                metadata: first.clone(),
                maps: operands
                    .iter()
                    .map(|_| OperandMap::identity(nm, nc, nt))
                    .collect(),
            };
        }
    }

    let mut md = Metadata::new();
    let mut maps: Vec<OperandMap> = Vec::with_capacity(operands.len());

    // ---- metric and program dimensions: top-down structural merge ----
    for src in operands {
        let map = OperandMap {
            metrics: merge_metric_forest(&mut md, src),
            call_nodes: merge_call_forest(&mut md, src, options.call_site_eq),
            ..OperandMap::default()
        };
        maps.push(map);
    }

    // ---- system dimension ----
    let thread_keys = build_system(&mut md, operands, options.system_mode);
    // Topologies: copy the first operand's topologies, remapping each
    // placement onto the integrated process table via the rank (the
    // system equality key). Later operands' topologies are ignored —
    // the same first-wins rule the merge operator uses for metrics.
    if let Some(src) = operands.first() {
        for topo in src.topologies() {
            let mut copy = cube_model::CartTopology::new(
                topo.name.clone(),
                topo.dims.clone(),
                topo.periodic.clone(),
            );
            for (p, c) in &topo.coords {
                let rank = src.process(*p).rank;
                if let Some(new_p) = md.find_process_by_rank(rank) {
                    copy.coords.push((new_p, c.clone()));
                }
            }
            md.add_topology(copy);
        }
    }
    for (src, map) in operands.iter().zip(maps.iter_mut()) {
        map.threads = src
            .threads()
            .iter()
            .map(|t| {
                let rank = src.process(t.process).rank;
                *thread_keys
                    .get(&(rank, t.number))
                    .expect("every operand thread is present in the integrated system")
            })
            .collect();
    }

    Integrated { metadata: md, maps }
}

// ---------------------------------------------------------------------------
// Metric dimension
// ---------------------------------------------------------------------------

fn merge_metric_forest(md: &mut Metadata, src: &Metadata) -> Vec<MetricId> {
    let mut map = vec![MetricId::new(0); src.num_metrics()];
    for &root in src.metric_roots() {
        merge_metric_node(md, src, root, None, &mut map);
    }
    map
}

fn merge_metric_node(
    md: &mut Metadata,
    src: &Metadata,
    sid: MetricId,
    new_parent: Option<MetricId>,
    map: &mut [MetricId],
) {
    let sm = src.metric(sid);
    let candidates: &[MetricId] = match new_parent {
        Some(p) => md.metric_children(p),
        None => md.metric_roots(),
    };
    let found = candidates
        .iter()
        .copied()
        .find(|&c| md.metric(c).name == sm.name && md.metric(c).unit == sm.unit);
    let nid = match found {
        Some(nid) => nid,
        None => md.add_metric(Metric {
            name: sm.name.clone(),
            unit: sm.unit,
            description: sm.description.clone(),
            parent: new_parent,
        }),
    };
    map[sid.index()] = nid;
    // When `sid` was appended as a new node, its children cannot match
    // anything (the new node has no children yet), so the same recursion
    // appends the whole subtree — the paper's subtree rule for free.
    for &child in src.metric_children(sid) {
        merge_metric_node(md, src, child, Some(nid), map);
    }
}

// ---------------------------------------------------------------------------
// Program dimension
// ---------------------------------------------------------------------------

fn region_eq(md: &Metadata, nid: RegionId, src: &Metadata, sid: RegionId) -> bool {
    let nr = md.region(nid);
    let sr = src.region(sid);
    nr.name == sr.name && md.module(nr.module).name == src.module(sr.module).name
}

fn call_node_eq(
    md: &Metadata,
    nid: CallNodeId,
    src: &Metadata,
    sid: CallNodeId,
    eq: CallSiteEq,
) -> bool {
    let ncs = md.call_site(md.call_node(nid).call_site);
    let scs = src.call_site(src.call_node(sid).call_site);
    let callee_eq = region_eq(md, ncs.callee, src, scs.callee);
    match eq {
        CallSiteEq::CalleeOnly => callee_eq,
        CallSiteEq::Strict => callee_eq && ncs.file == scs.file && ncs.line == scs.line,
    }
}

fn map_module(md: &mut Metadata, src: &Metadata, sid: ModuleId) -> ModuleId {
    let sm = src.module(sid);
    match md.find_module(&sm.name) {
        Some(existing) => existing,
        None => md.add_module(Module::new(sm.name.clone(), sm.path.clone())),
    }
}

fn map_region(md: &mut Metadata, src: &Metadata, sid: RegionId) -> RegionId {
    for i in 0..md.regions().len() {
        let nid = RegionId::from_index(i);
        if region_eq(md, nid, src, sid) {
            return nid;
        }
    }
    let sr = src.region(sid).clone();
    let module = map_module(md, src, sr.module);
    md.add_region(Region {
        name: sr.name,
        module,
        kind: sr.kind,
        begin_line: sr.begin_line,
        end_line: sr.end_line,
    })
}

fn map_call_site(md: &mut Metadata, src: &Metadata, sid: CallSiteId, eq: CallSiteEq) -> CallSiteId {
    let scs = src.call_site(sid);
    for i in 0..md.call_sites().len() {
        let nid = CallSiteId::from_index(i);
        let ncs = md.call_site(nid);
        let callee_eq = region_eq(md, ncs.callee, src, scs.callee);
        let equal = match eq {
            CallSiteEq::CalleeOnly => callee_eq,
            CallSiteEq::Strict => callee_eq && ncs.file == scs.file && ncs.line == scs.line,
        };
        if equal {
            return nid;
        }
    }
    let callee = map_region(md, src, scs.callee);
    let (file, line) = (scs.file.clone(), scs.line);
    md.add_call_site(CallSite { file, line, callee })
}

fn merge_call_forest(md: &mut Metadata, src: &Metadata, eq: CallSiteEq) -> Vec<CallNodeId> {
    let mut map = vec![CallNodeId::new(0); src.num_call_nodes()];
    for &root in src.call_roots() {
        merge_call_node(md, src, root, None, eq, &mut map);
    }
    map
}

fn merge_call_node(
    md: &mut Metadata,
    src: &Metadata,
    sid: CallNodeId,
    new_parent: Option<CallNodeId>,
    eq: CallSiteEq,
    map: &mut [CallNodeId],
) {
    let candidates: Vec<CallNodeId> = match new_parent {
        Some(p) => md.call_node_children(p).to_vec(),
        None => md.call_roots().to_vec(),
    };
    let found = candidates
        .into_iter()
        .find(|&c| call_node_eq(md, c, src, sid, eq));
    let nid = match found {
        Some(nid) => nid,
        None => {
            let call_site = map_call_site(md, src, src.call_node(sid).call_site, eq);
            md.add_call_node(CallNode {
                call_site,
                parent: new_parent,
            })
        }
    };
    map[sid.index()] = nid;
    for &child in src.call_node_children(sid).to_vec().iter() {
        merge_call_node(md, src, child, Some(nid), eq, map);
    }
}

// ---------------------------------------------------------------------------
// System dimension
// ---------------------------------------------------------------------------

/// Builds the integrated system dimension and returns the lookup table
/// `(rank, thread number) → integrated thread id`.
fn build_system(
    md: &mut Metadata,
    operands: &[&Metadata],
    mode: SystemMergeMode,
) -> HashMap<(i32, u32), cube_model::ThreadId> {
    let collapse = match mode {
        SystemMergeMode::Collapse => true,
        SystemMergeMode::CopyFirst => false,
        SystemMergeMode::Auto => !partitions_compatible(operands),
    };

    // Union of processes: rank → (name, node index in first operand that
    // defines the rank), in deterministic order.
    struct ProcInfo {
        rank: i32,
        name: String,
        node_index: usize,
        /// thread number → name, ordered by number.
        threads: Vec<(u32, String)>,
    }
    let mut order: Vec<i32> = Vec::new();
    let mut procs: HashMap<i32, ProcInfo> = HashMap::new();
    for src in operands {
        for (pi, p) in src.processes().iter().enumerate() {
            let info = procs.entry(p.rank).or_insert_with(|| {
                order.push(p.rank);
                ProcInfo {
                    rank: p.rank,
                    name: p.name.clone(),
                    node_index: src.processes()[pi].node.index(),
                    threads: Vec::new(),
                }
            });
            for &tid in src.threads_of_process(cube_model::ProcessId::from_index(pi)) {
                let t = src.thread(tid);
                if !info.threads.iter().any(|(n, _)| *n == t.number) {
                    info.threads.push((t.number, t.name.clone()));
                }
            }
        }
    }
    for info in procs.values_mut() {
        info.threads.sort_by_key(|(n, _)| *n);
    }

    // Process order: first operand's order, then ranks first seen in
    // later operands — `order` already records first-seen order. Under
    // collapse, sort by rank for a fully canonical result.
    if collapse {
        order.sort_unstable();
    }

    let mut keys = HashMap::new();
    if collapse {
        let mach = md.add_machine(Machine::new("virtual machine"));
        let node = md.add_node(SystemNode::new("virtual node", mach));
        for rank in order {
            let info = &procs[&rank];
            let pid = md.add_process(Process::new(info.name.clone(), info.rank, node));
            for (num, name) in &info.threads {
                let tid = md.add_thread(Thread::new(name.clone(), *num, pid));
                keys.insert((rank, *num), tid);
            }
        }
    } else {
        // Copy the first operand's machine/node hierarchy.
        let first = operands[0];
        for m in first.machines() {
            md.add_machine(Machine::new(m.name.clone()));
        }
        for n in first.nodes() {
            md.add_node(SystemNode::new(n.name.clone(), n.machine));
        }
        if md.machines().is_empty() {
            // First operand had an empty system (degenerate); fall back to
            // a virtual hierarchy so later operands' processes have a home.
            let mach = md.add_machine(Machine::new("virtual machine"));
            md.add_node(SystemNode::new("virtual node", mach));
        }
        let num_nodes = md.nodes().len();
        for rank in order {
            let info = &procs[&rank];
            let node_index = info.node_index.min(num_nodes - 1);
            let pid = md.add_process(Process::new(
                info.name.clone(),
                info.rank,
                cube_model::NodeId::from_index(node_index),
            ));
            for (num, name) in &info.threads {
                let tid = md.add_thread(Thread::new(name.clone(), *num, pid));
                keys.insert((rank, *num), tid);
            }
        }
    }
    keys
}

/// Whether all operands agree on the machine/node structure and on the
/// placement of common ranks, so that copying the first operand's
/// hierarchy is faithful for every operand.
fn partitions_compatible(operands: &[&Metadata]) -> bool {
    let Some((f, rest)) = operands.split_first() else {
        return true;
    };
    let f_machines: Vec<&str> = f.machines().iter().map(|m| m.name.as_str()).collect();
    let f_nodes: Vec<(&str, usize)> = f
        .nodes()
        .iter()
        .map(|n| (n.name.as_str(), n.machine.index()))
        .collect();
    let f_rank_node: HashMap<i32, usize> = f
        .processes()
        .iter()
        .map(|p| (p.rank, p.node.index()))
        .collect();
    for o in rest {
        let o_machines: Vec<&str> = o.machines().iter().map(|m| m.name.as_str()).collect();
        let o_nodes: Vec<(&str, usize)> = o
            .nodes()
            .iter()
            .map(|n| (n.name.as_str(), n.machine.index()))
            .collect();
        if o_machines != f_machines || o_nodes != f_nodes {
            return false;
        }
        for p in o.processes() {
            if let Some(&fnode) = f_rank_node.get(&p.rank) {
                if fnode != p.node.index() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn base_builder(name: &str) -> ExperimentBuilder {
        ExperimentBuilder::new(name)
    }

    /// Experiment with metrics time>mpi, call tree main>solve, 2 ranks.
    fn exp_a() -> Experiment {
        let mut b = base_builder("a");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        b.def_metric("mpi", Unit::Seconds, "", Some(time));
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 99);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 10, 50);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 20, solve_r);
        let root = b.def_call_node(cs0, None);
        b.def_call_node(cs1, Some(root));
        single_threaded_system(&mut b, 2);
        b.build().unwrap()
    }

    /// Same program, but extra metric `flops`, extra call path `io`,
    /// and 3 ranks.
    fn exp_b() -> Experiment {
        let mut b = base_builder("b");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        b.def_metric("mpi", Unit::Seconds, "", Some(time));
        b.def_metric("flops", Unit::Occurrences, "", None);
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 99);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 10, 50);
        let io_r = b.def_region("io", m, RegionKind::Function, 60, 70);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 21, solve_r); // different line!
        let cs2 = b.def_call_site("a.c", 65, io_r);
        let root = b.def_call_node(cs0, None);
        b.def_call_node(cs1, Some(root));
        b.def_call_node(cs2, Some(root));
        single_threaded_system(&mut b, 3);
        b.build().unwrap()
    }

    #[test]
    fn identical_metadata_takes_fast_path() {
        let a = exp_a();
        let b = exp_a();
        let integrated = integrate(&[&a, &b], MergeOptions::default());
        assert_eq!(&integrated.metadata, a.metadata());
        assert!(integrated.maps.iter().all(|m| m.is_identity()));
    }

    #[test]
    fn single_operand_roundtrips() {
        let a = exp_a();
        let integrated = integrate(&[&a], MergeOptions::default());
        assert_eq!(&integrated.metadata, a.metadata());
        assert!(integrated.maps[0].is_identity());
    }

    #[test]
    fn metric_union_shares_common_metrics() {
        let a = exp_a();
        let b = exp_b();
        let i = integrate(&[&a, &b], MergeOptions::default());
        // time, mpi shared; flops appended → 3 metrics.
        assert_eq!(i.metadata.num_metrics(), 3);
        assert_eq!(i.maps[0].metrics.len(), 2);
        assert_eq!(i.maps[1].metrics.len(), 3);
        // Shared ids agree.
        assert_eq!(i.maps[0].metrics[0], i.maps[1].metrics[0]);
        assert_eq!(i.maps[0].metrics[1], i.maps[1].metrics[1]);
        i.metadata.validate().unwrap();
    }

    #[test]
    fn call_tree_union_with_callee_only_equality() {
        let a = exp_a();
        let b = exp_b();
        let i = integrate(&[&a, &b], MergeOptions::default());
        // main and solve shared (despite differing call-site lines),
        // io appended → 3 cnodes.
        assert_eq!(i.metadata.num_call_nodes(), 3);
        assert_eq!(i.maps[0].call_nodes[1], i.maps[1].call_nodes[1]);
    }

    #[test]
    fn strict_call_site_equality_separates_moved_lines() {
        let a = exp_a();
        let b = exp_b();
        let i = integrate(
            &[&a, &b],
            MergeOptions::default().with_call_site_eq(CallSiteEq::Strict),
        );
        // solve called from line 20 vs 21 → two distinct call paths now.
        assert_eq!(i.metadata.num_call_nodes(), 4);
        assert_ne!(i.maps[0].call_nodes[1], i.maps[1].call_nodes[1]);
        i.metadata.validate().unwrap();
    }

    #[test]
    fn system_union_matches_ranks() {
        let a = exp_a();
        let b = exp_b();
        let i = integrate(&[&a, &b], MergeOptions::default());
        assert_eq!(i.metadata.processes().len(), 3);
        assert_eq!(i.metadata.num_threads(), 3);
        // rank 0 and 1 shared between operands.
        assert_eq!(i.maps[0].threads[0], i.maps[1].threads[0]);
        assert_eq!(i.maps[0].threads[1], i.maps[1].threads[1]);
        i.metadata.validate().unwrap();
    }

    #[test]
    fn incompatible_partitions_collapse_by_default() {
        // Build b with two nodes (different partitioning).
        let a = exp_a();
        let mut bb = base_builder("two-node");
        bb.def_metric("time", Unit::Seconds, "", None);
        let m = bb.def_module("a.c", "/a.c");
        let main_r = bb.def_region("main", m, RegionKind::Function, 1, 99);
        let cs0 = bb.def_call_site("a.c", 1, main_r);
        bb.def_call_node(cs0, None);
        let mach = bb.def_machine("cluster");
        let n0 = bb.def_node("node0", mach);
        let n1 = bb.def_node("node1", mach);
        let p0 = bb.def_process("rank 0", 0, n0);
        let p1 = bb.def_process("rank 1", 1, n1);
        bb.def_thread("t", 0, p0);
        bb.def_thread("t", 0, p1);
        let b = bb.build().unwrap();

        let i = integrate(&[&a, &b], MergeOptions::default());
        assert_eq!(i.metadata.machines().len(), 1);
        assert_eq!(i.metadata.nodes().len(), 1);
        assert_eq!(
            i.metadata.machine(cube_model::MachineId::new(0)).name,
            "virtual machine"
        );
        assert_eq!(i.metadata.processes().len(), 2);
        i.metadata.validate().unwrap();
    }

    #[test]
    fn copy_first_keeps_hierarchy() {
        let a = exp_a();
        let b = exp_b();
        let i = integrate(
            &[&a, &b],
            MergeOptions::default().with_system_mode(SystemMergeMode::CopyFirst),
        );
        // exp_a's hierarchy: 1 machine, 1 node named "virtual node".
        assert_eq!(i.metadata.machines().len(), 1);
        assert_eq!(i.metadata.nodes().len(), 1);
        assert_eq!(i.metadata.processes().len(), 3);
        i.metadata.validate().unwrap();
    }

    #[test]
    fn compatible_partitions_copy_under_auto() {
        let a = exp_a();
        let b = exp_b();
        // Both use single_threaded_system → same machine/node names and
        // placements → compatible → copy (not collapse). The copied node
        // keeps exp_a's name.
        let i = integrate(&[&a, &b], MergeOptions::default());
        assert_eq!(i.metadata.nodes()[0].name, "virtual node");
        assert_eq!(i.metadata.machines().len(), 1);
    }

    #[test]
    fn mismatched_subtrees_duplicate_whole_subtree() {
        // a: root X with child C; b: root Y with child C. Roots differ →
        // C appears twice (once under each root), per the paper's rule.
        fn mk(root_name: &str) -> Experiment {
            let mut b = ExperimentBuilder::new(root_name);
            b.def_metric("time", Unit::Seconds, "", None);
            let m = b.def_module("a.c", "/a.c");
            let root_r = b.def_region(root_name, m, RegionKind::Function, 1, 99);
            let c_r = b.def_region("C", m, RegionKind::Function, 10, 20);
            let cs0 = b.def_call_site("a.c", 1, root_r);
            let cs1 = b.def_call_site("a.c", 15, c_r);
            let root = b.def_call_node(cs0, None);
            b.def_call_node(cs1, Some(root));
            single_threaded_system(&mut b, 1);
            b.build().unwrap()
        }
        let a = mk("X");
        let b = mk("Y");
        let i = integrate(&[&a, &b], MergeOptions::default());
        assert_eq!(i.metadata.num_call_nodes(), 4);
        assert_ne!(i.maps[0].call_nodes[1], i.maps[1].call_nodes[1]);
        i.metadata.validate().unwrap();
    }

    #[test]
    fn same_name_different_unit_not_matched() {
        fn mk(unit: Unit) -> Experiment {
            let mut b = ExperimentBuilder::new("u");
            b.def_metric("x", unit, "", None);
            let m = b.def_module("a", "a");
            let r = b.def_region("main", m, RegionKind::Function, 1, 1);
            let cs = b.def_call_site("a", 1, r);
            b.def_call_node(cs, None);
            single_threaded_system(&mut b, 1);
            b.build().unwrap()
        }
        let a = mk(Unit::Seconds);
        let b = mk(Unit::Bytes);
        let i = integrate(&[&a, &b], MergeOptions::default());
        assert_eq!(i.metadata.num_metrics(), 2);
    }

    #[test]
    fn openmp_threads_matched_by_number() {
        fn mk(nthreads: u32) -> Experiment {
            let mut b = ExperimentBuilder::new("omp");
            b.def_metric("time", Unit::Seconds, "", None);
            let m = b.def_module("a", "a");
            let r = b.def_region("main", m, RegionKind::Function, 1, 1);
            let cs = b.def_call_site("a", 1, r);
            b.def_call_node(cs, None);
            let mach = b.def_machine("mach");
            let node = b.def_node("n0", mach);
            let p = b.def_process("rank 0", 0, node);
            for i in 0..nthreads {
                b.def_thread(format!("t{i}"), i, p);
            }
            b.build().unwrap()
        }
        let a = mk(2);
        let b = mk(4);
        let i = integrate(&[&a, &b], MergeOptions::default());
        assert_eq!(i.metadata.num_threads(), 4);
        assert_eq!(i.maps[0].threads.len(), 2);
        assert_eq!(i.maps[0].threads[1], i.maps[1].threads[1]);
    }
}
