//! Debug-build postcondition: every experiment an operator constructs
//! must lint clean of errors.
//!
//! The paper's closure property says the algebra maps valid experiments
//! to valid experiments. Operators rely on it by calling
//! `Experiment::new_unchecked` — this module is the machine check
//! backing that trust: in debug builds (tests, CI) each constructed
//! result is run through the full rule engine of [`cube_model::lint`]
//! and the process aborts with the offending diagnostics if the closure
//! is violated. Release builds compile the check away.

use cube_model::Experiment;

/// Asserts (debug builds only) that `exp`, just produced by `op`, has
/// no error-level lint findings.
///
/// `E016 SeverityNan` is exempt: NaN severities only appear in an
/// operator's output when an *input* already carried NaN (the
/// documented poisoning policy of sum/mean/variance) — operators never
/// introduce NaN from valid inputs, so the closure statement is
/// conditional on NaN-free operands. Warnings are also not asserted:
/// they flag suspicious measurements (e.g. an unreferenced region) that
/// operators legitimately propagate from their inputs.
#[inline]
pub(crate) fn debug_assert_closed(exp: &Experiment, op: &str) {
    #[cfg(debug_assertions)]
    {
        use cube_model::RuleCode;
        let violations: Vec<String> = exp
            .lint()
            .errors()
            .filter(|d| d.code != RuleCode::SeverityNan)
            .map(|d| d.to_string())
            .collect();
        assert!(
            violations.is_empty(),
            "closure violated: operator '{op}' produced an invalid experiment:\n{}",
            violations.join("\n")
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (exp, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn build_one() -> Experiment {
        let mut b = ExperimentBuilder::new("x");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "/a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 2);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let mach = b.def_machine("m");
        let node = b.def_node("n", mach);
        let p = b.def_process("p", 0, node);
        let t = b.def_thread("t", 0, p);
        b.set_severity(time, root, t, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn valid_experiment_passes() {
        debug_assert_closed(&build_one(), "test");
    }

    #[test]
    fn nan_is_exempt() {
        let mut e = build_one();
        e.severity_mut().values_mut()[0] = f64::NAN;
        // Must not panic: NaN poisoning is the documented policy.
        debug_assert_closed(&e, "test");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "closure violated")]
    fn invalid_experiment_panics() {
        let e = Experiment::new_unchecked(
            cube_model::Metadata::new(),
            cube_model::Severity::zeros(0, 0, 0),
            cube_model::Provenance::default(),
        );
        debug_assert_closed(&e, "test");
    }
}
