//! Switches controlling metadata integration.
//!
//! The paper: "The focus of CUBE is to provide automatic merging
//! mechanisms that follow simple rules and create predictable results
//! without requiring manual intervention. As the default behavior might
//! not satisfy the user in all possible situations, switches have been
//! included to change the default according to a user's needs."

/// Equality relation used when matching call-tree nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CallSiteEq {
    /// Two call sites are equal when their callee regions are equal
    /// (region name + module name). This is the default because call-site
    /// attributes such as line numbers can change across code versions
    /// while still referring to the "same" call site.
    #[default]
    CalleeOnly,
    /// Two call sites are equal when callee, file, *and* line agree.
    /// Useful when the same callee is invoked from several sites that
    /// must stay distinct.
    Strict,
}

/// How the machine/node levels of the system dimension are integrated.
///
/// Processes and threads are always matched by their application-level
/// identifiers (global MPI rank, thread number). The *upper* levels are
/// not matched; they are either copied from the first operand or
/// collapsed to a single machine with a single node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SystemMergeMode {
    /// Copy the first operand's machine/node hierarchy when the
    /// partitioning of processes into nodes is compatible among the
    /// operands; collapse otherwise. This is the paper's default.
    #[default]
    Auto,
    /// Always collapse to a single machine and a single node.
    Collapse,
    /// Always copy the first operand's hierarchy. Processes that only
    /// exist in later operands are placed on their operand's node index
    /// when that index exists in the copied hierarchy, and on the last
    /// node otherwise.
    CopyFirst,
}

/// What to do when an operand of a k-ary evaluation cannot be used —
/// unreadable file, failed parse, or salvage-only recovery the caller
/// refuses to trust.
///
/// §5.2's workflow merges many independent runs; with `KeepGoing` one
/// truncated operand out of k degrades the result instead of aborting
/// it: the reduction runs over the survivors (renormalizing `mean`)
/// and the failures are reported per operand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Any broken operand fails the whole evaluation. The default.
    #[default]
    Abort,
    /// Skip broken operands, evaluate over the survivors, and report
    /// the skipped ones.
    KeepGoing,
}

/// All integration switches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeOptions {
    /// Call-site equality relation.
    pub call_site_eq: CallSiteEq,
    /// Machine/node integration mode.
    pub system_mode: SystemMergeMode,
}

impl MergeOptions {
    /// The paper's defaults: callee-only call-site equality, automatic
    /// copy-or-collapse system integration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style call-site equality override.
    pub fn with_call_site_eq(mut self, eq: CallSiteEq) -> Self {
        self.call_site_eq = eq;
        self
    }

    /// Builder-style system-mode override.
    pub fn with_system_mode(mut self, mode: SystemMergeMode) -> Self {
        self.system_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = MergeOptions::new();
        assert_eq!(o.call_site_eq, CallSiteEq::CalleeOnly);
        assert_eq!(o.system_mode, SystemMergeMode::Auto);
    }

    #[test]
    fn builder_overrides() {
        let o = MergeOptions::new()
            .with_call_site_eq(CallSiteEq::Strict)
            .with_system_mode(SystemMergeMode::Collapse);
        assert_eq!(o.call_site_eq, CallSiteEq::Strict);
        assert_eq!(o.system_mode, SystemMergeMode::Collapse);
    }
}
