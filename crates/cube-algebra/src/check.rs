//! Static semantic analysis of algebra expressions — `cube check`.
//!
//! The algebra is *closed*: every operator yields a full experiment, so
//! the shape of an expression's result is determined by operand
//! **metadata alone**. That lets a whole expression tree be validated
//! before a single severity value is read — against lazy metadata-only
//! opens of `.cubec` stores, no severity pages touched. This module is
//! that validator: it takes a parsed [`Expr`] plus per-operand
//! [`OperandFacts`] and produces stable-coded diagnostics with byte
//! offsets into the source expression, a semantics-preserving rewrite
//! of the tree, and a per-plan cost estimate.
//!
//! # Diagnostic codes
//!
//! Codes are stable (pinned by the golden corpus in
//! `tests/fixtures/check/`) and documented in `docs/CHECK.md`:
//!
//! | code | level | meaning |
//! |---|---|---|
//! | `A001` | error | unresolved operand: no experiment behind the name |
//! | `A002` | error | empty reduction (programmatic trees only) |
//! | `A003` | error | operand index out of range (programmatic trees only) |
//! | `A004` | warning | duplicate operand skews a non-idempotent reduction |
//! | `A005` | warning | dead operand: provided but never referenced |
//! | `A006` | warning | operands share no metrics (pure zero-extension) |
//! | `A007` | warning | thread-topology mismatch between operands |
//! | `A008` | warning | statically zero result: `diff` of identical subtrees |
//! | `A009` | warning | degenerate statistic: `variance`/`stddev` of one operand |
//! | `A010` | warning | identity operation: single-operand reduction, `scale(e,1)` |
//! | `A011` | warning | removable duplicate in an idempotent `min`/`max` |
//! | `A012` | warning | `scale` by 0 zeroes every finite value |
//!
//! Errors mean evaluation cannot produce a meaningful result and the
//! server's `/eval` pre-flight refuses the request; warnings are
//! advisory (deniable with `--deny warnings`, mirroring `cube lint`).
//!
//! # The rewrite pass
//!
//! [`rewrite`] canonicalizes and constant-folds the tree with rules
//! that preserve the evaluated severity values *bit for bit* on finite
//! data (the property pinned by `check_props.rs` across thread
//! counts): `scale(e,1)` → `e`, duplicate operands removed from
//! idempotent `min`/`max` lists, single-operand `mean`/`sum`/`min`/
//! `max` → the operand itself, `diff(X,X)` and single-operand
//! `variance`/`stddev` → the zero experiment ([`Expr::Zero`], with
//! `zero` provenance). Provenance labels follow the rewritten tree;
//! only the severity values and metadata are preserved exactly.

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

use crate::batch::{Expr, Reduction};
use crate::parse::{render_expr, ParsedExpr, Span, SpanNode};
use cube_model::{Metadata, Unit};

/// Severity values per `.cubec` store page (32 KiB of `f64`), the
/// granularity of [`CostEstimate::pages`]. Matches the columnar
/// store's chunk size (`docs/STORE.md`).
pub const PAGE_VALUES: u64 = 4096;

/// Severity of one diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckLevel {
    /// Evaluation cannot produce a meaningful result.
    Error,
    /// Legal but almost certainly not what was meant.
    Warning,
}

impl CheckLevel {
    /// The lowercase wire name (`"error"` / `"warning"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warning => "warning",
        }
    }
}

impl fmt::Display for CheckLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: stable code, severity, byte span into the source
/// expression, human message.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckDiagnostic {
    /// Stable code `A001`–`A012` (module table).
    pub code: &'static str,
    /// Error or warning.
    pub level: CheckLevel,
    /// Byte offset of the offending token in the source expression
    /// (0 for findings without a source anchor, e.g. dead operands).
    pub offset: usize,
    /// Length of the offending token in bytes (0 when unanchored).
    pub len: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CheckDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @{}: {}",
            self.code, self.level, self.offset, self.message
        )
    }
}

/// What the analyzer knows about one operand: its name as written in
/// the expression, and its metadata if the name resolved to an
/// experiment. **Metadata only** — severity is never consulted, so a
/// lazy `.cubec` open ([`ColumnarExperiment::metadata`]) is the
/// intended source and no severity pages are touched.
///
/// [`ColumnarExperiment::metadata`]: ../../cube_store/struct.ColumnarExperiment.html#method.metadata
#[derive(Clone, Debug)]
pub struct OperandFacts<'a> {
    /// The operand name the expression uses.
    pub name: String,
    /// Metadata of the resolved experiment; `None` if the name did not
    /// resolve (missing file, unknown repository id, unreadable input).
    pub metadata: Option<&'a Metadata>,
    /// Optional detail for `A001` messages (why resolution failed).
    pub note: Option<String>,
}

impl<'a> OperandFacts<'a> {
    /// Facts for a resolved operand.
    pub fn known(name: impl Into<String>, metadata: &'a Metadata) -> Self {
        Self {
            name: name.into(),
            metadata: Some(metadata),
            note: None,
        }
    }

    /// Facts for an operand that did not resolve, with the reason.
    pub fn unknown(name: impl Into<String>, note: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            metadata: None,
            note: Some(note.into()),
        }
    }
}

/// One applied rewrite rule.
#[derive(Clone, Debug, PartialEq)]
pub struct RewriteNote {
    /// Stable rule name (`zero-diff`, `scale-identity`, ...).
    pub rule: &'static str,
    /// What was rewritten, in terms of the canonical text.
    pub detail: String,
}

/// Static cost estimate for evaluating the expression: what a plan
/// over these operands will read and reuse, from metadata alone.
#[derive(Clone, Debug, PartialEq)]
pub struct CostEstimate {
    /// Distinct operands the expression references.
    pub operands: usize,
    /// How many of those resolved to metadata.
    pub known: usize,
    /// Expression tree nodes.
    pub nodes: usize,
    /// Reduction nodes (each is one blocked severity pass).
    pub reductions: usize,
    /// Total severity values across resolved operands.
    pub values: u64,
    /// Total severity bytes (`values × 8`).
    pub bytes: u64,
    /// `.cubec` pages evaluation must read (per-operand
    /// `ceil(values / `[`PAGE_VALUES`]`)`, summed).
    pub pages: u64,
    /// Gather-table reuse key: plans are cached per operand list, so
    /// two expressions with equal keys share one metadata integration.
    pub plan_key: String,
    /// Shape of the fused kernel program ([`crate::kernel`]) the
    /// evaluator runs for this tree when every operand is gather-free:
    /// `None` when the tree does not compile (an error-level finding
    /// explains why).
    pub fused: Option<FusedCost>,
}

/// Static shape of a fused kernel program: with fusion on, the
/// [`CostEstimate::reductions`]-many blocked severity passes collapse
/// into **one** traversal running this program per element.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedCost {
    /// Program steps per element.
    pub instrs: usize,
    /// Virtual registers (peak live values per element).
    pub regs: usize,
    /// Distinct operand streams loaded — repeated references are
    /// deduplicated, so this may be fewer than the operand mentions.
    pub loads: usize,
}

/// The analyzer's output: diagnostics, the rewritten tree with its
/// notes, and the cost estimate. Rendered identically by the CLI and
/// the server via [`CheckReport::to_json`].
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Findings in source order (offset-ascending).
    pub diagnostics: Vec<CheckDiagnostic>,
    /// The canonical text of the input expression.
    pub canonical: String,
    /// The rewritten tree ([`rewrite`] applied).
    pub rewritten: Expr,
    /// Canonical text of [`CheckReport::rewritten`].
    pub rewritten_text: String,
    /// Which rewrite rules fired, in application order.
    pub rewrites: Vec<RewriteNote>,
    /// Evaluation cost estimate.
    pub cost: CostEstimate,
}

impl CheckReport {
    /// Number of error-level findings.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == CheckLevel::Error)
            .count()
    }

    /// Number of warning-level findings.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == CheckLevel::Warning)
            .count()
    }

    /// Whether the expression is statically sound (no errors).
    pub fn ok(&self) -> bool {
        self.num_errors() == 0
    }

    /// Whether the report fails under the given deny policy, mirroring
    /// `cube lint`: errors always deny, warnings only under
    /// `--deny warnings`.
    pub fn denied(&self, deny_warnings: bool) -> bool {
        self.num_errors() > 0 || (deny_warnings && self.num_warnings() > 0)
    }

    /// The first error-level finding, if any (what `/eval` pre-flight
    /// reports).
    pub fn first_error(&self) -> Option<&CheckDiagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.level == CheckLevel::Error)
    }

    /// Renders the diagnostics as a JSON array fragment
    /// (`[{"code":...},...]`) — the shared piece of [`Self::to_json`]
    /// and the server's structured `/eval` rejections.
    pub fn diagnostics_json(&self) -> String {
        let mut s = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"code\":\"{}\",\"level\":\"{}\",\"offset\":{},\"len\":{},\"message\":{}}}",
                d.code,
                d.level,
                d.offset,
                d.len,
                json_str(&d.message)
            );
        }
        s.push(']');
        s
    }

    /// Renders the whole report as one JSON object. The CLI
    /// (`cube check --format json`) and the server (`POST /check`)
    /// both emit exactly this, so their diagnostics are byte-identical
    /// for the same expression and operand facts.
    pub fn to_json(&self, source: &str) -> String {
        let mut s = format!(
            "{{\"expr\":{},\"canonical\":{},\"rewritten\":{},\"diagnostics\":{}",
            json_str(source),
            json_str(&self.canonical),
            json_str(&self.rewritten_text),
            self.diagnostics_json(),
        );
        let _ = write!(
            s,
            ",\"errors\":{},\"warnings\":{},\"ok\":{},\"rewrites\":[",
            self.num_errors(),
            self.num_warnings(),
            self.ok()
        );
        for (i, n) in self.rewrites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":\"{}\",\"detail\":{}}}",
                n.rule,
                json_str(&n.detail)
            );
        }
        let c = &self.cost;
        let _ = write!(
            s,
            "],\"cost\":{{\"operands\":{},\"known\":{},\"nodes\":{},\"reductions\":{},\
             \"values\":{},\"bytes\":{},\"pages\":{},\"plan_key\":{},\"fused\":",
            c.operands,
            c.known,
            c.nodes,
            c.reductions,
            c.values,
            c.bytes,
            c.pages,
            json_str(&c.plan_key)
        );
        match &c.fused {
            Some(f) => {
                let _ = write!(
                    s,
                    "{{\"instrs\":{},\"regs\":{},\"loads\":{}}}",
                    f.instrs, f.regs, f.loads
                );
            }
            None => s.push_str("null"),
        }
        s.push_str("}}");
        s
    }
}

/// JSON string literal with the escapes the grammar requires. Local
/// copy so the analyzer's wire rendering has no service dependency.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Checks a parsed expression against operand facts.
///
/// `facts` is the operand environment: entries are matched to
/// [`ParsedExpr::operands`] by name. Expression operands without a
/// matching resolved fact get `A001`; facts never referenced by the
/// expression get `A005` (dead operand).
///
/// ```
/// use cube_algebra::check::{check, OperandFacts};
/// use cube_algebra::parse_expr;
/// let parsed = parse_expr("mean(A,A)").unwrap();
/// let report = check(&parsed, &[OperandFacts::unknown("A", "no such file")]);
/// assert_eq!(report.diagnostics[0].code, "A001"); // unresolved, reported once
/// assert_eq!(report.diagnostics[1].code, "A004"); // duplicate skews the mean
/// assert!(!report.ok());
/// ```
pub fn check(parsed: &ParsedExpr, facts: &[OperandFacts<'_>]) -> CheckReport {
    check_expr(&parsed.expr, Some(&parsed.spans), &parsed.operands, facts)
}

/// [`check`] for programmatically-built trees: spans are optional
/// (diagnostics anchor at offset 0 without them), and `operands` names
/// the tree's indices for messages and the plan key.
pub fn check_expr(
    expr: &Expr,
    spans: Option<&SpanNode>,
    operands: &[String],
    facts: &[OperandFacts<'_>],
) -> CheckReport {
    let mut cx = Checker::new(operands, facts);
    cx.walk(expr, spans);
    cx.dead_operands();
    cx.diagnostics.sort_by_key(|d| d.offset);
    let (rewritten, rewrites) = rewrite(expr);
    let cost = estimate(expr, operands, &cx.resolved);
    CheckReport {
        diagnostics: cx.diagnostics,
        canonical: render_expr(expr, operands),
        rewritten_text: render_expr(&rewritten, operands),
        rewritten,
        rewrites,
        cost,
    }
}

/// The metric identity used for compatibility: (name, unit), the same
/// key metadata integration matches on.
type MetricSet = BTreeSet<(String, Unit)>;

struct Checker<'a, 'f> {
    operands: &'a [String],
    /// Resolved metadata per operand index (by fact-name match).
    resolved: Vec<Option<&'f Metadata>>,
    notes: Vec<Option<&'a str>>,
    metric_sets: Vec<Option<MetricSet>>,
    referenced: Vec<bool>,
    reported_unknown: Vec<bool>,
    facts: &'a [OperandFacts<'f>],
    diagnostics: Vec<CheckDiagnostic>,
}

impl<'a, 'f> Checker<'a, 'f> {
    fn new(operands: &'a [String], facts: &'a [OperandFacts<'f>]) -> Self {
        let mut resolved = Vec::with_capacity(operands.len());
        let mut notes = Vec::with_capacity(operands.len());
        for name in operands {
            let fact = facts.iter().find(|f| &f.name == name);
            resolved.push(fact.and_then(|f| f.metadata));
            notes.push(fact.and_then(|f| f.note.as_deref()));
        }
        let metric_sets = resolved
            .iter()
            .map(|md| {
                md.map(|md| {
                    md.metrics()
                        .iter()
                        .map(|m| (m.name.clone(), m.unit))
                        .collect::<MetricSet>()
                })
            })
            .collect();
        Self {
            operands,
            resolved,
            notes,
            metric_sets,
            referenced: vec![false; operands.len()],
            reported_unknown: vec![false; operands.len()],
            facts,
            diagnostics: Vec::new(),
        }
    }

    fn emit(&mut self, code: &'static str, level: CheckLevel, span: Span, message: String) {
        self.diagnostics.push(CheckDiagnostic {
            code,
            level,
            offset: span.start,
            len: span.len(),
            message,
        });
    }

    fn name_of(&self, i: usize) -> &str {
        self.operands.get(i).map_or("?", |s| s.as_str())
    }

    /// `A001`/`A003` for one operand reference; returns false when the
    /// index is out of range (the reference is unusable).
    fn check_operand(&mut self, i: usize, span: Span) -> bool {
        if i >= self.operands.len() {
            self.emit(
                "A003",
                CheckLevel::Error,
                span,
                format!(
                    "operand index {i} is out of range for {} named operand{}",
                    self.operands.len(),
                    if self.operands.len() == 1 { "" } else { "s" }
                ),
            );
            return false;
        }
        self.referenced[i] = true;
        if self.resolved[i].is_none() && !self.reported_unknown[i] {
            self.reported_unknown[i] = true;
            let mut message = format!(
                "operand '{}' does not resolve to an experiment",
                self.name_of(i)
            );
            if let Some(note) = self.notes[i] {
                let _ = write!(message, ": {note}");
            }
            self.emit("A001", CheckLevel::Error, span, message);
        }
        true
    }

    fn walk(&mut self, expr: &Expr, spans: Option<&SpanNode>) {
        let span = spans.map_or(Span { start: 0, end: 0 }, SpanNode::span);
        match expr {
            Expr::Operand(i) => {
                self.check_operand(*i, span);
            }
            Expr::Zero => {}
            Expr::Reduce(r, idxs) => self.check_reduce(*r, idxs, span, spans),
            Expr::Diff(a, b) => {
                let (sa, sb) = match spans {
                    Some(SpanNode::Diff(_, sa, sb)) => (Some(sa.as_ref()), Some(sb.as_ref())),
                    _ => (None, None),
                };
                self.walk(a, sa);
                self.walk(b, sb);
                if a == b {
                    self.emit(
                        "A008",
                        CheckLevel::Warning,
                        span,
                        "both sides of this diff are the same expression; \
                         the result is statically zero"
                            .to_string(),
                    );
                } else {
                    self.check_diff_compat(a, b, span);
                }
            }
            Expr::Scale(inner, factor) => {
                let (si, sf) = match spans {
                    Some(SpanNode::Scale(_, si, sf)) => (Some(si.as_ref()), Some(*sf)),
                    _ => (None, None),
                };
                self.walk(inner, si);
                if *factor == 1.0 {
                    self.emit(
                        "A010",
                        CheckLevel::Warning,
                        span,
                        "scaling by 1 is the identity".to_string(),
                    );
                } else if *factor == 0.0 {
                    self.emit(
                        "A012",
                        CheckLevel::Warning,
                        sf.unwrap_or(span),
                        "scale factor 0 zeroes every finite severity value".to_string(),
                    );
                }
            }
        }
    }

    fn check_reduce(&mut self, r: Reduction, idxs: &[usize], span: Span, spans: Option<&SpanNode>) {
        let arg_spans: &[Span] = match spans {
            Some(SpanNode::Reduce(_, args)) => args,
            _ => &[],
        };
        let arg_span = |k: usize| arg_spans.get(k).copied().unwrap_or(span);
        if idxs.is_empty() {
            self.emit(
                "A002",
                CheckLevel::Error,
                span,
                format!("{} over an empty operand list", r.name()),
            );
            return;
        }
        let mut usable = Vec::new();
        for (k, &i) in idxs.iter().enumerate() {
            if self.check_operand(i, arg_span(k)) {
                usable.push(i);
            }
        }
        // Duplicates: harmless noise in idempotent min/max (the rewrite
        // pass removes them), a skewed statistic everywhere else.
        let mut seen: Vec<usize> = Vec::new();
        for (k, &i) in idxs.iter().enumerate() {
            if i >= self.operands.len() {
                continue;
            }
            if seen.contains(&i) {
                let idempotent = matches!(r, Reduction::Min | Reduction::Max);
                let (code, message) = if idempotent {
                    (
                        "A011",
                        format!(
                            "duplicate operand '{}' in {} is removable \
                             (idempotent reduction)",
                            self.name_of(i),
                            r.name()
                        ),
                    )
                } else {
                    (
                        "A004",
                        format!(
                            "operand '{}' appears more than once in {}, \
                             which skews the statistic",
                            self.name_of(i),
                            r.name()
                        ),
                    )
                };
                self.emit(code, CheckLevel::Warning, arg_span(k), message);
            } else {
                seen.push(i);
            }
        }
        // Degenerate single-operand statistics.
        if idxs.len() == 1 {
            match r {
                Reduction::Variance | Reduction::Stddev => self.emit(
                    "A009",
                    CheckLevel::Warning,
                    span,
                    format!("{} of a single operand is identically zero", r.name()),
                ),
                _ => self.emit(
                    "A010",
                    CheckLevel::Warning,
                    span,
                    format!("{} of a single operand is the identity", r.name()),
                ),
            }
        }
        // Metric compatibility: an operand sharing no metric with any
        // other contributes nothing but zero-extension to the result.
        let distinct: Vec<usize> = {
            let mut v = Vec::new();
            for &i in &usable {
                if !v.contains(&i) {
                    v.push(i);
                }
            }
            v
        };
        let known: Vec<usize> = distinct
            .iter()
            .copied()
            .filter(|&i| self.metric_sets[i].is_some())
            .collect();
        if known.len() >= 2 {
            for &i in &known {
                let mine = self.metric_sets[i].as_ref().expect("known metric set");
                let shares = known.iter().any(|&j| {
                    j != i
                        && self.metric_sets[j]
                            .as_ref()
                            .is_some_and(|other| !mine.is_disjoint(other))
                });
                if !shares {
                    let k = idxs.iter().position(|&x| x == i).unwrap_or(0);
                    let message = format!(
                        "operand '{}' shares no metric with the other \
                         operands of {}; it only zero-extends the result",
                        self.name_of(i),
                        r.name()
                    );
                    self.emit("A006", CheckLevel::Warning, arg_span(k), message);
                }
            }
            let threads: Vec<(usize, usize)> = known
                .iter()
                .map(|&i| (i, self.resolved[i].expect("known metadata").num_threads()))
                .collect();
            let min = threads.iter().map(|&(_, t)| t).min().unwrap_or(0);
            let max = threads.iter().map(|&(_, t)| t).max().unwrap_or(0);
            if min != max {
                self.emit(
                    "A007",
                    CheckLevel::Warning,
                    span,
                    format!(
                        "operands of {} have different thread topologies \
                         ({min} vs {max} threads); missing positions compare \
                         against zero",
                        r.name()
                    ),
                );
            }
        }
    }

    /// Referenced operand indices of a subtree, for diff-side
    /// compatibility.
    fn subtree_operands(expr: &Expr, out: &mut Vec<usize>) {
        match expr {
            Expr::Operand(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Zero => {}
            Expr::Reduce(_, idxs) => {
                for &i in idxs {
                    if !out.contains(&i) {
                        out.push(i);
                    }
                }
            }
            Expr::Diff(a, b) => {
                Self::subtree_operands(a, out);
                Self::subtree_operands(b, out);
            }
            Expr::Scale(inner, _) => Self::subtree_operands(inner, out),
        }
    }

    fn side_facts(&self, expr: &Expr) -> Option<(MetricSet, usize)> {
        let mut idxs = Vec::new();
        Self::subtree_operands(expr, &mut idxs);
        let mut metrics = MetricSet::new();
        let mut threads = 0usize;
        let mut any = false;
        for i in idxs {
            if i >= self.operands.len() {
                continue;
            }
            if let Some(set) = &self.metric_sets[i] {
                metrics.extend(set.iter().cloned());
                threads = threads.max(self.resolved[i].map_or(0, Metadata::num_threads));
                any = true;
            }
        }
        any.then_some((metrics, threads))
    }

    fn check_diff_compat(&mut self, a: &Expr, b: &Expr, span: Span) {
        let (Some((ma, ta)), Some((mb, tb))) = (self.side_facts(a), self.side_facts(b)) else {
            return;
        };
        if ma.is_disjoint(&mb) {
            self.emit(
                "A006",
                CheckLevel::Warning,
                span,
                "the two sides of this diff share no metrics; every value \
                 is compared against zero"
                    .to_string(),
            );
        }
        if ta != tb {
            self.emit(
                "A007",
                CheckLevel::Warning,
                span,
                format!(
                    "the two sides of this diff have different thread \
                     topologies ({ta} vs {tb} threads); missing positions \
                     compare against zero"
                ),
            );
        }
    }

    /// `A005` for facts the expression never references.
    fn dead_operands(&mut self) {
        let facts = self.facts;
        for fact in facts {
            let used = self
                .operands
                .iter()
                .zip(&self.referenced)
                .any(|(name, &r)| r && name == &fact.name);
            if !used {
                self.diagnostics.push(CheckDiagnostic {
                    code: "A005",
                    level: CheckLevel::Warning,
                    offset: 0,
                    len: 0,
                    message: format!(
                        "operand '{}' was provided but the expression never \
                         references it",
                        fact.name
                    ),
                });
            }
        }
    }
}

/// Rewrites an expression with semantics-preserving canonicalization
/// and constant folding. On finite severity data the rewritten tree
/// evaluates to **bit-identical** severity values over the same
/// integrated metadata (provenance labels follow the rewritten form):
///
/// | rule | rewrite |
/// |---|---|
/// | `scale-identity` | `scale(e, 1)` → `e` |
/// | `idempotent-dedup` | duplicate operands removed from `min`/`max` |
/// | `single-identity` | `mean`/`sum`/`min`/`max` of one operand → the operand |
/// | `zero-variance` | `variance`/`stddev` of one operand → `zero()` |
/// | `zero-diff` | `diff(X, X)` → `zero()` |
/// | `zero-scale` | `scale(zero(), f)` for `f ≥ 0` → `zero()` |
///
/// One bottom-up pass reaches a fixpoint: rewriting an already
/// rewritten tree changes nothing (pinned by the idempotence property
/// test).
pub fn rewrite(expr: &Expr) -> (Expr, Vec<RewriteNote>) {
    let mut notes = Vec::new();
    let rewritten = rw(expr, &mut notes);
    (rewritten, notes)
}

fn rw(expr: &Expr, notes: &mut Vec<RewriteNote>) -> Expr {
    match expr {
        Expr::Operand(i) => Expr::Operand(*i),
        Expr::Zero => Expr::Zero,
        Expr::Reduce(r, idxs) => {
            let mut list: Vec<usize> = idxs.clone();
            if matches!(r, Reduction::Min | Reduction::Max) {
                let before = list.len();
                let mut seen = Vec::with_capacity(list.len());
                list.retain(|&i| {
                    let fresh = !seen.contains(&i);
                    if fresh {
                        seen.push(i);
                    }
                    fresh
                });
                if list.len() < before {
                    notes.push(RewriteNote {
                        rule: "idempotent-dedup",
                        detail: format!(
                            "removed {} duplicate operand{} from {}",
                            before - list.len(),
                            if before - list.len() == 1 { "" } else { "s" },
                            r.name()
                        ),
                    });
                }
            }
            if let [only] = list.as_slice() {
                return match r {
                    Reduction::Variance | Reduction::Stddev => {
                        notes.push(RewriteNote {
                            rule: "zero-variance",
                            detail: format!("{} of a single operand folds to zero()", r.name()),
                        });
                        Expr::Zero
                    }
                    _ => {
                        notes.push(RewriteNote {
                            rule: "single-identity",
                            detail: format!(
                                "{} of a single operand folds to the operand",
                                r.name()
                            ),
                        });
                        Expr::Operand(*only)
                    }
                };
            }
            Expr::Reduce(*r, list)
        }
        Expr::Diff(a, b) => {
            let ra = rw(a, notes);
            let rb = rw(b, notes);
            if ra == rb {
                notes.push(RewriteNote {
                    rule: "zero-diff",
                    detail: "diff of identical sides folds to zero()".to_string(),
                });
                Expr::Zero
            } else {
                Expr::diff(ra, rb)
            }
        }
        Expr::Scale(inner, factor) => {
            let ri = rw(inner, notes);
            if *factor == 1.0 {
                notes.push(RewriteNote {
                    rule: "scale-identity",
                    detail: "scale by 1 removed".to_string(),
                });
                ri
            } else if ri == Expr::Zero && factor.is_sign_positive() {
                // A negative factor would flip the zeros to -0.0, which
                // is a different bit pattern; keep the node in that case.
                notes.push(RewriteNote {
                    rule: "zero-scale",
                    detail: format!("scale of zero() by {factor} folds to zero()"),
                });
                Expr::Zero
            } else {
                Expr::Scale(Box::new(ri), *factor)
            }
        }
    }
}

fn estimate(expr: &Expr, operands: &[String], resolved: &[Option<&Metadata>]) -> CostEstimate {
    fn count(expr: &Expr, nodes: &mut usize, reductions: &mut usize) {
        *nodes += 1;
        match expr {
            Expr::Operand(_) | Expr::Zero => {}
            Expr::Reduce(_, _) => *reductions += 1,
            Expr::Diff(a, b) => {
                count(a, nodes, reductions);
                count(b, nodes, reductions);
            }
            Expr::Scale(inner, _) => count(inner, nodes, reductions),
        }
    }
    let mut referenced = Vec::new();
    Checker::subtree_operands(expr, &mut referenced);
    referenced.retain(|&i| i < operands.len());
    let (mut nodes, mut reductions) = (0, 0);
    count(expr, &mut nodes, &mut reductions);
    let mut values = 0u64;
    let mut pages = 0u64;
    let mut known = 0usize;
    for &i in &referenced {
        if let Some(md) = resolved[i] {
            known += 1;
            let v = md.num_metrics() as u64 * md.num_call_nodes() as u64 * md.num_threads() as u64;
            values += v;
            pages += v.div_ceil(PAGE_VALUES);
        }
    }
    let fused = crate::kernel::KernelProgram::compile(expr, operands.len())
        .ok()
        .map(|p| FusedCost {
            instrs: p.instrs().len(),
            regs: p.num_regs(),
            loads: p.slots().len(),
        });
    CostEstimate {
        operands: referenced.len(),
        known,
        nodes,
        reductions,
        values,
        bytes: values * 8,
        pages,
        plan_key: operands.join(","),
        fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_expr;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind};

    fn experiment(metric: &str, unit: Unit, threads: usize) -> cube_model::Experiment {
        let mut b = ExperimentBuilder::new("e");
        let t = b.def_metric(metric, unit, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, threads);
        b.set_severity(t, root, ts[0], 1.0);
        b.build().unwrap()
    }

    fn codes(report: &CheckReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_expression_is_clean() {
        let (a, b) = (
            experiment("time", Unit::Seconds, 2),
            experiment("time", Unit::Seconds, 2),
        );
        let parsed = parse_expr("diff(mean(A,B),B)").unwrap();
        let facts = [
            OperandFacts::known("A", a.metadata()),
            OperandFacts::known("B", b.metadata()),
        ];
        let report = check(&parsed, &facts);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert!(report.ok() && !report.denied(true));
        assert_eq!(report.cost.operands, 2);
        assert_eq!(report.cost.known, 2);
        assert_eq!(report.cost.values, 4); // 1 metric × 1 call × 2 threads, ×2
        assert_eq!(report.cost.pages, 2);
        assert_eq!(report.cost.plan_key, "A,B");
    }

    #[test]
    fn unknown_and_dead_operands_are_flagged_once() {
        let a = experiment("time", Unit::Seconds, 1);
        let parsed = parse_expr("mean(X,X)").unwrap();
        let facts = [
            OperandFacts::unknown("X", "no such id"),
            OperandFacts::known("A", a.metadata()),
        ];
        let report = check(&parsed, &facts);
        // A001 once (not per occurrence), A004 for the duplicate, A005
        // for the provided-but-unused operand.
        assert_eq!(codes(&report), ["A005", "A001", "A004"]);
        assert!(report.diagnostics[1].message.contains("no such id"));
        assert!(!report.ok());
    }

    #[test]
    fn offsets_point_at_the_offending_token() {
        let a = experiment("time", Unit::Seconds, 1);
        let b = experiment("time", Unit::Seconds, 1);
        let parsed = parse_expr("mean(A, B, A)").unwrap();
        let facts = [
            OperandFacts::known("A", a.metadata()),
            OperandFacts::known("B", b.metadata()),
        ];
        let report = check(&parsed, &facts);
        assert_eq!(codes(&report), ["A004"]);
        // The *second* A, at byte 11.
        assert_eq!(report.diagnostics[0].offset, 11);
        assert_eq!(report.diagnostics[0].len, 1);
    }

    #[test]
    fn compatibility_mismatches_are_flagged() {
        let a = experiment("time", Unit::Seconds, 2);
        let b = experiment("visits", Unit::Occurrences, 2);
        let parsed = parse_expr("mean(A,B)").unwrap();
        let facts = [
            OperandFacts::known("A", a.metadata()),
            OperandFacts::known("B", b.metadata()),
        ];
        let report = check(&parsed, &facts);
        assert_eq!(codes(&report), ["A006", "A006"]);

        let wide = experiment("time", Unit::Seconds, 4);
        let parsed = parse_expr("diff(A,W)").unwrap();
        let facts = [
            OperandFacts::known("A", a.metadata()),
            OperandFacts::known("W", wide.metadata()),
        ];
        let report = check(&parsed, &facts);
        assert_eq!(codes(&report), ["A007"]);
    }

    #[test]
    fn rewrite_folds_and_is_idempotent() {
        let parsed = parse_expr("scale(diff(mean(A,B),mean(A,B)),2)").unwrap();
        let (rewritten, notes) = rewrite(&parsed.expr);
        assert_eq!(rewritten, Expr::Zero);
        let rules: Vec<&str> = notes.iter().map(|n| n.rule).collect();
        assert_eq!(rules, ["zero-diff", "zero-scale"]);
        let (again, notes) = rewrite(&rewritten);
        assert_eq!(again, rewritten);
        assert!(notes.is_empty());

        let parsed = parse_expr("scale(min(A,A,B),1)").unwrap();
        let (rewritten, _) = rewrite(&parsed.expr);
        assert_eq!(rewritten, Expr::Reduce(Reduction::Min, vec![0, 1]));
        assert_eq!(render_expr(&rewritten, &parsed.operands), "min(A,B)");

        // A negative factor over zero() must NOT fold (sign of zero).
        let parsed = parse_expr("scale(diff(A,A),-2)").unwrap();
        let (rewritten, _) = rewrite(&parsed.expr);
        assert_eq!(rewritten, Expr::scale(Expr::Zero, -2.0));
    }

    #[test]
    fn json_report_is_stable() {
        let parsed = parse_expr("stddev(A)").unwrap();
        let a = experiment("time", Unit::Seconds, 1);
        let report = check(&parsed, &[OperandFacts::known("A", a.metadata())]);
        assert_eq!(codes(&report), ["A009"]);
        let json = report.to_json("stddev(A)");
        assert!(json.contains("\"code\":\"A009\""), "{json}");
        assert!(json.contains("\"rewritten\":\"zero()\""), "{json}");
        assert!(json.contains("\"ok\":true"), "{json}");
    }
}
