//! The operators: difference, merge, mean, and natural extensions.
//!
//! Every operator here follows the same two-phase contract:
//!
//! 1. **Metadata integration** ([`crate::integrate()`]) folds the
//!    operands' metric forests, call forests, and system hierarchies
//!    into one integrated [`cube_model::Metadata`] by top-down
//!    structural matching, recording where each operand entity landed.
//! 2. **Element-wise arithmetic** zero-extends each operand's severity
//!    array onto the integrated shape ([`crate::extend`]) and combines
//!    the aligned arrays pointwise — subtraction for [`diff`],
//!    first-provider selection for [`merge`], accumulation and scaling
//!    for [`mean`], and so on.
//!
//! The payoff is *closure*: operands are experiments and results are
//! complete experiments — integrated metadata, a severity function
//! defined over it, and a derived [`cube_model::Provenance`] naming the
//! operator and its operands. A derived experiment is stored by the
//! same file format, rendered by the same display, and accepted as an
//! operand of any further operator, so composite analyses (the
//! difference of means, the merge of a minimum series, ...) are plain
//! function composition.
//!
//! Element-wise loops switch to Rayon data parallelism above a size
//! threshold — measured in the `par_elementwise` bench.

use rayon::prelude::*;

use cube_model::{Experiment, Provenance, Severity};

use crate::batch::{BatchPlan, Reduction};
use crate::error::AlgebraError;
use crate::extend::extend_severity;
use crate::integrate::integrate;
use crate::options::MergeOptions;

/// Below this element count the element-wise loops stay serial; the
/// fork/join overhead would dominate (see the `par_elementwise` bench).
pub(crate) const PAR_THRESHOLD: usize = 1 << 16;

fn label(e: &Experiment) -> String {
    e.provenance().label()
}

// ---------------------------------------------------------------------------
// difference
// ---------------------------------------------------------------------------

/// The difference operator: `minuend − subtrahend`, element-wise over
/// the integrated metadata. Severity values of the result may be
/// negative; the display renders their sign as a relief.
///
/// ```
/// use cube_algebra::ops;
/// use cube_model::builder::single_threaded_system;
/// use cube_model::{ExperimentBuilder, RegionKind, Unit};
///
/// fn run(seconds: f64) -> cube_model::Experiment {
///     let mut b = ExperimentBuilder::new("run");
///     let t = b.def_metric("time", Unit::Seconds, "", None);
///     let m = b.def_module("a.c", "/a.c");
///     let r = b.def_region("main", m, RegionKind::Function, 1, 9);
///     let cs = b.def_call_site("a.c", 1, r);
///     let root = b.def_call_node(cs, None);
///     let ts = single_threaded_system(&mut b, 1);
///     b.set_severity(t, root, ts[0], seconds);
///     b.build().unwrap()
/// }
///
/// let before = run(10.0);
/// let after = run(8.0);
/// let saved = ops::diff(&before, &after);
/// assert_eq!(saved.severity().values(), &[2.0]);
/// // Closure: the result is a complete experiment, so operators compose.
/// assert!(saved.provenance().is_derived());
/// let zero = ops::diff(&saved, &saved);
/// assert_eq!(zero.severity().values(), &[0.0]);
/// ```
pub fn diff(minuend: &Experiment, subtrahend: &Experiment) -> Experiment {
    diff_with(minuend, subtrahend, MergeOptions::default())
}

/// [`diff`] with explicit integration switches.
pub fn diff_with(
    minuend: &Experiment,
    subtrahend: &Experiment,
    options: MergeOptions,
) -> Experiment {
    let integrated = integrate(&[minuend, subtrahend], options);
    let shape = integrated.metadata.shape();
    // The two zero-extensions touch disjoint data; fork them. Each is
    // computed exactly as before, so values cannot change.
    let (mut a, b) = rayon::join(
        || extend_severity(minuend, &integrated.maps[0], shape),
        || extend_severity(subtrahend, &integrated.maps[1], shape),
    );
    // The element-wise subtraction goes through the lane kernels when
    // fusion is on, the scalar zip when it is off; both are
    // bit-identical (the CI kernel stage byte-compares them).
    if crate::kernel::fusion_enabled() {
        crate::kernel::sub_in_place(a.values_mut(), b.values());
    } else {
        zip_in_place(a.values_mut(), b.values(), |x, y| x - y);
    }
    let result = Experiment::new_unchecked(
        integrated.metadata,
        a,
        Provenance::derived("difference", vec![label(minuend), label(subtrahend)]),
    );
    crate::invariant::debug_assert_closed(&result, "difference");
    result
}

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

/// The merge operator: integrates experiments with different (or
/// overlapping) metric sets into one experiment with the joint set.
///
/// For each metric of the result, the severity comes from the *first*
/// operand if that operand provides the metric, and from the second
/// otherwise — the paper's "if it is provided by both experiments we
/// take it from the first one".
///
/// ```
/// use cube_algebra::ops;
/// use cube_model::builder::single_threaded_system;
/// use cube_model::{ExperimentBuilder, RegionKind, Unit};
///
/// fn run(metric: &str, unit: Unit, v: f64) -> cube_model::Experiment {
///     let mut b = ExperimentBuilder::new(metric);
///     let t = b.def_metric(metric, unit, "", None);
///     let m = b.def_module("a.c", "/a.c");
///     let r = b.def_region("main", m, RegionKind::Function, 1, 9);
///     let cs = b.def_call_site("a.c", 1, r);
///     let root = b.def_call_node(cs, None);
///     let ts = single_threaded_system(&mut b, 1);
///     b.set_severity(t, root, ts[0], v);
///     b.build().unwrap()
/// }
///
/// // Measurements that cannot share a run (conflicting counters)
/// // integrate into one experiment with the joint metric set.
/// let times = run("time", Unit::Seconds, 4.0);
/// let flops = run("flops", Unit::Occurrences, 1e6);
/// let joint = ops::merge(&times, &flops);
/// assert_eq!(joint.metadata().shape().0, 2);
/// assert_eq!(joint.severity().values(), &[4.0, 1e6]);
/// ```
pub fn merge(first: &Experiment, second: &Experiment) -> Experiment {
    merge_with(first, second, MergeOptions::default())
}

/// [`merge`] with explicit integration switches.
pub fn merge_with(first: &Experiment, second: &Experiment, options: MergeOptions) -> Experiment {
    let integrated = integrate(&[first, second], options);
    let shape = integrated.metadata.shape();
    // Independent zero-extensions, forked as in `diff_with`.
    let (a, b) = rayon::join(
        || extend_severity(first, &integrated.maps[0], shape),
        || extend_severity(second, &integrated.maps[1], shape),
    );

    // Which result metrics does the first operand provide?
    let mut provided_by_first = vec![false; shape.0];
    for m in &integrated.maps[0].metrics {
        provided_by_first[m.index()] = true;
    }

    let block = shape.1 * shape.2;
    let mut out = Severity::zeros(shape.0, shape.1, shape.2);
    for (mi, provided) in provided_by_first.iter().enumerate() {
        let src = if *provided { a.values() } else { b.values() };
        out.values_mut()[mi * block..(mi + 1) * block]
            .copy_from_slice(&src[mi * block..(mi + 1) * block]);
    }
    let result = Experiment::new_unchecked(
        integrated.metadata,
        out,
        Provenance::derived("merge", vec![label(first), label(second)]),
    );
    crate::invariant::debug_assert_closed(&result, "merge");
    result
}

// ---------------------------------------------------------------------------
// n-ary reductions: mean, sum, min, max
//
// These delegate to the batch engine: one metadata integration across
// all k operands, one pass over the integrated rows. The pre-batch
// pairwise fold survives in `crate::batch::pairwise` as the
// differential oracle these entry points are tested against.
// ---------------------------------------------------------------------------

/// The mean operator: element-wise arithmetic mean of any number of
/// experiments. Smooths the random perturbation of separate runs, or
/// summarizes a range of execution parameters in one statement.
///
/// Errors when `operands` is empty — there is no neutral experiment to
/// return.
///
/// ```
/// use cube_algebra::ops;
/// use cube_model::builder::single_threaded_system;
/// use cube_model::{ExperimentBuilder, RegionKind, Unit};
///
/// fn run(seconds: f64) -> cube_model::Experiment {
///     let mut b = ExperimentBuilder::new("noisy run");
///     let t = b.def_metric("time", Unit::Seconds, "", None);
///     let m = b.def_module("a.c", "/a.c");
///     let r = b.def_region("main", m, RegionKind::Function, 1, 9);
///     let cs = b.def_call_site("a.c", 1, r);
///     let root = b.def_call_node(cs, None);
///     let ts = single_threaded_system(&mut b, 1);
///     b.set_severity(t, root, ts[0], seconds);
///     b.build().unwrap()
/// }
///
/// let (r1, r2, r3) = (run(9.0), run(10.0), run(11.0));
/// let avg = ops::mean(&[&r1, &r2, &r3]).unwrap();
/// assert_eq!(avg.severity().values(), &[10.0]);
/// assert!(ops::mean(&[]).is_err());
/// ```
pub fn mean(operands: &[&Experiment]) -> Result<Experiment, AlgebraError> {
    mean_with(operands, MergeOptions::default())
}

/// [`mean`] with explicit integration switches.
pub fn mean_with(
    operands: &[&Experiment],
    options: MergeOptions,
) -> Result<Experiment, AlgebraError> {
    BatchPlan::with_options(operands, options).reduce(Reduction::Mean)
}

/// Element-wise sum of any number of experiments.
pub fn sum(operands: &[&Experiment]) -> Result<Experiment, AlgebraError> {
    sum_with(operands, MergeOptions::default())
}

/// [`sum`] with explicit integration switches.
pub fn sum_with(
    operands: &[&Experiment],
    options: MergeOptions,
) -> Result<Experiment, AlgebraError> {
    BatchPlan::with_options(operands, options).reduce(Reduction::Sum)
}

/// Element-wise minimum — the selection the paper's §5.1 applies to a
/// series of ten runs to suppress system noise.
pub fn min(operands: &[&Experiment]) -> Result<Experiment, AlgebraError> {
    min_with(operands, MergeOptions::default())
}

/// [`min`] with explicit integration switches.
pub fn min_with(
    operands: &[&Experiment],
    options: MergeOptions,
) -> Result<Experiment, AlgebraError> {
    BatchPlan::with_options(operands, options).reduce(Reduction::Min)
}

/// Element-wise maximum.
pub fn max(operands: &[&Experiment]) -> Result<Experiment, AlgebraError> {
    max_with(operands, MergeOptions::default())
}

/// [`max`] with explicit integration switches.
pub fn max_with(
    operands: &[&Experiment],
    options: MergeOptions,
) -> Result<Experiment, AlgebraError> {
    BatchPlan::with_options(operands, options).reduce(Reduction::Max)
}

// ---------------------------------------------------------------------------
// scalar operations
// ---------------------------------------------------------------------------

/// Multiplies every severity value by `factor`, yielding a derived
/// experiment with the operand's metadata. `scale(e, -1.0)` negates,
/// `scale(sum, 1.0/k)` averages — useful for building composite
/// operators by hand.
pub fn scale(e: &Experiment, factor: f64) -> Experiment {
    let mut sev = e.severity().clone();
    if crate::kernel::fusion_enabled() {
        crate::kernel::scale_in_place(sev.values_mut(), factor);
    } else {
        scale_in_place(sev.values_mut(), factor);
    }
    let result = Experiment::new_unchecked(
        e.metadata().clone(),
        sev,
        Provenance::derived("scale", vec![label(e), format!("{factor}")]),
    );
    crate::invariant::debug_assert_closed(&result, "scale");
    result
}

// ---------------------------------------------------------------------------
// element-wise kernels
// ---------------------------------------------------------------------------

fn zip_in_place(dst: &mut [f64], src: &[f64], f: impl Fn(f64, f64) -> f64 + Sync) {
    debug_assert_eq!(dst.len(), src.len());
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(d, s)| *d = f(*d, *s));
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = f(*d, *s);
        }
    }
}

fn scale_in_place(dst: &mut [f64], factor: f64) {
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut().for_each(|d| *d *= factor);
    } else {
        for d in dst {
            *d *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    /// One metric, one call node, `ranks` ranks, value `v` everywhere.
    fn uniform(name: &str, ranks: usize, v: f64) -> Experiment {
        let mut b = ExperimentBuilder::new(name);
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, ranks);
        for &tid in &ts {
            b.set_severity(t, root, tid, v);
        }
        b.build().unwrap()
    }

    /// Experiment with a second metric tree (`flops`), for merge tests.
    fn with_flops(name: &str, time: f64, flops: f64) -> Experiment {
        let mut b = ExperimentBuilder::new(name);
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let f = b.def_metric("flops", Unit::Occurrences, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 2);
        for &tid in &ts {
            b.set_severity(t, root, tid, time);
            b.set_severity(f, root, tid, flops);
        }
        b.build().unwrap()
    }

    #[test]
    fn diff_of_identical_is_zero() {
        let a = uniform("a", 4, 3.0);
        let d = diff(&a, &a);
        d.validate().unwrap();
        assert!(d.severity().values().iter().all(|&v| v == 0.0));
        assert!(d.provenance().is_derived());
    }

    #[test]
    fn diff_subtracts_elementwise() {
        let a = uniform("a", 2, 5.0);
        let b = uniform("b", 2, 3.5);
        let d = diff(&a, &b);
        assert!(d
            .severity()
            .values()
            .iter()
            .all(|&v| (v - 1.5).abs() < 1e-12));
    }

    #[test]
    fn diff_zero_extends_missing_entities() {
        // b has an extra rank; diff(a, b) at that rank = 0 - b's value.
        let a = uniform("a", 2, 5.0);
        let b = uniform("b", 3, 3.0);
        let d = diff(&a, &b);
        d.validate().unwrap();
        assert_eq!(d.metadata().num_threads(), 3);
        let vals = d.severity().values();
        assert_eq!(vals, &[2.0, 2.0, -3.0]);
    }

    #[test]
    fn diff_is_anticommutative() {
        let a = uniform("a", 2, 5.0);
        let b = uniform("b", 2, 3.0);
        let ab = diff(&a, &b);
        let ba = diff(&b, &a);
        let n: Vec<f64> = ba.severity().values().iter().map(|v| -v).collect();
        assert_eq!(ab.severity().values(), &n[..]);
    }

    #[test]
    fn mean_of_single_operand_is_identity_on_values() {
        let a = uniform("a", 3, 2.0);
        let m = mean(&[&a]).unwrap();
        m.validate().unwrap();
        assert!(m.approx_eq(&a, 1e-12));
    }

    #[test]
    fn mean_averages() {
        let a = uniform("a", 2, 2.0);
        let b = uniform("b", 2, 4.0);
        let c = uniform("c", 2, 6.0);
        let m = mean(&[&a, &b, &c]).unwrap();
        assert!(m
            .severity()
            .values()
            .iter()
            .all(|&v| (v - 4.0).abs() < 1e-12));
        match m.provenance() {
            Provenance::Derived { operator, operands } => {
                assert_eq!(operator, "mean");
                assert_eq!(operands.len(), 3);
            }
            other => panic!("unexpected provenance {other:?}"),
        }
    }

    #[test]
    fn mean_of_empty_errors() {
        assert!(matches!(
            mean(&[]),
            Err(AlgebraError::EmptyOperandList { operator: "mean" })
        ));
        assert!(sum(&[]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn merge_unions_metrics_first_wins() {
        let a = with_flops("a", 1.0, 100.0);
        let b = uniform("b", 2, 9.0); // provides `time` only
        let m = merge(&a, &b);
        m.validate().unwrap();
        assert_eq!(m.metadata().num_metrics(), 2);
        // `time` provided by both → taken from a (1.0, not 9.0).
        let time = m.metadata().find_metric("time").unwrap();
        assert_eq!(m.severity().metric_sum(time), 2.0);
        // `flops` only in a.
        let flops = m.metadata().find_metric("flops").unwrap();
        assert_eq!(m.severity().metric_sum(flops), 200.0);
    }

    #[test]
    fn merge_takes_second_for_metrics_only_in_second() {
        let a = uniform("a", 2, 9.0);
        let b = with_flops("b", 1.0, 100.0);
        let m = merge(&a, &b);
        let time = m.metadata().find_metric("time").unwrap();
        let flops = m.metadata().find_metric("flops").unwrap();
        assert_eq!(m.severity().metric_sum(time), 18.0); // from a
        assert_eq!(m.severity().metric_sum(flops), 200.0); // from b
    }

    #[test]
    fn merge_is_idempotent() {
        let a = with_flops("a", 1.0, 100.0);
        let m = merge(&a, &a);
        assert!(m.approx_eq(&a, 1e-12));
    }

    #[test]
    fn min_and_max_select_elementwise() {
        let a = uniform("a", 2, 2.0);
        let b = uniform("b", 2, 4.0);
        let lo = min(&[&a, &b]).unwrap();
        let hi = max(&[&a, &b]).unwrap();
        assert!(lo.severity().values().iter().all(|&v| v == 2.0));
        assert!(hi.severity().values().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn sum_plus_scale_compose_into_mean() {
        let a = uniform("a", 2, 2.0);
        let b = uniform("b", 2, 4.0);
        let composite = scale(&sum(&[&a, &b]).unwrap(), 0.5);
        let direct = mean(&[&a, &b]).unwrap();
        assert!(composite.severity().approx_eq(direct.severity(), 1e-12));
    }

    #[test]
    fn closure_composite_diff_of_means() {
        // The paper's motivating composite: difference of averaged data.
        let a1 = uniform("a1", 2, 2.0);
        let a2 = uniform("a2", 2, 4.0);
        let b1 = uniform("b1", 2, 1.0);
        let b2 = uniform("b2", 2, 2.0);
        let d = diff(&mean(&[&a1, &a2]).unwrap(), &mean(&[&b1, &b2]).unwrap());
        d.validate().unwrap();
        assert!(d
            .severity()
            .values()
            .iter()
            .all(|&v| (v - 1.5).abs() < 1e-12));
        assert_eq!(
            d.provenance().label(),
            "difference(mean(a1, a2), mean(b1, b2))"
        );
    }

    #[test]
    fn operators_preserve_validity() {
        let a = with_flops("a", 1.0, 10.0);
        let b = uniform("b", 3, 2.0);
        for e in [
            diff(&a, &b),
            merge(&a, &b),
            mean(&[&a, &b]).unwrap(),
            sum(&[&a, &b]).unwrap(),
            min(&[&a, &b]).unwrap(),
            max(&[&a, &b]).unwrap(),
            scale(&a, -2.0),
        ] {
            e.validate()
                .expect("operator result must be a valid experiment");
        }
    }

    #[test]
    fn scale_negates() {
        let a = uniform("a", 1, 3.0);
        let n = scale(&a, -1.0);
        assert_eq!(n.severity().values()[0], -3.0);
    }

    #[test]
    fn large_arrays_use_parallel_path() {
        // Shape exceeding PAR_THRESHOLD exercises the rayon branch.
        let mut b = ExperimentBuilder::new("big");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let mut parent = b.def_call_node(cs, None);
        let mut nodes = vec![parent];
        for _ in 0..255 {
            parent = b.def_call_node(cs, Some(parent));
            nodes.push(parent);
        }
        let ts = single_threaded_system(&mut b, 300);
        for &c in &nodes {
            b.set_severity(t, c, ts[0], 1.0);
        }
        let big = b.build().unwrap();
        assert!(big.severity().len() >= PAR_THRESHOLD);
        let d = diff(&big, &big);
        assert!(d.severity().values().iter().all(|&v| v == 0.0));
    }
}
