//! Zero-extension of operand severity onto integrated metadata.
//!
//! This is the bridge between the two phases of every operator (see
//! [`crate::ops`]): after [`crate::integrate()`] has produced the
//! integrated metadata and one [`OperandMap`] per operand, each
//! operand's severity array is scattered through its map into a store
//! shaped for the integrated metadata. Tuples the operand never
//! defined — metrics, call paths, or threads contributed only by the
//! *other* operands — stay zero, which is the paper's convention for
//! "this experiment did not measure that": the neutral element of
//! every element-wise operation the operators apply afterwards.
//! Because both phases preserve completeness, the operator's result is
//! again a full experiment — the closure property.

use cube_model::{Experiment, Severity};

use crate::mapping::OperandMap;

/// Scatter an operand's severity values into a store shaped for the
/// integrated metadata. Tuples the operand never defined stay zero —
/// the algebra's zero-extension rule.
///
/// When the mapping is the identity and the shapes agree (the common
/// fast path of equal metadata), the operand's store is cloned directly.
///
/// Distinct operand tuples can map onto one integrated tuple only when
/// the operand itself contains structurally equal siblings; their values
/// are *accumulated*, which is the only meaningful interpretation.
pub fn extend_severity(
    exp: &Experiment,
    map: &OperandMap,
    shape: (usize, usize, usize),
) -> Severity {
    if exp.severity().shape() == shape && map.is_identity() {
        return exp.severity().clone();
    }
    extend_severity_values(exp.severity().values(), exp.severity().shape(), map, shape)
}

/// [`extend_severity`] over a bare value slice in severity layout
/// (thread fastest, metric slowest) with the given source shape.
///
/// This is the scatter entry point for operands that are not full
/// [`Experiment`]s — the batch engine's trait-object sources hand their
/// borrowed severity pages straight in.
pub fn extend_severity_values(
    values: &[f64],
    src_shape: (usize, usize, usize),
    map: &OperandMap,
    shape: (usize, usize, usize),
) -> Severity {
    if src_shape == shape && map.is_identity() {
        return Severity::from_values(shape.0, shape.1, shape.2, values.to_vec());
    }
    let (_, nc, nt) = src_shape;
    let mut out = Severity::zeros(shape.0, shape.1, shape.2);
    // Walk thread rows: one (metric, call node) translation per row,
    // plain slice iteration inside.
    for (r, row) in values.chunks_exact(nt).enumerate() {
        let (m, c) = (r / nc, r % nc);
        for (t, &v) in row.iter().enumerate() {
            if v != 0.0 {
                out.add(map.metrics[m], map.call_nodes[c], map.threads[t], v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{CallNodeId, ExperimentBuilder, MetricId, RegionKind, ThreadId, Unit};

    fn tiny(v: f64) -> Experiment {
        let mut b = ExperimentBuilder::new("tiny");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], v);
        b.build().unwrap()
    }

    #[test]
    fn identity_fast_path_clones() {
        let e = tiny(2.5);
        let map = OperandMap::identity(1, 1, 1);
        let out = extend_severity(&e, &map, (1, 1, 1));
        assert_eq!(out, *e.severity());
    }

    #[test]
    fn scatter_into_larger_shape() {
        let e = tiny(2.5);
        let map = OperandMap {
            metrics: vec![MetricId::new(1)],
            call_nodes: vec![CallNodeId::new(2)],
            threads: vec![ThreadId::new(3)],
        };
        let out = extend_severity(&e, &map, (2, 3, 4));
        assert_eq!(
            out.get(MetricId::new(1), CallNodeId::new(2), ThreadId::new(3)),
            2.5
        );
        assert_eq!(out.values().iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn colliding_tuples_accumulate() {
        let mut b = ExperimentBuilder::new("dup");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let c0 = b.def_call_node(cs, None);
        let c1 = b.def_call_node(cs, None); // structurally equal sibling root
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, c0, ts[0], 1.0);
        b.set_severity(t, c1, ts[0], 2.0);
        let e = b.build().unwrap();
        let map = OperandMap {
            metrics: vec![MetricId::new(0)],
            call_nodes: vec![CallNodeId::new(0), CallNodeId::new(0)],
            threads: vec![ThreadId::new(0)],
        };
        let out = extend_severity(&e, &map, (1, 1, 1));
        assert_eq!(
            out.get(MetricId::new(0), CallNodeId::new(0), ThreadId::new(0)),
            3.0
        );
    }
}
