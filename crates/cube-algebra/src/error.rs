//! Error type of the algebra layer.

use std::error::Error;
use std::fmt;

/// Errors raised by operators.
///
/// Metadata integration itself is total — any two valid experiments can
/// be integrated (whether the result is *useful* is the user's call, as
/// the paper notes about taking the mean of unrelated programs). Errors
/// therefore only concern degenerate argument lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// An n-ary operator (`mean`, `sum`, `min`, `max`) received an empty
    /// operand list.
    EmptyOperandList {
        /// Operator name for the message.
        operator: &'static str,
    },
    /// A batch expression referenced an operand index outside the plan
    /// (see [`crate::batch::Expr::Operand`]).
    OperandOutOfRange {
        /// The offending operand index.
        index: usize,
        /// Number of operands in the plan.
        len: usize,
    },
    /// An operand of a partial evaluation was broken and the policy was
    /// [`Abort`](crate::options::FailurePolicy::Abort).
    OperandFailed {
        /// Zero-based index of the operand in the argument list.
        index: usize,
        /// Why it could not be used (parse error, I/O failure, ...).
        reason: String,
    },
    /// Cached [`PlanTables`](crate::batch::PlanTables) were combined
    /// with an operand list they were not built from.
    PlanMismatch {
        /// What disagreed (operand count or a severity shape).
        reason: String,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyOperandList { operator } => {
                write!(f, "operator '{operator}' requires at least one operand")
            }
            Self::OperandOutOfRange { index, len } => {
                write!(
                    f,
                    "operand index {index} out of range for a plan over {len} operands"
                )
            }
            Self::OperandFailed { index, reason } => {
                write!(f, "operand {index} is unusable: {reason}")
            }
            Self::PlanMismatch { reason } => {
                write!(
                    f,
                    "cached plan tables do not match the operand list: {reason}"
                )
            }
        }
    }
}

impl Error for AlgebraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_operator() {
        let e = AlgebraError::EmptyOperandList { operator: "mean" };
        assert!(e.to_string().contains("mean"));
    }

    #[test]
    fn display_names_offending_index() {
        let e = AlgebraError::OperandOutOfRange { index: 7, len: 3 };
        let msg = e.to_string();
        assert!(msg.contains('7') && msg.contains('3'));
    }
}
