//! Deterministic fuzzing of the expression parser.
//!
//! `parse_expr` fronts the server's `/eval` endpoint, so it reads
//! *untrusted* text: it must never panic, every rejection must carry
//! one of the stable `P00x` codes with an in-bounds offset, and every
//! accepted parse must round-trip through its canonical rendering.
//! The harness mirrors `cube-xml/tests/fuzz_lint.rs`: a seeded LCG
//! mutates, truncates, and splices valid expressions — reproducible
//! without an external fuzzing engine.

use cube_algebra::parse_expr;

/// Minimal linear congruential generator (Numerical Recipes constants);
/// deterministic so every failure is a stable regression test.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Well-formed starting points covering every production.
const SEEDS: &[&str] = &[
    "a",
    "mean(a,b)",
    "diff(mean(a,b),mean(c,d))",
    "scale(sum(run-1,run_2,run.3),0.5)",
    "diff(scale(mean(a,b,c),2.5e-1),min(a,c))",
    "stddev(a,b,c,d,e,f)",
    "diff(diff(a,b),diff(c,d))",
    "max( a , b )",
];

/// Fragments spliced in: operator soup, stray delimiters, deep
/// nesting, non-ASCII, control bytes, numeric edge cases.
const SPLICES: &[&str] = &[
    "mean(",
    "))",
    ",,",
    "scale(",
    "diff(a",
    "1e400",
    "-0.0",
    "NaN",
    "\u{0}\u{1}\u{fffd}",
    "((((((((((((((((",
    "mean()",
    " ",
    "\t\n",
    "ανάλυση",
];

fn check(input: &str) {
    match parse_expr(input) {
        Ok(parsed) => {
            // An accepted parse must round-trip: rendering the
            // canonical form and reparsing yields the same canonical
            // form (the cache-key property the server relies on).
            let canonical = parsed.canonical();
            let again = parse_expr(&canonical)
                .unwrap_or_else(|e| panic!("canonical form must reparse: {canonical:?}: {e}"));
            assert_eq!(
                again.canonical(),
                canonical,
                "canonical rendering must be a fixed point"
            );
            assert!(
                !parsed.operands.is_empty(),
                "a successful parse references at least one operand"
            );
        }
        Err(e) => {
            assert!(
                matches!(
                    e.code,
                    "P001" | "P002" | "P003" | "P004" | "P005" | "P006" | "P007" | "P008" | "P009"
                ),
                "unknown error code {:?} for input {input:?}",
                e.code
            );
            assert!(
                e.offset <= input.len(),
                "offset {} out of bounds for input of {} bytes",
                e.offset,
                input.len()
            );
            // The rendered message is the API's error body; it must
            // carry the code and never panic while formatting.
            assert!(e.to_string().starts_with(e.code));
        }
    }
}

#[test]
fn mutated_expressions_never_panic_the_parser() {
    let mut rng = Lcg(0xa1_9eb7a);
    for round in 0..2000 {
        let seed = SEEDS[round % SEEDS.len()];
        let mut cur = seed.as_bytes().to_vec();
        for _ in 0..=rng.below(3) {
            match rng.below(4) {
                // Flip one byte to a printable character.
                0 => {
                    if !cur.is_empty() {
                        let i = rng.below(cur.len());
                        cur[i] = b' ' + (rng.below(94) as u8);
                    }
                }
                // Truncate at a random point.
                1 => cur.truncate(rng.below(cur.len() + 1)),
                // Splice a fragment at a random point.
                2 => {
                    let at = rng.below(cur.len() + 1);
                    let frag = SPLICES[rng.below(SPLICES.len())];
                    cur.splice(at..at, frag.bytes());
                }
                // Duplicate a random slice (builds nesting depth).
                _ => {
                    if !cur.is_empty() {
                        let a = rng.below(cur.len());
                        let b = a + rng.below(cur.len() - a);
                        let slice: Vec<u8> = cur[a..b].to_vec();
                        let at = rng.below(cur.len() + 1);
                        cur.splice(at..at, slice);
                    }
                }
            }
        }
        // The parser takes &str; mutations that break UTF-8 are the
        // transport layer's problem (the server rejects them first).
        if let Ok(text) = std::str::from_utf8(&cur) {
            check(text);
        }
    }
}

#[test]
fn pathological_depth_is_rejected_not_overflowed() {
    // Far past MAX_DEPTH: the parser must answer P008, not recurse to
    // a stack overflow.
    let deep = format!("{}a{}", "scale(".repeat(10_000), ",2)".repeat(10_000));
    let e = parse_expr(&deep).unwrap_err();
    assert_eq!(e.code, "P008");

    // And exactly at the boundary the parser still works.
    let depth = cube_algebra::parse::MAX_DEPTH;
    let ok = format!("{}a{}", "scale(".repeat(depth - 1), ",2)".repeat(depth - 1));
    assert!(parse_expr(&ok).is_ok(), "depth {} should parse", depth - 1);
}

#[test]
fn every_seed_parses_cleanly() {
    for seed in SEEDS {
        parse_expr(seed).unwrap_or_else(|e| panic!("seed {seed:?} must parse: {e}"));
    }
}
