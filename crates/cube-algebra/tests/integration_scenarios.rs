//! Scenario tests for metadata integration: shapes that exercise the
//! top-down matcher beyond what the unit tests cover — deep trees,
//! duplicate siblings, n-ary folds, recursive-looking chains, and the
//! interaction of system modes with multithreaded operands.

use cube_algebra::{integrate, ops, CallSiteEq, MergeOptions, SystemMergeMode};
use cube_model::builder::single_threaded_system;
use cube_model::{CallNodeId, Experiment, ExperimentBuilder, RegionKind, Unit};

/// Experiment whose call tree is one chain of depth `depth`, all nodes
/// calling the same region (a collapsed recursion, as the paper's data
/// model prescribes for recursive programs).
fn chain(depth: usize, value: f64) -> Experiment {
    let mut b = ExperimentBuilder::new(format!("chain {depth}"));
    let t = b.def_metric("time", Unit::Seconds, "", None);
    let m = b.def_module("rec.rs", "/rec.rs");
    let r = b.def_region("fib", m, RegionKind::Function, 1, 9);
    let cs = b.def_call_site("rec.rs", 5, r);
    let mut parent: Option<CallNodeId> = None;
    let mut nodes = Vec::new();
    for _ in 0..depth {
        let n = b.def_call_node(cs, parent);
        parent = Some(n);
        nodes.push(n);
    }
    let ts = single_threaded_system(&mut b, 1);
    for &n in &nodes {
        b.set_severity(t, n, ts[0], value);
    }
    b.build().unwrap()
}

#[test]
fn chains_of_different_depth_share_their_prefix() {
    let short = chain(3, 1.0);
    let long = chain(7, 2.0);
    let i = integrate(&[&short, &long], MergeOptions::default());
    // The chains match level by level: the union is the longer chain.
    assert_eq!(i.metadata.num_call_nodes(), 7);
    // Every level of the short chain maps onto the same level of the
    // long chain.
    for d in 0..3 {
        assert_eq!(i.maps[0].call_nodes[d], i.maps[1].call_nodes[d]);
    }
    let d = ops::diff(&long, &short);
    d.validate().unwrap();
    // Total: 7*2 − 3*1 = 11.
    assert!((d.severity().values().iter().sum::<f64>() - 11.0).abs() < 1e-12);
}

#[test]
fn nary_fold_is_incremental() {
    // Integrating [a, b, c] must give every operand a total map even
    // when each adds new entities.
    let exps: Vec<Experiment> = (2..5).map(|d| chain(d, 1.0)).collect();
    let refs: Vec<&Experiment> = exps.iter().collect();
    let i = integrate(&refs, MergeOptions::default());
    assert_eq!(i.metadata.num_call_nodes(), 4); // deepest chain wins
    for (op, map) in refs.iter().zip(&i.maps) {
        assert_eq!(map.call_nodes.len(), op.metadata().num_call_nodes());
    }
    let mean = ops::mean(&refs).unwrap();
    mean.validate().unwrap();
    // Level 0 exists in all three → mean 1.0; level 3 only in the
    // deepest → mean 1/3.
    let level0 = mean.severity().values()[0];
    assert!((level0 - 1.0).abs() < 1e-12);
    let level3 = mean.severity().values()[3];
    assert!((level3 - 1.0 / 3.0).abs() < 1e-12);
}

/// Two sibling call paths with the same callee (same region, different
/// call sites under strict equality).
fn twin_siblings(strict_lines: (u32, u32), value: f64) -> Experiment {
    let mut b = ExperimentBuilder::new("twins");
    let t = b.def_metric("time", Unit::Seconds, "", None);
    let m = b.def_module("x.rs", "/x.rs");
    let main_r = b.def_region("main", m, RegionKind::Function, 1, 99);
    let leaf_r = b.def_region("leaf", m, RegionKind::Function, 10, 20);
    let cs_main = b.def_call_site("x.rs", 1, main_r);
    let cs_a = b.def_call_site("x.rs", strict_lines.0, leaf_r);
    let cs_b = b.def_call_site("x.rs", strict_lines.1, leaf_r);
    let root = b.def_call_node(cs_main, None);
    let a = b.def_call_node(cs_a, Some(root));
    let bnode = b.def_call_node(cs_b, Some(root));
    let ts = single_threaded_system(&mut b, 1);
    b.set_severity(t, a, ts[0], value);
    b.set_severity(t, bnode, ts[0], 2.0 * value);
    b.build().unwrap()
}

#[test]
fn duplicate_siblings_collapse_under_callee_equality() {
    // A single operand (or equal operands) takes the identity fast
    // path and is preserved verbatim — even its duplicate siblings.
    let e = twin_siblings((5, 50), 1.0);
    let i = integrate(&[&e], MergeOptions::default());
    assert_eq!(i.metadata.num_call_nodes(), 3);
    assert!(i.maps[0].is_identity());

    // The slow path (different metadata forces real matching) cannot
    // distinguish the two leaf call paths under callee-only equality:
    // they become one shared node and their severity accumulates.
    let other = chain(1, 0.0);
    let i = integrate(&[&e, &other], MergeOptions::default());
    assert_eq!(i.maps[0].call_nodes[1], i.maps[0].call_nodes[2]);
    let d = ops::diff(&e, &other);
    d.validate().unwrap();
    // Twin severities 1.0 and 2.0 accumulate on the shared node.
    let leaf = i.maps[0].call_nodes[1];
    let t = d.metadata().find_metric("time").unwrap();
    assert_eq!(d.severity().row_sum(t, leaf), 3.0);
}

#[test]
fn duplicate_siblings_stay_distinct_under_strict_equality() {
    let e = twin_siblings((5, 50), 1.0);
    let i = integrate(
        &[&e],
        MergeOptions::default().with_call_site_eq(CallSiteEq::Strict),
    );
    assert_eq!(i.metadata.num_call_nodes(), 3);
    // And a before/after pair where one call site moved lines: strict
    // equality splits that site, callee-only matches it.
    let before = twin_siblings((5, 50), 1.0);
    let after = twin_siblings((6, 50), 1.0); // first site moved a line
    let loose = integrate(&[&before, &after], MergeOptions::default());
    assert_eq!(loose.metadata.num_call_nodes(), 2);
    let strict = integrate(
        &[&before, &after],
        MergeOptions::default().with_call_site_eq(CallSiteEq::Strict),
    );
    // main, leaf@5, leaf@50, leaf@6 — the moved site is duplicated.
    assert_eq!(strict.metadata.num_call_nodes(), 4);
}

fn multithreaded(ranks: usize, threads: u32) -> Experiment {
    let mut b = ExperimentBuilder::new("mt");
    let t = b.def_metric("time", Unit::Seconds, "", None);
    let m = b.def_module("a", "a");
    let r = b.def_region("main", m, RegionKind::Function, 1, 1);
    let cs = b.def_call_site("a", 1, r);
    let root = b.def_call_node(cs, None);
    let mach = b.def_machine("M");
    let node = b.def_node("N0", mach);
    for rank in 0..ranks {
        let p = b.def_process(format!("rank {rank}"), rank as i32, node);
        for n in 0..threads {
            let tid = b.def_thread(format!("t{n}"), n, p);
            b.set_severity(t, root, tid, 1.0);
        }
    }
    b.build().unwrap()
}

#[test]
fn collapse_mode_preserves_thread_structure() {
    let a = multithreaded(2, 3);
    let b = multithreaded(3, 2);
    let i = integrate(
        &[&a, &b],
        MergeOptions::default().with_system_mode(SystemMergeMode::Collapse),
    );
    let md = &i.metadata;
    assert_eq!(md.machines().len(), 1);
    assert_eq!(md.nodes().len(), 1);
    assert_eq!(md.processes().len(), 3);
    // Union of thread numbers per rank: ranks 0-1 have {0,1,2}, rank 2
    // has {0,1}.
    assert_eq!(md.num_threads(), 3 + 3 + 2);
    md.validate().unwrap();
    // Severity mass conserved through the remap.
    let s = ops::sum(&[&a, &b]).unwrap();
    let expected = 2.0 * 3.0 + 3.0 * 2.0;
    assert!((s.severity().values().iter().sum::<f64>() - expected).abs() < 1e-12);
}

#[test]
fn copy_first_with_extra_ranks_from_second() {
    let a = multithreaded(2, 1);
    let b = multithreaded(4, 1);
    let i = integrate(
        &[&a, &b],
        MergeOptions::default().with_system_mode(SystemMergeMode::CopyFirst),
    );
    let md = &i.metadata;
    // a's hierarchy copied; b's extra ranks appended to an existing node.
    assert_eq!(md.machines()[0].name, "M");
    assert_eq!(md.processes().len(), 4);
    md.validate().unwrap();
}

#[test]
fn merge_options_do_not_change_totals() {
    let a = twin_siblings((5, 50), 1.0);
    let b = chain(4, 0.5);
    for opts in [
        MergeOptions::default(),
        MergeOptions::default().with_call_site_eq(CallSiteEq::Strict),
        MergeOptions::default().with_system_mode(SystemMergeMode::Collapse),
        MergeOptions::default().with_system_mode(SystemMergeMode::CopyFirst),
    ] {
        let s = ops::sum_with(&[&a, &b], opts).unwrap();
        s.validate().unwrap();
        let total: f64 = s.severity().values().iter().sum();
        assert!(
            (total - (3.0 + 2.0)).abs() < 1e-12,
            "totals invariant under {opts:?}"
        );
    }
}

#[test]
fn integration_is_idempotent_on_its_own_output() {
    // integrate(diff(a,b), diff(a,b)) must take the fast path and
    // change nothing — the closure property at the metadata level.
    let a = twin_siblings((5, 50), 1.0);
    let b = chain(3, 1.0);
    let d = ops::diff(&a, &b);
    let i = integrate(&[&d, &d], MergeOptions::default());
    assert_eq!(&i.metadata, d.metadata());
    assert!(i.maps.iter().all(|m| m.is_identity()));
}
