//! Unit-level properties of the fused SIMD kernels (`cube_algebra::kernel`).
//!
//! Three layers of pinning, all **bitwise** (`f64::to_bits`, never an
//! epsilon):
//!
//! 1. program level — [`kernel::eval_fused`] (tiled lane kernels)
//!    against [`kernel::eval_scalar`] (the per-element oracle), across
//!    every reduction, composite trees, and the SIMD tail lengths
//!    `0 / 1 / LANE−1 / LANE / LANE+1` plus tile boundaries;
//! 2. NaN policy — additive reductions propagate NaN, `min`/`max` drop
//!    it (Rust `f64::min`/`max` semantics), fused and scalar agreeing
//!    bit for bit;
//! 3. plan level — [`BatchPlan::eval`] with fusion on vs off over real
//!    experiments (dense and gather-fallback operands alike).
//!
//! The CI kernel stage runs this suite directly and `make miri` runs it
//! under the interpreter (sizes shrink under miri; the borrow juggling
//! in the tile executor is what miri is there to check).

use std::sync::Mutex;

use cube_algebra::batch::BatchOperand;
use cube_algebra::kernel::{self, KernelProgram, BLOCK_VALUES, LANE, TILE};
use cube_algebra::{BatchPlan, Expr, MergeOptions, Reduction};
use cube_model::builder::single_threaded_system;
use cube_model::{Experiment, ExperimentBuilder, RegionKind, Unit};

/// Serializes the tests that toggle the process-wide fusion switch.
static FUSION_LOCK: Mutex<()> = Mutex::new(());

/// Elements for the parallel-path test: above the 64Ki threshold so
/// `eval_fused` splits into [`BLOCK_VALUES`] blocks (shrunk under miri,
/// where the interpreter makes big sweeps prohibitively slow and the
/// serial tile loop exercises the same borrows).
const BIG: usize = if cfg!(miri) { 3 * TILE + 7 } else { 80_000 };

const ALL_REDUCTIONS: [Reduction; 6] = [
    Reduction::Sum,
    Reduction::Mean,
    Reduction::Min,
    Reduction::Max,
    Reduction::Variance,
    Reduction::Stddev,
];

/// Deterministic value stream with sign changes and magnitude spread.
fn values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mantissa = (state >> 11) as f64 / (1u64 << 53) as f64;
            (mantissa - 0.5) * 1e6
        })
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: element {i} differs bitwise: {x:?} vs {y:?}"
        );
    }
}

/// Runs `prog` through both interpreters and asserts bit-equality.
fn pin(prog: &KernelProgram, data: &[Vec<f64>], what: &str) -> Vec<f64> {
    let n = data.first().map_or(0, Vec::len);
    let sources: Vec<&[f64]> = prog.slots().iter().map(|&i| data[i].as_slice()).collect();
    let mut fused = vec![0.0; n];
    let mut scalar = vec![0.0; n];
    kernel::eval_fused(prog, &sources, &mut fused);
    kernel::eval_scalar(prog, &sources, &mut scalar);
    assert_bits_eq(&fused, &scalar, what);
    fused
}

// ---------------------------------------------------------------------------
// program level: fused == scalar oracle, bitwise
// ---------------------------------------------------------------------------

#[test]
fn every_reduction_matches_the_scalar_oracle() {
    let n = 2 * TILE + LANE + 1;
    let data: Vec<Vec<f64>> = (0..4).map(|s| values(n, s + 1)).collect();
    for r in ALL_REDUCTIONS {
        for k in 1..=4usize {
            let expr = Expr::reduce(r, 0..k);
            let prog = KernelProgram::compile(&expr, 4).unwrap();
            pin(&prog, &data, &format!("{}/{k}", r.name()));
        }
    }
}

#[test]
fn simd_tails_at_lane_and_tile_boundaries() {
    // The lengths the tail rules must get right: empty, sub-lane, the
    // exact lane, lane+1, and the same around the interpreter tile and
    // a parallel block boundary.
    let lengths = [
        0,
        1,
        LANE - 1,
        LANE,
        LANE + 1,
        TILE - 1,
        TILE,
        TILE + 1,
        BLOCK_VALUES - 1,
        BLOCK_VALUES,
        BLOCK_VALUES + 1,
    ];
    let expr = Expr::diff(
        Expr::reduce(Reduction::Mean, [0, 1, 2]),
        Expr::scale(Expr::reduce(Reduction::Stddev, [1, 3]), -0.25),
    );
    let prog = KernelProgram::compile(&expr, 4).unwrap();
    for n in lengths {
        let data: Vec<Vec<f64>> = (0..4).map(|s| values(n, s + 11)).collect();
        pin(&prog, &data, &format!("composite at n={n}"));
    }
}

#[test]
fn parallel_blocks_are_bit_identical_to_the_oracle() {
    let data: Vec<Vec<f64>> = (0..3).map(|s| values(BIG, s + 21)).collect();
    let expr = Expr::diff(
        Expr::reduce(Reduction::Variance, [0, 1, 2]),
        Expr::reduce(Reduction::Max, [0, 2]),
    );
    let prog = KernelProgram::compile(&expr, 3).unwrap();
    pin(&prog, &data, "parallel blocks");
}

#[test]
fn operand_loads_are_deduplicated() {
    // stats-style bundle referencing the same operands repeatedly: the
    // program binds each operand stream once.
    let expr = Expr::diff(
        Expr::reduce(Reduction::Mean, [0, 1]),
        Expr::diff(
            Expr::reduce(Reduction::Min, [0, 1]),
            Expr::reduce(Reduction::Stddev, [1, 0]),
        ),
    );
    let prog = KernelProgram::compile(&expr, 2).unwrap();
    assert_eq!(prog.slots(), &[0, 1]);
    let data: Vec<Vec<f64>> = (0..2).map(|s| values(TILE + 3, s + 31)).collect();
    pin(&prog, &data, "dedup bundle");
}

// ---------------------------------------------------------------------------
// NaN policy
// ---------------------------------------------------------------------------

#[test]
fn nan_policy_additive_propagates_minmax_drops() {
    let n = LANE + 1;
    let mut a = values(n, 41);
    let b = values(n, 42);
    let c = values(n, 43);
    a[0] = f64::NAN;
    a[LANE] = f64::NAN; // one NaN in the lanes, one in the scalar tail
    let data = vec![a, b, c];
    for r in ALL_REDUCTIONS {
        let expr = Expr::reduce(r, 0..3);
        let prog = KernelProgram::compile(&expr, 3).unwrap();
        let out = pin(&prog, &data, &format!("NaN {}", r.name()));
        for &i in &[0, LANE] {
            match r {
                // `f64::min(NaN, x)` returns x: the NaN operand loses
                // whether it lands in a lane or the tail.
                Reduction::Min | Reduction::Max => {
                    assert!(out[i].is_finite(), "{} should drop NaN", r.name())
                }
                _ => assert!(out[i].is_nan(), "{} should propagate NaN", r.name()),
            }
        }
        // Elements without a NaN stay NaN-free either way.
        assert!(out[1].is_finite(), "{} spilled NaN", r.name());
    }
}

#[test]
fn nan_in_a_later_operand_loses_the_min_fold() {
    // Fold order matters for the bit pattern: min(d, NaN) keeps d, and
    // min(NaN, x) yields x. Both directions must agree with the oracle.
    let n = LANE;
    let a = vec![2.0; n];
    let mut b = vec![1.0; n];
    b[0] = f64::NAN;
    let data = vec![a, b];
    let prog = KernelProgram::compile(&Expr::reduce(Reduction::Min, [0, 1]), 2).unwrap();
    let out = pin(&prog, &data, "NaN right side of min");
    assert_eq!(out[0], 2.0);
    assert_eq!(out[1], 1.0);
}

// ---------------------------------------------------------------------------
// plan level: fusion on == fusion off, bitwise, over real experiments
// ---------------------------------------------------------------------------

/// `metrics × calls × ranks` experiment filled from the LCG stream,
/// with optional NaN injection.
fn experiment(name: &str, metrics: usize, calls: usize, ranks: usize, seed: u64) -> Experiment {
    let mut b = ExperimentBuilder::new(name);
    let ms: Vec<_> = (0..metrics)
        .map(|i| b.def_metric(format!("m{i}"), Unit::Seconds, "", None))
        .collect();
    let module = b.def_module("k.rs", "/k.rs");
    let region = b.def_region("work", module, RegionKind::Function, 1, 9);
    let cs = b.def_call_site("k.rs", 2, region);
    let mut parent = None;
    let cns: Vec<_> = (0..calls)
        .map(|_| {
            let n = b.def_call_node(cs, parent);
            parent = Some(n);
            n
        })
        .collect();
    let ts = single_threaded_system(&mut b, ranks);
    let vals = values(metrics * calls * ranks, seed);
    let mut it = vals.iter();
    for &m in &ms {
        for &c in &cns {
            for &t in &ts {
                b.set_severity(m, c, t, *it.next().unwrap());
            }
        }
    }
    b.build().unwrap()
}

fn plan_exprs() -> Vec<(&'static str, Expr)> {
    let mut exprs: Vec<(&'static str, Expr)> = ALL_REDUCTIONS
        .iter()
        .map(|&r| (r.name(), Expr::reduce(r, 0..3)))
        .collect();
    exprs.push(("operand", Expr::Operand(2)));
    exprs.push((
        "diff-of-means",
        Expr::diff(
            Expr::reduce(Reduction::Mean, [0, 1]),
            Expr::reduce(Reduction::Mean, [1, 2]),
        ),
    ));
    exprs.push((
        "scaled-stddev",
        Expr::scale(Expr::reduce(Reduction::Stddev, 0..3), 2.5),
    ));
    exprs.push(("zero", Expr::Zero));
    exprs
}

/// Evaluates with fusion forced on and off under the lock, asserting
/// byte-identical severity values. `expect_fusible: None` skips the
/// path assertion (mixed dense/gather plans fuse some trees, not all).
fn pin_plan(operands: &[&dyn BatchOperand], expr: &Expr, expect_fusible: Option<bool>, what: &str) {
    let _guard = FUSION_LOCK.lock().unwrap();
    let plan = BatchPlan::from_operands(operands, MergeOptions::default());
    kernel::set_fusion(true);
    if let Some(expect) = expect_fusible {
        assert_eq!(plan.fusible(expr), expect, "{what}: fusible()");
    }
    let fused = plan.eval(expr).unwrap();
    kernel::set_fusion(false);
    assert!(!plan.fusible(expr), "{what}: fusible() with fusion off");
    let unfused = plan.eval(expr).unwrap();
    kernel::set_fusion(true);
    assert_bits_eq(fused.severity().values(), unfused.severity().values(), what);
    assert_eq!(
        fused.provenance().label(),
        unfused.provenance().label(),
        "{what}: provenance"
    );
}

#[test]
fn fused_plan_matches_unfused_on_dense_operands() {
    let (calls, ranks) = if cfg!(miri) { (3, 5) } else { (9, 31) };
    let exps: Vec<Experiment> = (0..3)
        .map(|i| experiment("dense", 4, calls, ranks, 100 + i))
        .collect();
    let operands: Vec<&dyn BatchOperand> = exps.iter().map(|e| e as &dyn BatchOperand).collect();
    for (name, expr) in plan_exprs() {
        pin_plan(&operands, &expr, Some(true), &format!("dense/{name}"));
    }
}

#[test]
fn fused_plan_matches_unfused_with_nan_values() {
    let mut exps: Vec<Experiment> = (0..3)
        .map(|i| experiment("nan", 2, 4, 5, 200 + i))
        .collect();
    // Poison a few positions of operand 1 in place.
    let e = &mut exps[1];
    let poisoned = {
        let vals = e.severity_mut().values_mut();
        vals[0] = f64::NAN;
        let mid = vals.len() / 2;
        vals[mid] = f64::NAN;
        true
    };
    assert!(poisoned);
    let operands: Vec<&dyn BatchOperand> = exps.iter().map(|e| e as &dyn BatchOperand).collect();
    for (name, expr) in plan_exprs() {
        pin_plan(&operands, &expr, Some(true), &format!("nan/{name}"));
    }
}

#[test]
fn gather_operands_fall_back_and_still_agree() {
    // Different call-tree depths: integration extends the shallower
    // operands, and differing thread counts force a Gather source, so
    // the fused path must decline and the tree walker must answer.
    let a = experiment("deep", 2, 6, 4, 301);
    let b = experiment("shallow", 2, 3, 2, 302);
    let c = experiment("mid", 2, 4, 4, 303);
    let operands: Vec<&dyn BatchOperand> = [&a, &b, &c]
        .iter()
        .map(|e| *e as &dyn BatchOperand)
        .collect();
    let plan = BatchPlan::from_operands(&operands, MergeOptions::default());
    let expr = Expr::reduce(Reduction::Mean, 0..3);
    let fusible = {
        let _guard = FUSION_LOCK.lock().unwrap();
        kernel::set_fusion(true);
        plan.fusible(&expr)
    };
    // At least one operand needs gathering here; the plan must say so.
    assert!(!fusible, "gathered operands cannot fuse");
    // Trees that only touch dense operands (or none, like zero()) may
    // still fuse; only the byte-identity is asserted here.
    for (name, expr) in plan_exprs() {
        pin_plan(&operands, &expr, None, &format!("gather/{name}"));
    }
}

#[test]
fn fused_plan_parallel_path_matches_unfused() {
    // One metric, one call node, BIG ranks: crosses the parallel
    // threshold so the fused block driver and the unfused blocked
    // kernels both engage.
    if cfg!(miri) {
        return; // builder-heavy; the small dense test covers miri
    }
    let exps: Vec<Experiment> = (0..2)
        .map(|i| experiment("big", 1, 1, BIG, 400 + i))
        .collect();
    let operands: Vec<&dyn BatchOperand> = exps.iter().map(|e| e as &dyn BatchOperand).collect();
    let expr = Expr::diff(
        Expr::reduce(Reduction::Stddev, [0, 1]),
        Expr::scale(Expr::reduce(Reduction::Sum, [0, 1]), 0.125),
    );
    pin_plan(&operands, &expr, Some(true), "big parallel composite");
}
