//! Batch engine vs pairwise fold, scaling in the series length k.
//!
//! The batch engine (`cube_algebra::batch::BatchPlan`) integrates
//! metadata once and reduces all k operands in a single pass; the
//! pairwise oracle (`cube_algebra::batch::pairwise`) folds the same
//! series through k−1 binary merges, re-running integration and
//! re-allocating zero-extended arrays at every step. The gap between
//! the two, at the `metadata_merge` bench shapes, is the acceptance
//! number recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cube_algebra::batch::{pairwise, BatchPlan, Expr, Reduction};
use cube_algebra::{ops, MergeOptions};
use cube_bench::{synthetic_experiment, synthetic_overlapping, SyntheticShape};
use cube_model::Experiment;

const SHAPE: SyntheticShape = SyntheticShape {
    metrics: 12,
    call_nodes: 200,
    threads: 16,
};

fn series(shape: SyntheticShape, k: usize) -> Vec<Experiment> {
    (0..k as u64)
        .map(|i| synthetic_experiment(shape, i))
        .collect()
}

/// Batch vs pairwise `mean` over k equal-metadata runs — the noisy-run
/// series from the paper's §5.1, and the acceptance measurement.
fn bench_mean_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_mean");
    for k in [4usize, 8, 16, 32] {
        let runs = series(SHAPE, k);
        let refs: Vec<&Experiment> = runs.iter().collect();
        group.bench_with_input(BenchmarkId::new("batch", k), &k, |bench, _| {
            bench.iter(|| ops::mean(black_box(&refs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pairwise", k), &k, |bench, _| {
            bench.iter(|| pairwise::mean(black_box(&refs), MergeOptions::default()).unwrap())
        });
    }
    group.finish();
}

/// k=32 across all three `metadata_merge` call-tree sizes — how the
/// batch-vs-pairwise gap widens as the arrays (and the metadata the
/// pairwise fold re-clones every step) grow.
fn bench_shape_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_mean_shapes");
    for call_nodes in [50usize, 200, 800] {
        let shape = SyntheticShape {
            metrics: 12,
            call_nodes,
            threads: 16,
        };
        let runs = series(shape, 32);
        let refs: Vec<&Experiment> = runs.iter().collect();
        group.bench_with_input(
            BenchmarkId::new("batch", call_nodes),
            &call_nodes,
            |bench, _| bench.iter(|| ops::mean(black_box(&refs)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("pairwise", call_nodes),
            &call_nodes,
            |bench, _| {
                bench.iter(|| pairwise::mean(black_box(&refs), MergeOptions::default()).unwrap())
            },
        );
    }
    group.finish();
}

/// Same comparison over structurally overlapping metadata (~half the
/// call tree shared), where every integration step does real merge
/// work and each operand reads through a gather table.
fn bench_overlapping_metadata(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_mean_overlapping");
    for k in [8usize, 32] {
        let runs: Vec<Experiment> = (0..k as u64)
            .map(|i| {
                if i % 2 == 0 {
                    synthetic_experiment(SHAPE, i)
                } else {
                    synthetic_overlapping(SHAPE, i)
                }
            })
            .collect();
        let refs: Vec<&Experiment> = runs.iter().collect();
        group.bench_with_input(BenchmarkId::new("batch", k), &k, |bench, _| {
            bench.iter(|| ops::mean(black_box(&refs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pairwise", k), &k, |bench, _| {
            bench.iter(|| pairwise::mean(black_box(&refs), MergeOptions::default()).unwrap())
        });
    }
    group.finish();
}

/// The composite `diff(mean(A…), mean(B…))` evaluated on one plan
/// versus three separate operator calls.
fn bench_composite(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_composite");
    let k = 16usize;
    let runs = series(SHAPE, 2 * k);
    let refs: Vec<&Experiment> = runs.iter().collect();
    group.bench_function("one_plan", |bench| {
        bench.iter(|| {
            let plan = BatchPlan::new(black_box(&refs));
            plan.eval(&Expr::diff(
                Expr::reduce(Reduction::Mean, 0..k),
                Expr::reduce(Reduction::Mean, k..2 * k),
            ))
            .unwrap()
        })
    });
    group.bench_function("three_operator_calls", |bench| {
        bench.iter(|| {
            let a = ops::mean(black_box(&refs[..k])).unwrap();
            let b = ops::mean(black_box(&refs[k..])).unwrap();
            ops::diff(&a, &b)
        })
    });
    group.finish();
}

/// Reusing one plan for several reductions amortizes integration and
/// the gather tables across statistics — the "report generation" case.
fn bench_plan_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_plan_reuse");
    let runs = series(SHAPE, 16);
    let refs: Vec<&Experiment> = runs.iter().collect();
    group.bench_function("mean_min_max_stddev_one_plan", |bench| {
        bench.iter(|| {
            let plan = BatchPlan::new(black_box(&refs));
            (
                plan.reduce(Reduction::Mean).unwrap(),
                plan.reduce(Reduction::Min).unwrap(),
                plan.reduce(Reduction::Max).unwrap(),
                plan.reduce(Reduction::Stddev).unwrap(),
            )
        })
    });
    group.bench_function("mean_min_max_stddev_separate", |bench| {
        bench.iter(|| {
            (
                ops::mean(black_box(&refs)).unwrap(),
                ops::min(black_box(&refs)).unwrap(),
                ops::max(black_box(&refs)).unwrap(),
                cube_algebra::stats::stddev(black_box(&refs)).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mean_scaling,
    bench_shape_sweep,
    bench_overlapping_metadata,
    bench_composite,
    bench_plan_reuse
);
criterion_main!(benches);
