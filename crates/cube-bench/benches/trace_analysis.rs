//! EXPERT analysis throughput and the trace-size trade-off.
//!
//! * `analyze/pescan_iters` — pattern search cost vs trace length;
//! * `codec/...` — encode/decode throughput of the EPILOG codec;
//! * `trace_size` (reported via stdout once) — the §5.2 motivation:
//!   attaching hardware counters to every event inflates the trace,
//!   which is why counters are better collected as CONE profiles and
//!   *merged*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use epilog::{CounterDef, Trace};
use expert::{analyze, AnalyzeOptions};
use simmpi::apps::{pescan, PescanConfig};
use simmpi::{simulate, EpilogTracer, MachineModel};

fn traced(iterations: usize) -> Trace {
    let program = pescan(&PescanConfig {
        iterations,
        ..PescanConfig::default()
    });
    let mut tracer = EpilogTracer::new("cluster", 4);
    simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
    tracer.into_trace()
}

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");
    for iters in [10usize, 30, 90] {
        let trace = traced(iters);
        group.throughput(Throughput::Elements(trace.events.len() as u64));
        group.bench_with_input(BenchmarkId::new("pescan_iters", iters), &iters, |b, _| {
            b.iter(|| analyze(black_box(&trace), &AnalyzeOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let trace = traced(30);
    let bytes = epilog::encode_trace(&trace);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| epilog::encode_trace(black_box(&trace)))
    });
    group.bench_function("decode", |b| {
        b.iter(|| epilog::decode_trace(black_box(bytes.clone())).unwrap())
    });

    // Report the per-event counter blowup once (size, not time).
    let mut with_counters = trace.clone();
    for name in ["PAPI_TOT_CYC", "PAPI_FP_INS"] {
        with_counters
            .defs
            .counters
            .push(CounterDef { name: name.into() });
    }
    for e in &mut with_counters.events {
        e.counters = vec![0, 0];
    }
    let plain = epilog::encode_trace(&trace).len();
    let fat = epilog::encode_trace(&with_counters).len();
    println!(
        "trace_size: {} events; plain = {plain} bytes, with 2 counters/event = {fat} bytes \
         ({:.2}x) — the paper's motivation for profiling counters separately and merging",
        trace.events.len(),
        fat as f64 / plain as f64
    );
    group.finish();
}

criterion_group!(benches, bench_analyze, bench_codec);
criterion_main!(benches);
