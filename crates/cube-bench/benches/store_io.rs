//! Throughput of the `.cubec` columnar store pipelines.
//!
//! Three tracked shapes mirror the `xml_roundtrip` bench exactly, so
//! the store's speedups read directly as cross-group ratios:
//!
//! * `store/roundtrip/*` — encode + strict decode in memory, the
//!   analogue of an XML write + read pair.
//! * `store/cold_open/*` — [`cube_store::ColumnarExperiment::open`] on
//!   a file on disk: header, metadata and chunk-CRC table only, no
//!   severity pages. This is the number the lazy design exists for;
//!   the CI gate holds it an order of magnitude under
//!   `xml/read-stream/large`.
//! * `store/batch_from_store/*` — a batch mean gathered straight from
//!   pre-opened store handles ([`cube_algebra::BatchPlan`] over
//!   [`cube_algebra::BatchOperand`]s), the serving-path workload.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cube_algebra::{BatchOperand, BatchPlan, Expr, MergeOptions, Reduction};
use cube_bench::{synthetic_experiment, SyntheticShape};
use cube_store::ColumnarExperiment;

const SIZES: [(&str, usize); 3] = [("small", 1), ("medium", 4), ("large", 8)];

fn shape(n: usize) -> SyntheticShape {
    SyntheticShape {
        metrics: 2 * n,
        call_nodes: 20 * n,
        threads: 4 * n,
    }
}

fn bench_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("cube_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut group = c.benchmark_group("store");
    for (label, n) in SIZES {
        let e = synthetic_experiment(shape(n), 1);
        let bytes = cube_store::write_store(&e);
        group.throughput(Throughput::Bytes(bytes.len() as u64));

        group.bench_with_input(BenchmarkId::new("roundtrip", label), &n, |bench, _| {
            bench.iter(|| {
                let encoded = cube_store::write_store(black_box(&e));
                cube_store::read_store(black_box(&encoded), &cube_xml::ReadLimits::default())
                    .unwrap()
            })
        });

        let path = dir.join(format!("{label}.cubec"));
        cube_store::write_store_file(&e, &path).unwrap();
        group.bench_with_input(BenchmarkId::new("cold_open", label), &n, |bench, _| {
            bench.iter(|| ColumnarExperiment::open(black_box(&path)).unwrap())
        });

        // Four runs of the same shape, packed, lazily opened, severity
        // pages loaded once outside the timed loop: the loop measures
        // the integrate-and-gather work alone, as `cube stats` over
        // `.cubec` operands runs it.
        let handles: Vec<ColumnarExperiment> = (0..4)
            .map(|i| {
                let run = synthetic_experiment(shape(n), i);
                let p = dir.join(format!("{label}_run{i}.cubec"));
                cube_store::write_store_file(&run, &p).unwrap();
                let h = ColumnarExperiment::open(&p).unwrap();
                h.severity().unwrap();
                h
            })
            .collect();
        let expr = Expr::reduce(Reduction::Mean, 0..handles.len());
        group.bench_with_input(
            BenchmarkId::new("batch_from_store", label),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let ops: Vec<&dyn BatchOperand> =
                        handles.iter().map(|h| h as &dyn BatchOperand).collect();
                    BatchPlan::from_operands(black_box(&ops), MergeOptions::default())
                        .eval(black_box(&expr))
                        .unwrap()
                })
            },
        );
    }
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
