//! Operator cost vs experiment size, and the metadata fast/slow paths.
//!
//! * `diff/equal_metadata/N` — identical metadata: integration takes the
//!   fast path (identity maps, clone), leaving the element-wise
//!   subtraction as the dominant cost.
//! * `diff/overlapping_metadata/N` — realistic integration: structural
//!   merge plus severity scatter.
//! * `diff/disjoint_metadata/N` — worst case: nothing matches, the
//!   result is twice as large.
//! * `mean/series_k` — n-ary reduction over a 10-run series.
//! * `merge/...` — the per-metric first-wins selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cube_algebra::ops;
use cube_bench::{synthetic_disjoint, synthetic_experiment, synthetic_overlapping, SyntheticShape};

fn shape(n: usize) -> SyntheticShape {
    // n scales all three dimensions; tuple count grows as ~n^3 * 160.
    SyntheticShape {
        metrics: 2 * n,
        call_nodes: 20 * n,
        threads: 4 * n,
    }
}

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff");
    for n in [1usize, 2, 4, 8] {
        let s = shape(n);
        let tuples = (s.metrics * s.call_nodes * s.threads) as u64;
        group.throughput(Throughput::Elements(tuples));

        let a = synthetic_experiment(s, 1);
        let b = synthetic_experiment(s, 2);
        group.bench_with_input(BenchmarkId::new("equal_metadata", n), &n, |bench, _| {
            bench.iter(|| ops::diff(black_box(&a), black_box(&b)))
        });

        let o = synthetic_overlapping(s, 3);
        group.bench_with_input(
            BenchmarkId::new("overlapping_metadata", n),
            &n,
            |bench, _| bench.iter(|| ops::diff(black_box(&a), black_box(&o))),
        );

        let d = synthetic_disjoint(s, 4);
        group.bench_with_input(BenchmarkId::new("disjoint_metadata", n), &n, |bench, _| {
            bench.iter(|| ops::diff(black_box(&a), black_box(&d)))
        });
    }
    group.finish();
}

fn bench_mean(c: &mut Criterion) {
    let mut group = c.benchmark_group("mean");
    let s = shape(4);
    for k in [2usize, 5, 10] {
        let series: Vec<_> = (0..k as u64).map(|i| synthetic_experiment(s, i)).collect();
        let refs: Vec<&cube_model::Experiment> = series.iter().collect();
        group.bench_with_input(BenchmarkId::new("series", k), &k, |bench, _| {
            bench.iter(|| ops::mean(black_box(&refs)).unwrap())
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    for n in [1usize, 4] {
        let s = shape(n);
        let a = synthetic_experiment(s, 1);
        let d = synthetic_disjoint(s, 2);
        group.bench_with_input(BenchmarkId::new("disjoint_metrics", n), &n, |bench, _| {
            bench.iter(|| ops::merge(black_box(&a), black_box(&d)))
        });
        let b = synthetic_experiment(s, 3);
        group.bench_with_input(BenchmarkId::new("shared_metrics", n), &n, |bench, _| {
            bench.iter(|| ops::merge(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diff, bench_mean, bench_merge);
criterion_main!(benches);
