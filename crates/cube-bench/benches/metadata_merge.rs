//! Scaling of metadata integration (the structural merge) alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cube_algebra::{integrate, CallSiteEq, MergeOptions};
use cube_bench::{synthetic_experiment, synthetic_overlapping, SyntheticShape};

fn bench_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("metadata_integration");
    for call_nodes in [50usize, 200, 800] {
        let s = SyntheticShape {
            metrics: 12,
            call_nodes,
            threads: 16,
        };
        let a = synthetic_experiment(s, 1);
        let o = synthetic_overlapping(s, 2);
        group.bench_with_input(
            BenchmarkId::new("two_overlapping", call_nodes),
            &call_nodes,
            |bench, _| bench.iter(|| integrate(black_box(&[&a, &o]), MergeOptions::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("strict_call_sites", call_nodes),
            &call_nodes,
            |bench, _| {
                bench.iter(|| {
                    integrate(
                        black_box(&[&a, &o]),
                        MergeOptions::default().with_call_site_eq(CallSiteEq::Strict),
                    )
                })
            },
        );
    }
    // n-ary integration: a 10-run series with equal metadata exercises
    // the fast path.
    let s = SyntheticShape {
        metrics: 12,
        call_nodes: 200,
        threads: 16,
    };
    let series: Vec<_> = (0..10u64).map(|i| synthetic_experiment(s, i)).collect();
    let refs: Vec<&cube_model::Experiment> = series.iter().collect();
    group.bench_function("ten_equal_fast_path", |bench| {
        bench.iter(|| integrate(black_box(&refs), MergeOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_integration);
criterion_main!(benches);
