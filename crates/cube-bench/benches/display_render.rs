//! Rendering cost of the display engine, and the baseline
//! (Karavanic–Miller list difference) vs the closed diff.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cube_algebra::{baseline::performance_difference, ops};
use cube_bench::{synthetic_experiment, SyntheticShape};
use cube_display::{BrowserState, RenderOptions};

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("display");
    for n in [1usize, 4] {
        let s = SyntheticShape {
            metrics: 2 * n,
            call_nodes: 40 * n,
            threads: 8 * n,
        };
        let e = synthetic_experiment(s, 1);
        let mut state = BrowserState::new(&e);
        state.expand_all(&e);
        group.bench_with_input(BenchmarkId::new("full_view_expanded", n), &n, |b, _| {
            b.iter(|| {
                cube_display::render_view(
                    black_box(&e),
                    black_box(&state),
                    RenderOptions::default(),
                )
            })
        });
        let collapsed = BrowserState::new(&e);
        group.bench_with_input(BenchmarkId::new("full_view_collapsed", n), &n, |b, _| {
            b.iter(|| {
                cube_display::render_view(
                    black_box(&e),
                    black_box(&collapsed),
                    RenderOptions::default(),
                )
            })
        });
    }
    group.finish();
}

fn bench_baseline_vs_closed_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("difference_operators");
    let s = SyntheticShape {
        metrics: 8,
        call_nodes: 80,
        threads: 16,
    };
    let a = synthetic_experiment(s, 1);
    let b = synthetic_experiment(s, 2);
    group.bench_function("cube_closed_diff", |bench| {
        bench.iter(|| ops::diff(black_box(&a), black_box(&b)))
    });
    group.bench_function("karavanic_miller_list", |bench| {
        bench.iter(|| performance_difference(black_box(&a), black_box(&b), 1.0))
    });
    group.finish();
}

criterion_group!(benches, bench_render, bench_baseline_vs_closed_diff);
criterion_main!(benches);
