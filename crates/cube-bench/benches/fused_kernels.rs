//! Fused single-pass kernels vs the unfused tree walker vs the
//! per-operator CLI composition, at 64K and 1M elements.
//!
//! The composite under test is the ISSUE-10 acceptance expression —
//! `diff(mean(A,B), mean(C,D))` — plus a stats-style `stddev` bundle:
//!
//! * `composite_fused`      — one `BatchPlan::eval` with fusion on:
//!   one traversal, four operand streams, no intermediates;
//! * `composite_unfused`    — the same plan with fusion off: one
//!   blocked pass (plus an allocation) per operator node;
//! * `composite_per_operator` — `ops::mean` + `ops::mean` + `ops::diff`,
//!   the way a shell pipeline composes the CLI: every step re-integrates
//!   metadata and materializes a full experiment.
//!
//! The acceptance bar (EXPERIMENTS.md) is fused ≥ 1.5× faster than the
//! per-operator path at 1M elements; the CI differential gate separately
//! pins that all three produce byte-identical severity values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cube_algebra::batch::{BatchOperand, BatchPlan, Expr, Reduction};
use cube_algebra::{kernel, ops, MergeOptions};
use cube_bench::{synthetic_experiment, SyntheticShape};
use cube_model::Experiment;

/// 64Ki and 1Mi severity values per operand.
const SIZES: [(usize, SyntheticShape); 2] = [
    (
        65_536,
        SyntheticShape {
            metrics: 4,
            call_nodes: 256,
            threads: 64,
        },
    ),
    (
        1_048_576,
        SyntheticShape {
            metrics: 16,
            call_nodes: 256,
            threads: 256,
        },
    ),
];

fn series(shape: SyntheticShape, k: usize) -> Vec<Experiment> {
    (0..k as u64)
        .map(|i| synthetic_experiment(shape, i))
        .collect()
}

fn composite_expr() -> Expr {
    Expr::diff(
        Expr::reduce(Reduction::Mean, 0..2),
        Expr::reduce(Reduction::Mean, 2..4),
    )
}

fn bench_composite(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_kernels");
    for (n, shape) in SIZES {
        let runs = series(shape, 4);
        let operands: Vec<&dyn BatchOperand> =
            runs.iter().map(|e| e as &dyn BatchOperand).collect();
        let plan = BatchPlan::from_operands(&operands, MergeOptions::default());
        let expr = composite_expr();
        kernel::set_fusion(true);
        assert!(plan.fusible(&expr), "composite must take the fused path");
        group.bench_with_input(BenchmarkId::new("composite_fused", n), &n, |bench, _| {
            bench.iter(|| plan.eval(black_box(&expr)).unwrap())
        });
        kernel::set_fusion(false);
        group.bench_with_input(BenchmarkId::new("composite_unfused", n), &n, |bench, _| {
            bench.iter(|| plan.eval(black_box(&expr)).unwrap())
        });
        kernel::set_fusion(true);
        let refs: Vec<&Experiment> = runs.iter().collect();
        group.bench_with_input(
            BenchmarkId::new("composite_per_operator", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let a = ops::mean(black_box(&refs[..2])).unwrap();
                    let b = ops::mean(black_box(&refs[2..])).unwrap();
                    ops::diff(&a, &b)
                })
            },
        );
    }
    group.finish();
}

fn bench_stats_bundle(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_kernels");
    for (n, shape) in SIZES {
        let runs = series(shape, 4);
        let operands: Vec<&dyn BatchOperand> =
            runs.iter().map(|e| e as &dyn BatchOperand).collect();
        let plan = BatchPlan::from_operands(&operands, MergeOptions::default());
        let expr = Expr::reduce(Reduction::Stddev, 0..4);
        kernel::set_fusion(true);
        assert!(plan.fusible(&expr), "stats bundle must take the fused path");
        group.bench_with_input(BenchmarkId::new("stddev_fused", n), &n, |bench, _| {
            bench.iter(|| plan.eval(black_box(&expr)).unwrap())
        });
        kernel::set_fusion(false);
        group.bench_with_input(BenchmarkId::new("stddev_unfused", n), &n, |bench, _| {
            bench.iter(|| plan.eval(black_box(&expr)).unwrap())
        });
        kernel::set_fusion(true);
    }
    group.finish();
}

criterion_group!(benches, bench_composite, bench_stats_bundle);
criterion_main!(benches);
