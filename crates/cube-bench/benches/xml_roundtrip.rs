//! Throughput of the `.cube` XML pipelines: streaming vs DOM.
//!
//! For each shape the bench times all four directions — streaming
//! write/read (`write_experiment` / `read_experiment`) and DOM
//! write/read (`write_experiment_dom` / `read_experiment_dom`) — over
//! the same document, so the streaming speedup is directly the ratio
//! of the paired lines.
//!
//! A counting global allocator additionally reports, outside the timed
//! loops, the *peak transient heap* of one write and one read per
//! pipeline: allocations live during the call beyond its inputs and
//! retained result. Streaming should stay O(row); the DOM holds the
//! whole element tree.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cube_bench::{synthetic_experiment, SyntheticShape};

// ---------------------------------------------------------------------------
// counting allocator (measurement only; never used inside timed loops)
// ---------------------------------------------------------------------------

struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak heap growth over the baseline while `f` runs, minus whatever
/// `f`'s retained result still holds (reported separately by the
/// caller dropping it afterwards).
fn peak_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let baseline = CURRENT.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (peak.saturating_sub(baseline), r)
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

// ---------------------------------------------------------------------------
// the bench
// ---------------------------------------------------------------------------

const SIZES: [(&str, usize); 3] = [("small", 1), ("medium", 4), ("large", 8)];

fn shape(n: usize) -> SyntheticShape {
    SyntheticShape {
        metrics: 2 * n,
        call_nodes: 20 * n,
        threads: 4 * n,
    }
}

fn report_peak_memory() {
    eprintln!("xml peak transient heap (beyond inputs; result included for writes/reads):");
    for (label, n) in SIZES {
        let e = synthetic_experiment(shape(n), 1);
        let text = cube_xml::write_experiment(&e);

        let (w_stream, out) = peak_during(|| cube_xml::write_experiment(&e));
        drop(out);
        let (w_dom, out) = peak_during(|| cube_xml::format::write_experiment_dom(&e));
        drop(out);
        let (r_stream, out) = peak_during(|| cube_xml::read_experiment(&text).unwrap());
        drop(out);
        let (r_dom, out) = peak_during(|| cube_xml::format::read_experiment_dom(&text).unwrap());
        drop(out);

        eprintln!(
            "  {label:<6} ({:>9} bytes xml): write stream {:>7.3} MiB vs dom {:>7.3} MiB | \
             read stream {:>7.3} MiB vs dom {:>7.3} MiB",
            text.len(),
            mib(w_stream),
            mib(w_dom),
            mib(r_stream),
            mib(r_dom),
        );
    }
}

fn bench_xml(c: &mut Criterion) {
    report_peak_memory();

    let mut group = c.benchmark_group("xml");
    for (label, n) in SIZES {
        let e = synthetic_experiment(shape(n), 1);
        let text = cube_xml::write_experiment(&e);
        assert_eq!(
            text,
            cube_xml::format::write_experiment_dom(&e),
            "pipelines must serialize identically"
        );
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("write-stream", label), &n, |bench, _| {
            bench.iter(|| cube_xml::write_experiment(black_box(&e)))
        });
        group.bench_with_input(BenchmarkId::new("write-dom", label), &n, |bench, _| {
            bench.iter(|| cube_xml::format::write_experiment_dom(black_box(&e)))
        });
        group.bench_with_input(BenchmarkId::new("read-stream", label), &n, |bench, _| {
            bench.iter(|| cube_xml::read_experiment(black_box(&text)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("read-dom", label), &n, |bench, _| {
            bench.iter(|| cube_xml::format::read_experiment_dom(black_box(&text)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
