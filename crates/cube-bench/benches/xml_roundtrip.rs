//! Throughput of the `.cube` XML writer and reader.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cube_bench::{synthetic_experiment, SyntheticShape};

fn bench_xml(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml");
    for n in [1usize, 4, 8] {
        let s = SyntheticShape {
            metrics: 2 * n,
            call_nodes: 20 * n,
            threads: 4 * n,
        };
        let e = synthetic_experiment(s, 1);
        let text = cube_xml::write_experiment(&e);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("write", n), &n, |bench, _| {
            bench.iter(|| cube_xml::write_experiment(black_box(&e)))
        });
        group.bench_with_input(BenchmarkId::new("read", n), &n, |bench, _| {
            bench.iter(|| cube_xml::read_experiment(black_box(&text)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
