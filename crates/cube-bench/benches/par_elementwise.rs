//! Ablation: Rayon data-parallel element-wise arithmetic vs serial.
//!
//! The operators switch to `par_iter` above a threshold; this bench
//! justifies both the parallel path (large arrays) and the threshold
//! (small arrays would lose to fork/join overhead). Serial baselines
//! are hand-rolled here; the library path is exercised through
//! `ops::diff` on equal metadata, where the element-wise kernel
//! dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rayon::prelude::*;
use std::hint::black_box;

use cube_algebra::ops;
use cube_bench::{synthetic_experiment, SyntheticShape};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise_kernel");
    for len in [1usize << 12, 1 << 16, 1 << 20] {
        let a: Vec<f64> = (0..len).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..len).map(|i| (i * 7 % 13) as f64).collect();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("serial", len), &len, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                for (d, s) in dst.iter_mut().zip(&b) {
                    *d -= *s;
                }
                black_box(dst)
            })
        });
        group.bench_with_input(BenchmarkId::new("rayon", len), &len, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                dst.par_iter_mut()
                    .zip(b.par_iter())
                    .for_each(|(d, s)| *d -= *s);
                black_box(dst)
            })
        });
    }
    group.finish();
}

fn bench_operator_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_kernel_path");
    // Below threshold (serial) and above threshold (parallel).
    for (label, n) in [("below_threshold", 2usize), ("above_threshold", 10)] {
        let s = SyntheticShape {
            metrics: 2 * n,
            call_nodes: 20 * n,
            threads: 4 * n,
        };
        let a = synthetic_experiment(s, 1);
        let b = synthetic_experiment(s, 2);
        group.throughput(Throughput::Elements(
            (s.metrics * s.call_nodes * s.threads) as u64,
        ));
        group.bench_function(label, |bench| {
            bench.iter(|| ops::diff(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

/// Thread-count scaling of the parallel kernels: the same `mean` and
/// element-wise subtraction workloads timed with the worker pool pinned
/// to 1, 2, 4, and 8 threads (`rayon::set_threads`, the facade behind
/// `cube --threads N`). Results are byte-identical across the sweep —
/// only the wall clock moves — so this group is the EXPERIMENTS.md
/// scaling table and the data behind the CI speedup check.
fn bench_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_scaling");
    // The largest metadata_merge shape: 12 × 800 × 16 = 153,600
    // elements per operand, comfortably above the parallel threshold.
    let shape = SyntheticShape {
        metrics: 12,
        call_nodes: 800,
        threads: 16,
    };
    let runs: Vec<cube_model::Experiment> =
        (0..8u64).map(|i| synthetic_experiment(shape, i)).collect();
    let refs: Vec<&cube_model::Experiment> = runs.iter().collect();
    let elems = (shape.metrics * shape.call_nodes * shape.threads) as u64;
    for t in [1usize, 2, 4, 8] {
        rayon::set_threads(t);
        group.throughput(Throughput::Elements(elems));
        group.bench_with_input(BenchmarkId::new("mean", t), &t, |bench, _| {
            bench.iter(|| ops::mean(black_box(&refs)).unwrap())
        });
        let a: Vec<f64> = (0..1usize << 20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..1usize << 20).map(|i| (i * 7 % 13) as f64).collect();
        group.throughput(Throughput::Elements(1 << 20));
        group.bench_with_input(BenchmarkId::new("sub_1m", t), &t, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                dst.par_iter_mut()
                    .zip(b.par_iter())
                    .for_each(|(d, s)| *d -= *s);
                black_box(dst)
            })
        });
    }
    rayon::set_threads(1);
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_operator_path,
    bench_pool_scaling
);
criterion_main!(benches);
