//! Differential oracle: the batch engine must produce results
//! *identical* to the legacy pairwise/extend-everything evaluation for
//! every reduction, over randomized synthetic experiment sets.
//!
//! "Identical" is deliberately strict — equal integrated metadata,
//! bit-equal severity values (`==` on the f64 slices, not a tolerance),
//! and equal provenance — because the batch rewiring of
//! `ops::mean`/`sum`/`min`/`max` and `stats::variance`/`stddev` is only
//! sound if nothing observable changed.

use cube_algebra::batch::{pairwise, BatchPlan, Expr, Reduction};
use cube_algebra::{ops, stats, MergeOptions};
use cube_bench::{synthetic_disjoint, synthetic_experiment, synthetic_overlapping, SyntheticShape};
use cube_model::builder::single_threaded_system;
use cube_model::{Experiment, ExperimentBuilder, RegionKind, Unit};

const SHAPE: SyntheticShape = SyntheticShape {
    metrics: 4,
    call_nodes: 24,
    threads: 6,
};

const ALL: [Reduction; 6] = [
    Reduction::Sum,
    Reduction::Mean,
    Reduction::Min,
    Reduction::Max,
    Reduction::Variance,
    Reduction::Stddev,
];

fn oracle(r: Reduction, operands: &[&Experiment]) -> Experiment {
    let o = MergeOptions::default();
    match r {
        Reduction::Sum => pairwise::sum(operands, o),
        Reduction::Mean => pairwise::mean(operands, o),
        Reduction::Min => pairwise::min(operands, o),
        Reduction::Max => pairwise::max(operands, o),
        Reduction::Variance => pairwise::variance(operands, o),
        Reduction::Stddev => pairwise::stddev(operands, o),
    }
    .expect("oracle evaluation succeeds")
}

/// Asserts batch == oracle with no tolerance at all.
fn assert_identical(r: Reduction, operands: &[&Experiment], context: &str) {
    let fast = BatchPlan::new(operands).reduce(r).expect("batch succeeds");
    let slow = oracle(r, operands);
    assert_eq!(
        fast.metadata(),
        slow.metadata(),
        "{context}: {r:?} metadata diverged"
    );
    assert_eq!(
        fast.severity().values(),
        slow.severity().values(),
        "{context}: {r:?} values diverged"
    );
    assert_eq!(
        fast.provenance(),
        slow.provenance(),
        "{context}: {r:?} provenance diverged"
    );
    fast.validate().expect("batch result is a valid experiment");
}

/// Canonical view of an experiment: `(metric path, call path, rank,
/// thread number) -> value`. Two experiments with the same canonical
/// map are equal up to entity-id remapping.
fn canonical(e: &Experiment) -> std::collections::BTreeMap<(String, String, i32, u32), f64> {
    let md = e.metadata();
    let mut out = std::collections::BTreeMap::new();
    for m in md.metric_ids() {
        let mut parts = vec![md.metric(m).name.as_str()];
        let mut cur = m;
        while let Some(p) = md.metric(cur).parent {
            parts.push(md.metric(p).name.as_str());
            cur = p;
        }
        parts.reverse();
        let metric_path = parts.join("/");
        for c in md.call_node_ids() {
            let call_path = md.call_path(c).join("/");
            for t in md.thread_ids() {
                let thread = md.thread(t);
                let rank = md.process(thread.process).rank;
                let prev = out.insert(
                    (metric_path.clone(), call_path.clone(), rank, thread.number),
                    e.severity().get(m, c, t),
                );
                assert!(prev.is_none(), "canonical key collision at {call_path}");
            }
        }
    }
    out
}

/// Asserts batch == oracle up to entity-id remapping: identical
/// canonical severity maps (still bit-equal values per tuple) and
/// identical provenance, but entity *order* inside the metadata is
/// allowed to differ.
fn assert_equivalent(r: Reduction, operands: &[&Experiment], context: &str) {
    let fast = BatchPlan::new(operands).reduce(r).expect("batch succeeds");
    let slow = oracle(r, operands);
    assert_eq!(
        canonical(&fast),
        canonical(&slow),
        "{context}: {r:?} canonical values diverged"
    );
    assert_eq!(
        fast.provenance(),
        slow.provenance(),
        "{context}: {r:?} provenance diverged"
    );
    fast.validate().expect("batch result is a valid experiment");
}

#[test]
fn equal_metadata_series_all_reductions_k1_to_8() {
    for k in 1..=8usize {
        let runs: Vec<Experiment> = (0..k as u64)
            .map(|i| synthetic_experiment(SHAPE, i))
            .collect();
        let refs: Vec<&Experiment> = runs.iter().collect();
        for r in ALL {
            assert_identical(r, &refs, &format!("equal metadata, k={k}"));
        }
    }
}

#[test]
fn disjoint_metadata_series_all_reductions() {
    let a = synthetic_experiment(SHAPE, 1);
    let b = synthetic_disjoint(SHAPE, 2);
    let c = synthetic_disjoint(
        SyntheticShape {
            metrics: 2,
            call_nodes: 9,
            threads: 3,
        },
        3,
    );
    let refs: [&Experiment; 3] = [&a, &b, &c];
    for r in ALL {
        assert_identical(r, &refs, "disjoint metadata");
    }
}

#[test]
fn overlapping_metadata_series_all_reductions() {
    // Partially shared call trees are the one case where the two
    // evaluation orders legitimately disagree on metadata *layout*: the
    // batch engine integrates all operands in one n-ary pass (exactly
    // what the pre-batch `ops::reduce` did, so the public entry points
    // are unchanged bit-for-bit — see `rewired_entry_points_match_the_
    // oracle`), while the binary fold re-discovers entities step by
    // step, appending them in a different order. Both are valid
    // integrations of the same set, so compare up to id remapping; the
    // values themselves must still match exactly, tuple for tuple.
    let runs: Vec<Experiment> = (0..5u64)
        .map(|i| {
            if i % 2 == 0 {
                synthetic_experiment(SHAPE, i)
            } else {
                synthetic_overlapping(SHAPE, i)
            }
        })
        .collect();
    let refs: Vec<&Experiment> = runs.iter().collect();
    for r in ALL {
        assert_equivalent(r, &refs, "overlapping metadata");
    }
}

#[test]
fn mixed_thread_counts_all_reductions() {
    // Same metric/call structure, different system sizes: the batch
    // gather path must zero-extend exactly like the oracle's
    // extend_severity.
    let shapes = [2usize, 6, 4, 1].map(|threads| SyntheticShape {
        metrics: 4,
        call_nodes: 24,
        threads,
    });
    let runs: Vec<Experiment> = shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| synthetic_experiment(s, i as u64))
        .collect();
    let refs: Vec<&Experiment> = runs.iter().collect();
    for r in ALL {
        assert_identical(r, &refs, "mixed thread counts");
    }
}

#[test]
fn rewired_entry_points_match_the_oracle() {
    // The public ops/stats functions now route through the plan; they
    // must still equal the legacy fold bit-for-bit.
    let runs: Vec<Experiment> = (0..4u64).map(|i| synthetic_experiment(SHAPE, i)).collect();
    let refs: Vec<&Experiment> = runs.iter().collect();
    let o = MergeOptions::default();
    let cases: [(Experiment, Experiment); 6] = [
        (ops::sum(&refs).unwrap(), pairwise::sum(&refs, o).unwrap()),
        (ops::mean(&refs).unwrap(), pairwise::mean(&refs, o).unwrap()),
        (ops::min(&refs).unwrap(), pairwise::min(&refs, o).unwrap()),
        (ops::max(&refs).unwrap(), pairwise::max(&refs, o).unwrap()),
        (
            stats::variance(&refs).unwrap(),
            pairwise::variance(&refs, o).unwrap(),
        ),
        (
            stats::stddev(&refs).unwrap(),
            pairwise::stddev(&refs, o).unwrap(),
        ),
    ];
    for (fast, slow) in &cases {
        assert_eq!(fast.metadata(), slow.metadata());
        assert_eq!(fast.severity().values(), slow.severity().values());
        assert_eq!(fast.provenance(), slow.provenance());
    }
}

#[test]
fn composite_expression_matches_operator_composition() {
    let runs: Vec<Experiment> = (0..6u64).map(|i| synthetic_experiment(SHAPE, i)).collect();
    let refs: Vec<&Experiment> = runs.iter().collect();
    let plan = BatchPlan::new(&refs);
    let composite = plan
        .eval(&Expr::diff(
            Expr::reduce(Reduction::Mean, 0..3),
            Expr::reduce(Reduction::Mean, 3..6),
        ))
        .unwrap();
    let by_operators = ops::diff(
        &ops::mean(&refs[..3]).unwrap(),
        &ops::mean(&refs[3..]).unwrap(),
    );
    // Equal metadata everywhere → both evaluate over the same schema.
    assert_eq!(composite.metadata(), by_operators.metadata());
    assert_eq!(
        composite.severity().values(),
        by_operators.severity().values()
    );
    assert_eq!(composite.provenance(), by_operators.provenance());
}

// ---------------------------------------------------------------------------
// §3 zero-extension regressions: differing thread counts must extend,
// never truncate.
// ---------------------------------------------------------------------------

/// One metric, one call node, `ranks` single-threaded ranks, value `v`.
fn ranks_experiment(name: &str, ranks: usize, v: f64) -> Experiment {
    let mut b = ExperimentBuilder::new(name);
    let t = b.def_metric("time", Unit::Seconds, "", None);
    let m = b.def_module("a", "a");
    let r = b.def_region("main", m, RegionKind::Function, 1, 1);
    let cs = b.def_call_site("a", 1, r);
    let root = b.def_call_node(cs, None);
    let ts = single_threaded_system(&mut b, ranks);
    for &tid in &ts {
        b.set_severity(t, root, tid, v);
    }
    b.build().unwrap()
}

#[test]
fn mean_zero_extends_differing_thread_counts() {
    // Paper §3: the severity of tuples an operand does not define is
    // zero. A 2-rank run averaged with a 4-rank run therefore yields a
    // 4-rank result where the extra ranks average v with 0 — the values
    // are NOT truncated to the smaller system and NOT left at v.
    let small = ranks_experiment("small", 2, 4.0);
    let large = ranks_experiment("large", 4, 2.0);
    for operands in [[&small, &large], [&large, &small]] {
        let m = ops::mean(&operands).unwrap();
        assert_eq!(m.metadata().num_threads(), 4, "result must not truncate");
        let mut values = m.severity().values().to_vec();
        // Rank order may differ with operand order; compare sorted.
        values.sort_by(f64::total_cmp);
        assert_eq!(values, vec![1.0, 1.0, 3.0, 3.0]);
    }
}

#[test]
fn variance_zero_extends_differing_thread_counts() {
    // Ranks 0–1 see the series (4, 2): mean 3, variance 1. Ranks 2–3
    // exist only in `large`, so their series is (0, 2): mean 1,
    // variance 1. Truncation or extension-by-v would both break this.
    let small = ranks_experiment("small", 2, 4.0);
    let large = ranks_experiment("large", 4, 2.0);
    let v = stats::variance(&[&small, &large]).unwrap();
    assert_eq!(v.metadata().num_threads(), 4);
    assert_eq!(v.severity().values(), &[1.0, 1.0, 1.0, 1.0]);

    let s = stats::stddev(&[&small, &large]).unwrap();
    assert_eq!(s.severity().values(), &[1.0, 1.0, 1.0, 1.0]);
}

#[test]
fn sum_min_max_zero_extend_differing_thread_counts() {
    let small = ranks_experiment("small", 2, 4.0);
    let large = ranks_experiment("large", 4, 2.0);
    let sum = ops::sum(&[&small, &large]).unwrap();
    assert_eq!(sum.severity().values(), &[6.0, 6.0, 2.0, 2.0]);
    // min competes absent measurements as zero (§3), so extended ranks
    // report 0, not 2.
    let lo = ops::min(&[&small, &large]).unwrap();
    assert_eq!(lo.severity().values(), &[2.0, 2.0, 0.0, 0.0]);
    let hi = ops::max(&[&small, &large]).unwrap();
    assert_eq!(hi.severity().values(), &[4.0, 4.0, 2.0, 2.0]);
}
