//! # cube-bench — benchmark harness and figure regeneration
//!
//! Shared workload generators for the Criterion benches and the
//! figure-regeneration binaries:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1_pescan_baseline` | Figure 1 — unoptimized PESCAN, Wait-at-Barrier ≈ 13.2 % |
//! | `fig2_pescan_diff` | Figure 2 — the difference experiment, normalized |
//! | `fig3_merge_integration` | Figure 3 — merge of EXPERT + two CONE event sets |
//! | `tab_speedup_series` | §5.1 — two series of ten runs, min; ≈ 16 % speedup |
//!
//! Plus two CI support binaries: `gen_corpus` (deterministic `.cube`
//! corpus for the thread-count determinism gate in `ci/check.sh`) and
//! `bench_gate` (assembles/compares the `BENCH_5.json` metrics
//! document for the perf-regression gate in `ci/bench_gate.sh`).
//!
//! Benches: `operators` (element-wise phase + fast/slow metadata paths),
//! `metadata_merge` (structural merge scaling), `xml_roundtrip`,
//! `trace_analysis` (EXPERT throughput + the per-event counter
//! trace-size blowup), `par_elementwise` (Rayon ablation + the
//! `pool_scaling` thread-count sweep behind EXPERIMENTS.md).

use cube_model::builder::single_threaded_system;
use cube_model::{Experiment, ExperimentBuilder, MetricId, RegionKind, Unit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rounds a synthetic severity to microsecond resolution, mimicking
/// real measurement data: profilers record timer ticks at finite
/// resolution, so `.cube` files carry short decimals ("0.271828"), not
/// 17-significant-digit doubles. Serialization benchmarks over
/// full-precision uniform randoms would overstate the shared
/// float-formatting cost relative to any real workload.
fn quantize(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// Shape parameters of a synthetic experiment.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticShape {
    /// Number of metrics (first is the root; the rest form a shallow
    /// tree under it).
    pub metrics: usize,
    /// Number of call-tree nodes (a mix of chains and fanout).
    pub call_nodes: usize,
    /// Number of single-threaded ranks.
    pub threads: usize,
}

/// Builds a dense synthetic experiment with pseudo-random severities.
///
/// Structure is deterministic in the shape; values depend on `seed`, so
/// two calls with different seeds share metadata exactly (the
/// operators' fast path), while [`synthetic_disjoint`] produces
/// structurally different metadata (the slow path).
pub fn synthetic_experiment(shape: SyntheticShape, seed: u64) -> Experiment {
    synthetic_named(shape, seed, "m", "r")
}

/// Like [`synthetic_experiment`] but with a distinct name space for
/// metrics and regions, so that integrating it with a default synthetic
/// experiment shares nothing.
pub fn synthetic_disjoint(shape: SyntheticShape, seed: u64) -> Experiment {
    synthetic_named(shape, seed, "dm", "dr")
}

fn synthetic_named(
    shape: SyntheticShape,
    seed: u64,
    metric_prefix: &str,
    region_prefix: &str,
) -> Experiment {
    assert!(shape.metrics >= 1 && shape.call_nodes >= 1 && shape.threads >= 1);
    let mut b = ExperimentBuilder::new(format!(
        "synthetic {}x{}x{} (seed {seed})",
        shape.metrics, shape.call_nodes, shape.threads
    ));
    let root = b.def_metric(format!("{metric_prefix}0"), Unit::Seconds, "", None);
    let mut metrics = vec![root];
    for i in 1..shape.metrics {
        // Shallow tree: every fourth metric hangs off the previous one.
        let parent = if i % 4 == 0 {
            Some(metrics[i - 1])
        } else {
            Some(root)
        };
        metrics.push(b.def_metric(format!("{metric_prefix}{i}"), Unit::Seconds, "", parent));
    }
    let module = b.def_module("synth.rs", "/synth.rs");
    let mut cnodes = Vec::with_capacity(shape.call_nodes);
    for i in 0..shape.call_nodes {
        let region = b.def_region(
            format!("{region_prefix}{i}"),
            module,
            RegionKind::Function,
            i as u32 + 1,
            i as u32 + 1,
        );
        let cs = b.def_call_site("synth.rs", i as u32 + 1, region);
        let parent = if i == 0 {
            None
        } else if i % 3 == 0 {
            Some(cnodes[i - 1])
        } else {
            Some(cnodes[i / 3])
        };
        cnodes.push(b.def_call_node(cs, parent));
    }
    let threads = single_threaded_system(&mut b, shape.threads);
    let mut rng = StdRng::seed_from_u64(seed);
    for &m in &metrics {
        for &c in &cnodes {
            for &t in &threads {
                b.set_severity(m, c, t, quantize(rng.random::<f64>() * 10.0 - 2.0));
            }
        }
    }
    b.build().expect("synthetic experiment is valid")
}

/// A structurally *overlapping* variant: shares roughly half of the
/// metrics and call paths with [`synthetic_experiment`] of the same
/// shape, and extends the rest — the realistic integration case.
pub fn synthetic_overlapping(shape: SyntheticShape, seed: u64) -> Experiment {
    let mut b = ExperimentBuilder::new(format!("overlapping (seed {seed})"));
    let root = b.def_metric("m0", Unit::Seconds, "", None);
    let mut metrics = vec![root];
    for i in 1..shape.metrics {
        let name = if i % 2 == 0 {
            format!("m{i}")
        } else {
            format!("x{i}")
        };
        let parent = if i % 4 == 0 {
            Some(metrics[i - 1])
        } else {
            Some(root)
        };
        metrics.push(b.def_metric(name, Unit::Seconds, "", parent));
    }
    let module = b.def_module("synth.rs", "/synth.rs");
    let mut cnodes = Vec::with_capacity(shape.call_nodes);
    for i in 0..shape.call_nodes {
        let name = if i % 2 == 0 {
            format!("r{i}")
        } else {
            format!("y{i}")
        };
        let region = b.def_region(
            name,
            module,
            RegionKind::Function,
            i as u32 + 1,
            i as u32 + 1,
        );
        let cs = b.def_call_site("synth.rs", i as u32 + 1, region);
        let parent = if i == 0 {
            None
        } else if i % 3 == 0 {
            Some(cnodes[i - 1])
        } else {
            Some(cnodes[i / 3])
        };
        cnodes.push(b.def_call_node(cs, parent));
    }
    let threads = single_threaded_system(&mut b, shape.threads);
    let mut rng = StdRng::seed_from_u64(seed);
    for &m in &metrics {
        for &c in &cnodes {
            for &t in &threads {
                b.set_severity(m, c, t, quantize(rng.random::<f64>()));
            }
        }
    }
    b.build().expect("synthetic experiment is valid")
}

/// Total of a named metric (inclusive), for harness reporting.
pub fn metric_total_by_name(e: &Experiment, name: &str) -> f64 {
    let m: MetricId = e
        .metadata()
        .find_metric(name)
        .unwrap_or_else(|| panic!("metric '{name}' missing"));
    cube_model::aggregate::metric_total(e, cube_model::aggregate::MetricSelection::inclusive(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: SyntheticShape = SyntheticShape {
        metrics: 6,
        call_nodes: 10,
        threads: 4,
    };

    #[test]
    fn synthetic_is_valid_and_deterministic() {
        let a = synthetic_experiment(SHAPE, 1);
        let b = synthetic_experiment(SHAPE, 1);
        a.validate().unwrap();
        assert!(a.approx_eq(&b, 0.0));
        let c = synthetic_experiment(SHAPE, 2);
        assert_eq!(a.metadata(), c.metadata());
        assert!(!a.severity().approx_eq(c.severity(), 1e-12));
    }

    #[test]
    fn overlapping_shares_part_of_the_structure() {
        let a = synthetic_experiment(SHAPE, 1);
        let o = synthetic_overlapping(SHAPE, 2);
        let i = cube_algebra::integrate(&[&a, &o], cube_algebra::MergeOptions::default());
        let n = i.metadata.num_metrics();
        assert!(n > SHAPE.metrics && n < 2 * SHAPE.metrics, "{n}");
        i.metadata.validate().unwrap();
    }

    #[test]
    fn disjoint_shares_nothing_but_the_system() {
        let a = synthetic_experiment(SHAPE, 1);
        let d = synthetic_disjoint(SHAPE, 2);
        let i = cube_algebra::integrate(&[&a, &d], cube_algebra::MergeOptions::default());
        assert_eq!(i.metadata.num_metrics(), 2 * SHAPE.metrics);
        assert_eq!(i.metadata.num_call_nodes(), 2 * SHAPE.call_nodes);
        assert_eq!(i.metadata.num_threads(), SHAPE.threads);
    }
}
