//! Regenerates **Figure 1**: the CUBE display showing the unoptimized
//! PESCAN run with the *Wait at Barrier* metric selected — "a large
//! fraction of the execution time is spent waiting in front of barriers
//! (13.2 %)".
//!
//! ```text
//! cargo run --release -p cube-bench --bin fig1_pescan_baseline
//! ```

use cube_bench::metric_total_by_name;
use cube_display::{BrowserState, RenderOptions, ValueMode};
use expert::{analyze, AnalyzeOptions};
use simmpi::apps::{pescan, PescanConfig};
use simmpi::{simulate, EpilogTracer, MachineModel};

fn main() {
    // The paper's setup: 16 processes on four 4-way SMP nodes.
    let cfg = PescanConfig::default();
    let program = pescan(&cfg);
    let mut tracer = EpilogTracer::new("Pentium III Xeon 550 MHz cluster (simulated)", 4);
    simulate(&program, &MachineModel::default(), &mut tracer).expect("simulation succeeds");
    let trace = tracer.into_trace();
    let experiment = analyze(
        &trace,
        &AnalyzeOptions {
            name: Some("pescan, unoptimized, medium-sized particle model".into()),
        },
    )
    .expect("trace analyzes cleanly");

    // Figure 1's view: percent mode, Wait at Barrier selected, trees
    // expanded down to the selection.
    let mut state = BrowserState::new(&experiment);
    state.expand_all(&experiment);
    assert!(state.select_metric_by_name(&experiment, "Wait at Barrier"));
    state.select_call_by_region(&experiment, "MPI_Barrier");
    state.value_mode = ValueMode::Percent;
    println!("=== Figure 1: CUBE display, unoptimized PESCAN ===\n");
    println!(
        "{}",
        cube_display::render_view(&experiment, &state, RenderOptions::default())
    );

    let time = metric_total_by_name(&experiment, "Time");
    println!("series the paper reports:");
    for name in [
        "Time",
        "Execution",
        "MPI",
        "Communication",
        "Collective",
        "Wait at N x N",
        "P2P",
        "Late Sender",
        "Synchronization",
        "Wait at Barrier",
        "Barrier Completion",
    ] {
        let v = metric_total_by_name(&experiment, name);
        println!("  {name:<20} {:>6.1} % of execution time", v / time * 100.0);
    }
    let wab = metric_total_by_name(&experiment, "Wait at Barrier") / time * 100.0;
    println!("\nheadline: Wait-at-Barrier = {wab:.1} %   (paper: 13.2 %)");
}
