//! Generates the synthetic `.cube` corpus used by the CI determinism
//! gate (`ci/check.sh`).
//!
//! ```text
//! gen_corpus OUTDIR [COUNT]
//! ```
//!
//! Writes `COUNT` (default 6) dense experiments with shared metadata at
//! the largest `metadata_merge` bench shape — 12 metrics × 800 call
//! nodes × 16 threads = 153,600 severity values per file, above the
//! operators' parallel threshold — so `cube stats`/`diff`/`merge` over
//! the corpus actually exercise the worker pool. Values are seeded by
//! file index: the corpus is bit-identical on every run.

use cube_bench::{synthetic_experiment, SyntheticShape};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(outdir) = args.first() else {
        eprintln!("usage: gen_corpus OUTDIR [COUNT]");
        std::process::exit(2);
    };
    let count: usize = match args.get(1) {
        None => 6,
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("gen_corpus: COUNT must be a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
    };
    if let Err(e) = std::fs::create_dir_all(outdir) {
        eprintln!("gen_corpus: cannot create {outdir}: {e}");
        std::process::exit(2);
    }
    let shape = SyntheticShape {
        metrics: 12,
        call_nodes: 800,
        threads: 16,
    };
    for i in 0..count {
        let exp = synthetic_experiment(shape, i as u64);
        let path = format!("{outdir}/run{i}.cube");
        if let Err(e) = cube_xml::write_experiment_file(&exp, &path) {
            eprintln!("gen_corpus: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("{path}");
    }
}
