//! Regenerates **Figure 2**: "A difference experiment shows the
//! disappearance and migration of waiting times for application
//! PESCAN" — `difference(original, optimized)`, rendered normalized
//! with respect to the original version.
//!
//! ```text
//! cargo run --release -p cube-bench --bin fig2_pescan_diff
//! ```

use cube_algebra::ops;
use cube_bench::metric_total_by_name;
use cube_display::{BrowserState, NormalizationRef, RenderOptions, ValueMode};
use cube_model::Experiment;
use expert::{analyze, AnalyzeOptions};
use simmpi::apps::{pescan, PescanConfig};
use simmpi::{simulate, EpilogTracer, MachineModel};

fn analyzed(barriers: bool) -> Experiment {
    let program = pescan(&PescanConfig {
        barriers,
        ..PescanConfig::default()
    });
    let mut tracer = EpilogTracer::new("Pentium III Xeon 550 MHz cluster (simulated)", 4);
    simulate(&program, &MachineModel::default(), &mut tracer).expect("simulation succeeds");
    analyze(
        &tracer.into_trace(),
        &AnalyzeOptions {
            name: Some(
                if barriers {
                    "pescan original"
                } else {
                    "pescan optimized"
                }
                .into(),
            ),
        },
    )
    .expect("trace analyzes cleanly")
}

fn main() {
    let original = analyzed(true);
    let optimized = analyzed(false);
    let saved = ops::diff(&original, &optimized);
    saved
        .validate()
        .expect("closure: the difference is a complete experiment");

    let mut state = BrowserState::new(&saved);
    state.expand_all(&saved);
    state.value_mode = ValueMode::PercentNormalized(NormalizationRef::from_experiment(&original));
    assert!(state.select_metric_by_name(&saved, "Wait at Barrier"));
    println!("=== Figure 2: difference(original, optimized), normalized to the original ===\n");
    println!(
        "{}",
        cube_display::render_view(&saved, &state, RenderOptions::default())
    );

    let base = metric_total_by_name(&original, "Time");
    println!("series the paper reports (improvement in % of previous execution time):");
    for name in [
        "Wait at Barrier",
        "Synchronization",
        "Barrier Completion",
        "P2P",
        "Late Sender",
        "Wait at N x N",
        "Time",
    ] {
        let v = metric_total_by_name(&saved, name) / base * 100.0;
        let relief = if v >= 0.0 {
            "raised (gain)"
        } else {
            "sunken (loss)"
        };
        println!("  {name:<20} {v:>7.2} %   {relief}");
    }
    println!(
        "\nshape check: barrier metrics recovered, P2P and Wait-at-NxN grew \
         (waiting-time migration), gross balance positive"
    );
}
