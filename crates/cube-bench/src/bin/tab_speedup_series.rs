//! Regenerates the **§5.1 speedup measurement**: "We created two series
//! of ten experiments for either configuration and took the minimum of
//! each series as a representative. The speedup obtained for the solver
//! by removing the barriers was about 16 %."
//!
//! Runs both PESCAN configurations ten times, uninstrumented, under OS
//! noise; prints the series, the minima, and the speedup. Also shows
//! the algebra's `min`/`mean` operators applied to the corresponding
//! analyzed experiments — the tool-side version of the same protocol.
//!
//! ```text
//! cargo run --release -p cube-bench --bin tab_speedup_series
//! ```

use cube_algebra::ops;
use cube_bench::metric_total_by_name;
use cube_model::Experiment;
use expert::{analyze, AnalyzeOptions};
use simmpi::apps::{pescan, PescanConfig};
use simmpi::{simulate, EpilogTracer, MachineModel, NoiseModel, NullMonitor};

const RUNS: usize = 10;
const NOISE: f64 = 0.08;

fn model(seed: u64) -> MachineModel {
    MachineModel {
        noise: NoiseModel {
            amplitude: NOISE,
            seed,
        },
        ..MachineModel::default()
    }
}

fn main() {
    println!("=== §5.1 protocol: two series of {RUNS} uninstrumented runs ===\n");
    let mut minima = [f64::INFINITY; 2];
    for (ci, barriers) in [true, false].into_iter().enumerate() {
        let label = if barriers { "original " } else { "optimized" };
        print!("{label}: ");
        for run in 0..RUNS {
            let program = pescan(&PescanConfig {
                barriers,
                ..PescanConfig::default()
            });
            let seed = (ci as u64) * 1000 + run as u64;
            let report =
                simulate(&program, &model(seed), &mut NullMonitor).expect("simulation succeeds");
            minima[ci] = minima[ci].min(report.elapsed);
            print!("{:7.4} ", report.elapsed);
        }
        println!("  min = {:.4} s", minima[ci]);
    }
    let speedup = (minima[0] - minima[1]) / minima[0] * 100.0;
    println!("\nspeedup from removing the barriers: {speedup:.1} %   (paper: ~16 %)");

    // The same protocol expressed in the algebra: min over analyzed
    // experiments of each series, then compare Times.
    println!("\n=== the same selection via the algebra (3 traced runs per series) ===");
    let analyzed = |barriers: bool, seed: u64| -> Experiment {
        let program = pescan(&PescanConfig {
            barriers,
            ..PescanConfig::default()
        });
        let mut tracer = EpilogTracer::new("cluster", 4);
        simulate(&program, &model(seed), &mut tracer).expect("simulation succeeds");
        analyze(&tracer.into_trace(), &AnalyzeOptions::default()).expect("analysis succeeds")
    };
    for barriers in [true, false] {
        let series: Vec<Experiment> = (0..3)
            .map(|i| analyzed(barriers, 7000 + i + if barriers { 0 } else { 500 }))
            .collect();
        let refs: Vec<&Experiment> = series.iter().collect();
        let best = ops::min(&refs).expect("non-empty series");
        let smooth = ops::mean(&refs).expect("non-empty series");
        println!(
            "  barriers={barriers}: min(Time) = {:.4} s, mean(Time) = {:.4} s",
            metric_total_by_name(&best, "Time"),
            metric_total_by_name(&smooth, "Time"),
        );
    }
    println!("\n(derived min/mean experiments remain valid CUBE experiments — closure)");
}
