//! Regenerates **Figure 3**: "Merge of outputs from CONE and EXPERT" —
//! one EXPERT trace analysis of SWEEP3D merged with *two* CONE
//! call-graph profiles collected with conflicting event sets
//! ({PAPI_TOT_CYC, PAPI_TOT_INS, PAPI_FP_INS} and {PAPI_L1_DCA,
//! PAPI_L1_DCM}), rendered as one experiment with the joint metric
//! forest. The call tree shows the percentage distribution of cache
//! misses with a high concentration at `MPI_Recv` calls, which are at
//! the same time sources of Late-Sender problems.
//!
//! ```text
//! cargo run --release -p cube-bench --bin fig3_merge_integration
//! ```

use cone::{ConeProfiler, EventSet};
use cube_algebra::ops;
use cube_bench::metric_total_by_name;
use cube_display::{BrowserState, RenderOptions, ValueMode};
use cube_model::aggregate::{call_value, CallSelection, MetricSelection};
use cube_model::Experiment;
use expert::{analyze, AnalyzeOptions};
use simmpi::apps::sweep3d::{grid_coordinates, sweep3d, Sweep3dConfig};
use simmpi::{simulate, EpilogTracer, MachineModel};

fn cone_profile(set: EventSet) -> Experiment {
    let program = sweep3d(&Sweep3dConfig::default());
    let mut profiler = ConeProfiler::new(set)
        .expect("conflict-free event set")
        .with_layout("IBM POWER4 (simulated)", 4);
    simulate(&program, &MachineModel::default(), &mut profiler).expect("simulation succeeds");
    profiler.into_experiment().expect("valid experiment")
}

fn main() {
    // Run 1: EXPERT on a trace of SWEEP3D, with the process grid
    // recorded as topology information.
    let cfg = Sweep3dConfig::default();
    let program = sweep3d(&cfg);
    let mut tracer = EpilogTracer::new("IBM POWER4 (simulated)", 4).with_topology(
        "process grid",
        vec![cfg.px as u32, cfg.py as u32],
        vec![false, false],
        grid_coordinates(&cfg),
    );
    simulate(&program, &MachineModel::default(), &mut tracer).expect("simulation succeeds");
    let expert_exp = analyze(
        &tracer.into_trace(),
        &AnalyzeOptions {
            name: Some("EXPERT (sweep3d trace)".into()),
        },
    )
    .expect("trace analyzes cleanly");
    // Runs 2+3: CONE with the two conflicting event sets.
    let fp = cone_profile(EventSet::flops());
    let l1 = cone_profile(EventSet::l1_cache());

    let merged = ops::merge(&ops::merge(&expert_exp, &fp), &l1);
    merged.validate().expect("closure");

    let mut state = BrowserState::new(&merged);
    state.expand_all(&merged);
    assert!(state.select_metric_by_name(&merged, "PAPI_L1_DCM"));
    state.select_call_by_region(&merged, "MPI_Recv");
    state.value_mode = ValueMode::Percent;
    println!("=== Figure 3: merged EXPERT + CONE(FP) + CONE(L1) experiment ===\n");
    println!(
        "{}",
        cube_display::render_view(&merged, &state, RenderOptions::default())
    );

    println!("rows the paper reports:");
    println!(
        "  metric roots in the joint forest: {:?}",
        merged
            .metadata()
            .metric_roots()
            .iter()
            .map(|&m| merged.metadata().metric(m).name.as_str())
            .collect::<Vec<_>>()
    );
    let md = merged.metadata();
    let dcm = md.find_metric("PAPI_L1_DCM").expect("from the L1 run");
    let all_misses = metric_total_by_name(&merged, "PAPI_L1_DCM");
    let recv_misses: f64 = md
        .call_node_ids()
        .filter(|&c| md.region(md.call_node_callee(c)).name == "MPI_Recv")
        .map(|c| {
            call_value(
                &merged,
                MetricSelection::inclusive(dcm),
                CallSelection::exclusive(c),
            )
        })
        .sum();
    println!(
        "  cache misses at MPI_Recv call paths: {:.1} % of all misses",
        recv_misses / all_misses * 100.0
    );
    println!(
        "  Late-Sender waiting at the same call paths: {:.4} s",
        metric_total_by_name(&merged, "Late Sender")
    );
    println!(
        "  FP_INS (from the other, conflicting event set): {:.3e}",
        metric_total_by_name(&merged, "PAPI_FP_INS")
    );
    // Topology heat views (the paper's future-work visualization): the
    // same derived experiment, projected onto the recorded process grid.
    let mut tstate = BrowserState::new(&merged);
    for metric in ["Late Sender", "PAPI_L1_DCM"] {
        assert!(tstate.select_metric_by_name(&merged, metric));
        if let Some(view) =
            cube_display::render_topology(&merged, &tstate, 0, RenderOptions::default())
        {
            println!("\nseverity of '{metric}' over the process grid:\n{view}");
        }
    }
    println!(
        "\nheadline: one derived experiment integrates trace analysis and both \
         counter sets that no single run could measure together"
    );
}
