//! Assembles and compares the benchmark metrics document behind the CI
//! perf-regression gate (`ci/bench_gate.sh`).
//!
//! ```text
//! bench_gate assemble OUT.json RAW.tsv [RAW.tsv ...]
//! bench_gate median OUT.json RUN.json RUN.json [RUN.json ...]
//! bench_gate compare CURRENT.json BASELINE.json [--max-regression 0.15]
//! ```
//!
//! `assemble` turns the raw `group/bench\tnanoseconds` lines appended
//! by the criterion harness (`BENCH_JSON=file cargo bench ...`) into a
//! sorted metrics document:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "metrics": {
//!     "batch_mean/batch/16": 123456
//!   }
//! }
//! ```
//!
//! `median` combines several per-run documents into one that holds, per
//! metric, the median of the runs that measured it — what the CI gate
//! feeds to `compare`, so a single noisy run cannot trip the threshold.
//!
//! `compare` checks every baseline metric against the current run,
//! reporting a signed delta for *each* metric (not just the first
//! failure) plus a closing summary of everything over budget, and fails
//! when any metric is slower than `baseline × (1 + max-regression)` or
//! missing entirely. Faster-than-baseline results always pass; commit a
//! fresh document (`cp BENCH_5.json ci/bench_baseline.json`) to
//! re-baseline after intentional performance changes.
//!
//! Exit codes: 0 = within budget, 1 = regression or missing metric,
//! 2 = usage or parse error. The document format is produced and
//! consumed only by this tool, so the parser is a small line-based
//! scanner rather than a JSON dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.split_first() {
        Some((cmd, rest)) if cmd == "assemble" => assemble(rest),
        Some((cmd, rest)) if cmd == "median" => median(rest),
        Some((cmd, rest)) if cmd == "compare" => compare(rest),
        _ => {
            eprintln!(
                "usage: bench_gate assemble OUT.json RAW.tsv [RAW.tsv ...]\n\
                 \x20      bench_gate median OUT.json RUN.json RUN.json [RUN.json ...]\n\
                 \x20      bench_gate compare CURRENT.json BASELINE.json [--max-regression R]"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Reads raw `name\tns` lines into a sorted map; on duplicate names the
/// last measurement wins (a rerun within one session supersedes).
fn read_raw(path: &str, metrics: &mut BTreeMap<String, u64>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = line
            .split_once('\t')
            .and_then(|(name, ns)| ns.trim().parse::<u64>().ok().map(|ns| (name, ns)));
        match parsed {
            Some((name, ns)) => {
                metrics.insert(name.to_string(), ns);
            }
            None => {
                return Err(format!(
                    "{path}:{}: expected 'name\\tnanoseconds', got '{line}'",
                    lineno + 1
                ))
            }
        }
    }
    Ok(())
}

fn assemble(args: &[String]) -> i32 {
    let Some((out, raws)) = args.split_first() else {
        eprintln!("bench_gate assemble: missing OUT.json");
        return 2;
    };
    if raws.is_empty() {
        eprintln!("bench_gate assemble: missing RAW.tsv inputs");
        return 2;
    }
    let mut metrics = BTreeMap::new();
    for raw in raws {
        if let Err(e) = read_raw(raw, &mut metrics) {
            eprintln!("bench_gate assemble: {e}");
            return 2;
        }
    }
    if metrics.is_empty() {
        eprintln!("bench_gate assemble: no measurements in {raws:?}");
        return 2;
    }
    if let Err(e) = write_doc(out, &metrics) {
        eprintln!("bench_gate assemble: {e}");
        return 2;
    }
    println!("wrote {out}: {} metrics", metrics.len());
    0
}

/// Serializes a metrics map in the documented schema-1 layout.
fn write_doc(path: &str, metrics: &BTreeMap<String, u64>) -> Result<(), String> {
    let mut doc = String::from("{\n  \"schema\": 1,\n  \"metrics\": {\n");
    for (i, (name, ns)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(doc, "    \"{name}\": {ns}{comma}");
    }
    doc.push_str("  }\n}\n");
    std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Combines per-run documents into per-metric medians: the anti-flake
/// layer of the gate. For an even run count the lower middle value is
/// taken (conservative: never slower than the true median). Metrics are
/// combined over the runs that measured them, so one truncated run
/// cannot erase a metric.
fn median(args: &[String]) -> i32 {
    let Some((out, runs)) = args.split_first() else {
        eprintln!("bench_gate median: missing OUT.json");
        return 2;
    };
    if runs.len() < 2 {
        eprintln!("bench_gate median: need at least 2 RUN.json inputs");
        return 2;
    }
    let mut samples: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for run in runs {
        match parse_doc(run) {
            Ok(metrics) => {
                for (name, ns) in metrics {
                    samples.entry(name).or_default().push(ns);
                }
            }
            Err(e) => {
                eprintln!("bench_gate median: {e}");
                return 2;
            }
        }
    }
    let medians: BTreeMap<String, u64> = samples
        .into_iter()
        .map(|(name, mut ns)| {
            ns.sort_unstable();
            let mid = ns[(ns.len() - 1) / 2];
            (name, mid)
        })
        .collect();
    if let Err(e) = write_doc(out, &medians) {
        eprintln!("bench_gate median: {e}");
        return 2;
    }
    println!(
        "wrote {out}: per-metric median of {} runs ({} metrics)",
        runs.len(),
        medians.len()
    );
    0
}

/// Parses a metrics document produced by [`assemble`]: scans for
/// `"name": value` member lines inside the `metrics` object.
fn parse_doc(path: &str) -> Result<BTreeMap<String, u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("\"schema\": 1") {
        return Err(format!("{path}: missing '\"schema\": 1' marker"));
    }
    let mut metrics = BTreeMap::new();
    let mut in_metrics = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"metrics\"") {
            in_metrics = true;
            continue;
        }
        if !in_metrics {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let member = line
            .strip_prefix('"')
            .and_then(|rest| rest.split_once("\": "))
            .and_then(|(name, value)| {
                value
                    .trim_end_matches(',')
                    .parse::<u64>()
                    .ok()
                    .map(|ns| (name, ns))
            });
        match member {
            Some((name, ns)) => {
                metrics.insert(name.to_string(), ns);
            }
            None => return Err(format!("{path}: unparseable metric line '{line}'")),
        }
    }
    if metrics.is_empty() {
        return Err(format!("{path}: no metrics found"));
    }
    Ok(metrics)
}

fn compare(args: &[String]) -> i32 {
    let mut paths = Vec::new();
    let mut max_regression = 0.15f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("bench_gate compare: bad --max-regression value");
                return 2;
            };
            max_regression = v;
        } else {
            paths.push(a.as_str());
        }
    }
    let &[current_path, baseline_path] = paths.as_slice() else {
        eprintln!("bench_gate compare: need CURRENT.json and BASELINE.json");
        return 2;
    };
    let (current, baseline) = match (parse_doc(current_path), parse_doc(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate compare: {e}");
            return 2;
        }
    };
    let mut failed: Vec<String> = Vec::new();
    println!(
        "{:<44} {:>12} {:>12} {:>8} {:>8}  verdict (budget +{:.0}%)",
        "metric",
        "baseline",
        "current",
        "ratio",
        "delta",
        max_regression * 100.0
    );
    for (name, &base_ns) in &baseline {
        match current.get(name) {
            None => {
                println!(
                    "{name:<44} {base_ns:>12} {:>12} {:>8} {:>8}  MISSING",
                    "-", "-", "-"
                );
                failed.push(format!("{name}: missing from current run"));
            }
            Some(&cur_ns) => {
                let ratio = cur_ns as f64 / base_ns.max(1) as f64;
                let delta = (ratio - 1.0) * 100.0;
                let regressed = ratio > 1.0 + max_regression;
                println!(
                    "{name:<44} {base_ns:>12} {cur_ns:>12} {ratio:>7.2}x {delta:>+7.1}%  {}",
                    if regressed { "REGRESSED" } else { "ok" }
                );
                if regressed {
                    failed.push(format!(
                        "{name}: {delta:+.1}% (budget +{:.0}%)",
                        max_regression * 100.0
                    ));
                }
            }
        }
    }
    for name in current.keys().filter(|n| !baseline.contains_key(*n)) {
        println!(
            "{name:<44} {:>12} {:>12} {:>8} {:>8}  new (untracked)",
            "-", "-", "-", "-"
        );
    }
    if !failed.is_empty() {
        // The closing summary repeats every over-budget metric with its
        // delta, so a CI log tail shows the full damage, not just the
        // first casualty.
        eprintln!("bench_gate: {} metric(s) over budget:", failed.len());
        for f in &failed {
            eprintln!("  {f}");
        }
        eprintln!(
            "bench_gate: re-baseline intentional changes: cp BENCH_5.json ci/bench_baseline.json"
        );
        1
    } else {
        println!(
            "bench_gate: all {} tracked metrics within budget",
            baseline.len()
        );
        0
    }
}
