//! The `.cubec` writer: canonical encoding, atomic durable commit.

use std::path::Path;

use cube_model::Experiment;
use cube_xml::footer::crc32;

use crate::error::StoreError;
use crate::layout::{
    align8, chunk_count, Section, CHUNK_VALUES, FOOTER_MAGIC, HEADER_LEN, MAGIC, SECTION_ENTRY_LEN,
    SEC_CHUNKCRC, SEC_METADATA, SEC_SEVERITY, VERSION,
};
use crate::meta::encode_metadata;

/// Encodes an experiment as a complete `.cubec` file image.
///
/// The encoding is canonical: the same experiment always produces the
/// same bytes (strings are interned in first-use order, entity tables
/// are written in id order), so `pack(unpack(x))` reproduces `x`
/// byte for byte.
pub fn write_store(exp: &Experiment) -> Vec<u8> {
    let meta = encode_metadata(exp.metadata(), exp.provenance());

    let values = exp.severity().values();
    let mut sev = Vec::with_capacity(values.len() * 8);
    for v in values {
        sev.extend_from_slice(&v.to_le_bytes());
    }

    let nchunks = chunk_count(sev.len(), CHUNK_VALUES);
    let mut crcs = Vec::with_capacity(8 + nchunks * 4);
    crcs.extend_from_slice(&(CHUNK_VALUES as u32).to_le_bytes());
    crcs.extend_from_slice(&(nchunks as u32).to_le_bytes());
    for chunk in sev.chunks(CHUNK_VALUES * 8) {
        crcs.extend_from_slice(&crc32(chunk).to_le_bytes());
    }

    // Severity pages go last so a truncated write loses data pages, not
    // the structure (and chunk CRCs) needed to describe the loss.
    let table_len = 3 * SECTION_ENTRY_LEN;
    let meta_off = align8(HEADER_LEN + table_len);
    let crcs_off = align8(meta_off + meta.len());
    let sev_off = align8(crcs_off + crcs.len());
    let body_end = sev_off + sev.len();

    let sections = [
        Section {
            kind: SEC_METADATA,
            offset: meta_off as u64,
            length: meta.len() as u64,
            crc: crc32(&meta),
        },
        Section {
            kind: SEC_CHUNKCRC,
            offset: crcs_off as u64,
            length: crcs.len() as u64,
            crc: crc32(&crcs),
        },
        Section {
            kind: SEC_SEVERITY,
            offset: sev_off as u64,
            length: sev.len() as u64,
            crc: 0, // covered per chunk
        },
    ];

    let mut out = Vec::with_capacity(body_end + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&(HEADER_LEN as u64).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // reserved
    for s in &sections {
        s.encode(&mut out);
    }
    out.resize(meta_off, 0);
    out.extend_from_slice(&meta);
    out.resize(crcs_off, 0);
    out.extend_from_slice(&crcs);
    out.resize(sev_off, 0);
    out.extend_from_slice(&sev);

    // Footer: whole-file CRC over everything before it, the total file
    // length footer included, and a closing magic.
    let crc = crc32(&out);
    let file_len = (out.len() + 16) as u64;
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&file_len.to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

/// Writes an experiment to a `.cubec` file: atomic and durable.
///
/// The image is staged in a same-directory temporary file, synced, and
/// renamed over the target — the same crash-safety discipline as
/// [`cube_xml::write_experiment_file`], so a crash at any point leaves
/// a pre-existing target byte-identical.
pub fn write_store_file(exp: &Experiment, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let path = path.as_ref();
    let bytes = write_store(exp);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .ok_or_else(|| {
            StoreError::io_at(
                path,
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "target path has no file name",
                ),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let res = (|| -> Result<(), StoreError> {
        let err = |e: std::io::Error| StoreError::io_at(&tmp, e);
        std::fs::write(&tmp, &bytes).map_err(err)?;
        let f = std::fs::File::open(&tmp).map_err(err)?;
        f.sync_all().map_err(err)?;
        std::fs::rename(&tmp, path).map_err(|e| StoreError::io_at(path, e))
    })();
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn tiny() -> Experiment {
        let mut b = ExperimentBuilder::new("writer test");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], 1.5);
        b.build().unwrap()
    }

    #[test]
    fn image_starts_with_magic_and_ends_with_footer() {
        let bytes = write_store(&tiny());
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(&bytes[bytes.len() - 4..], &FOOTER_MAGIC);
        let len = u64::from_le_bytes(bytes[bytes.len() - 12..bytes.len() - 4].try_into().unwrap());
        assert_eq!(len as usize, bytes.len());
        let crc = u32::from_le_bytes(
            bytes[bytes.len() - 16..bytes.len() - 12]
                .try_into()
                .unwrap(),
        );
        assert_eq!(crc, crc32(&bytes[..bytes.len() - 16]));
    }

    #[test]
    fn section_offsets_are_aligned() {
        let bytes = write_store(&tiny());
        for i in 0..3 {
            let entry = &bytes[HEADER_LEN + i * SECTION_ENTRY_LEN..];
            let s = Section::decode(entry).unwrap();
            assert_eq!(s.offset % 8, 0, "section {} misaligned", s.kind);
            assert!(s.offset + s.length <= (bytes.len() - 16) as u64);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let e = tiny();
        assert_eq!(write_store(&e), write_store(&e));
    }

    #[test]
    fn file_write_is_atomic_under_a_bad_target() {
        let e = tiny();
        let err = write_store_file(&e, "/nonexistent-dir/x.cubec").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
    }
}
