//! On-disk layout constants and byte-level helpers for `.cubec`.
//!
//! The normative specification lives in `docs/STORE.md`; the constants
//! here mirror it one for one. All multi-byte integers are
//! little-endian; all section offsets are 8-byte aligned so an
//! mmap-based reader can overlay the severity pages directly.

use crate::error::StoreError;

/// File magic: `\x89` + `CUBEC` + CRLF. The high first byte catches
/// 7-bit transmission damage, the CRLF catches newline translation —
/// the same defensive prefix PNG uses.
pub const MAGIC: [u8; 8] = [0x89, b'C', b'U', b'B', b'E', b'C', 0x0D, 0x0A];

/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Byte length of the fixed file header.
pub const HEADER_LEN: usize = 32;

/// Byte length of one section-table entry.
pub const SECTION_ENTRY_LEN: usize = 32;

/// Byte length of the fixed file footer.
pub const FOOTER_LEN: usize = 16;

/// Magic closing the footer.
pub const FOOTER_MAGIC: [u8; 4] = *b"CEND";

/// Section kind: dictionary-encoded metadata tree.
pub const SEC_METADATA: u32 = 1;

/// Section kind: dense severity values, one f64 per tuple.
pub const SEC_SEVERITY: u32 = 2;

/// Section kind: per-chunk CRC-32 table covering the severity section.
pub const SEC_CHUNKCRC: u32 = 3;

/// Severity values per chunk (page): 4096 values = 32 KiB pages.
///
/// The fused evaluation kernels split their parallel work into blocks
/// of exactly this many elements ([`cube_algebra::kernel::BLOCK_VALUES`],
/// pinned equal by a test below), so a fused pass over columnar
/// operands streams decoded severity data page by page — each worker
/// holds one page-sized working set per operand at a time.
pub const CHUNK_VALUES: usize = 4096;

/// Encoding of "no parent" / "no reference" in u32 id fields.
pub const NONE_ID: u32 = u32::MAX;

/// Rounds `n` up to the next multiple of 8.
pub fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// One entry of the section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section kind (`SEC_*`).
    pub kind: u32,
    /// Absolute byte offset of the section payload (8-byte aligned).
    pub offset: u64,
    /// Unpadded payload length in bytes.
    pub length: u64,
    /// CRC-32 of the payload; 0 for the severity section, which is
    /// covered per-chunk instead.
    pub crc: u32,
}

impl Section {
    /// Encodes the 32-byte table entry.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // flags
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.length.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // pad
    }

    /// Decodes a 32-byte table entry.
    pub fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() < SECTION_ENTRY_LEN {
            return Err(StoreError::format("section table entry is truncated"));
        }
        Ok(Self {
            kind: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            offset: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            length: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            crc: u32::from_le_bytes(buf[24..28].try_into().unwrap()),
        })
    }
}

/// A little-endian read cursor over a byte slice. Every accessor fails
/// with a [`StoreError::Format`] instead of panicking so damaged input
/// can never take the process down.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::format(format!(
                "unexpected end of data while reading {what}"
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.bytes(1, what)?[0])
    }

    /// Reads one little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }
}

/// Decodes a little-endian f64 slice (used for severity pages).
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Number of chunks covering `len` bytes of severity data.
pub fn chunk_count(len: usize, chunk_values: usize) -> usize {
    let chunk_bytes = chunk_values * 8;
    len.div_ceil(chunk_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_kernel_blocks_match_store_pages() {
        // Page-granular streaming: the fused evaluator's parallel block
        // is exactly one severity page, so workers consume decoded
        // `.cubec` data at the store's own granularity.
        assert_eq!(CHUNK_VALUES, cube_algebra::kernel::BLOCK_VALUES);
    }

    #[test]
    fn align8_rounds_up() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
    }

    #[test]
    fn section_roundtrip() {
        let s = Section {
            kind: SEC_METADATA,
            offset: 128,
            length: 77,
            crc: 0xdeadbeef,
        };
        let mut buf = Vec::new();
        s.encode(&mut buf);
        assert_eq!(buf.len(), SECTION_ENTRY_LEN);
        assert_eq!(Section::decode(&buf).unwrap(), s);
        assert!(Section::decode(&buf[..10]).is_err());
    }

    #[test]
    fn cursor_reports_what_ran_out() {
        let mut c = Cursor::new(&[1, 0, 0, 0]);
        assert_eq!(c.u32("count").unwrap(), 1);
        let err = c.u32("name length").unwrap_err();
        assert!(err.to_string().contains("name length"), "{err}");
    }

    #[test]
    fn chunk_count_covers_tail() {
        assert_eq!(chunk_count(0, CHUNK_VALUES), 0);
        assert_eq!(chunk_count(8, CHUNK_VALUES), 1);
        assert_eq!(chunk_count(CHUNK_VALUES * 8, CHUNK_VALUES), 1);
        assert_eq!(chunk_count(CHUNK_VALUES * 8 + 1, CHUNK_VALUES), 2);
    }
}
