//! Error type of the `.cubec` store layer.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use cube_xml::LimitKind;

/// Errors raised while encoding, decoding, or verifying a `.cubec` file.
#[derive(Debug)]
pub enum StoreError {
    /// The bytes are not a well-formed `.cubec` container: bad magic,
    /// unsupported version, inconsistent section table, undersized
    /// section, or an invalid dictionary reference.
    Format {
        /// What is wrong, in terms of the `docs/STORE.md` layout.
        message: String,
    },
    /// A checksum did not match the stored bytes: the file was altered
    /// after it was written.
    Checksum {
        /// CRC-32 recorded in the file.
        expected: u32,
        /// CRC-32 the bytes actually hash to.
        actual: u32,
        /// Which checksummed region failed, e.g. a section name or
        /// `severity chunk 3 (metric 'time', cnode 7)`.
        context: String,
    },
    /// The file exceeds a configured resource limit
    /// ([`ReadLimits`](cube_xml::ReadLimits)); only the input-size and
    /// entity-count limits apply to the binary format.
    Limit {
        /// Which limit was crossed.
        kind: LimitKind,
        /// Human-readable description with the offending and allowed
        /// values.
        message: String,
    },
    /// The decoded experiment violates the CUBE data model.
    Model(cube_model::ModelError),
    /// Underlying I/O failure. `path` is the file involved, when the
    /// operation had one.
    Io {
        /// File the operation was reading or writing.
        path: Option<PathBuf>,
        /// The OS-level failure.
        source: std::io::Error,
    },
}

impl StoreError {
    pub(crate) fn format(message: impl Into<String>) -> Self {
        Self::Format {
            message: message.into(),
        }
    }

    pub(crate) fn io_at(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Self::Io {
            path: Some(path.into()),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Format { message } => write!(f, "not a valid .cubec file: {message}"),
            Self::Checksum {
                expected,
                actual,
                context,
            } => write!(
                f,
                "checksum mismatch in {context}: recorded crc32 {expected:08x}, bytes hash to {actual:08x}"
            ),
            Self::Limit { message, .. } => write!(f, "resource limit exceeded: {message}"),
            Self::Model(e) => write!(f, "experiment violates the data model: {e}"),
            Self::Io {
                path: Some(p),
                source,
            } => write!(f, "I/O error on {}: {source}", p.display()),
            Self::Io { path: None, source } => write!(f, "I/O error: {source}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<cube_model::ModelError> for StoreError {
    fn from(e: cube_model::ModelError) -> Self {
        Self::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StoreError::format("magic bytes do not match");
        assert!(e.to_string().contains("magic"), "{e}");
        let c = StoreError::Checksum {
            expected: 0xdeadbeef,
            actual: 0x12345678,
            context: "metadata section".into(),
        };
        assert!(c.to_string().contains("deadbeef"), "{c}");
        assert!(c.to_string().contains("metadata section"), "{c}");
        let io = StoreError::io_at(
            "/tmp/x.cubec",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(io.to_string().contains("/tmp/x.cubec"), "{io}");
        assert!(Error::source(&io).is_some());
    }
}
