//! Encoding and decoding of the METADATA section: a string dictionary
//! followed by the provenance record, the severity shape, and the
//! entity tables of all three dimensions in a fixed order.
//!
//! Strings are interned in first-use order, so encoding the same
//! experiment always yields the same bytes — the canonical-encoding
//! property the `pack(unpack(x)) == x` law relies on. The byte-level
//! field order is specified in `docs/STORE.md` §4.

use std::collections::HashMap;

use cube_model::{
    CallNode, CallNodeId, CallSite, CallSiteId, CartTopology, Machine, MachineId, Metadata, Metric,
    MetricId, Module, ModuleId, NodeId, Process, ProcessId, Provenance, Region, RegionKind,
    SystemNode, Thread, Unit,
};
use cube_xml::{LimitKind, ReadLimits};

use crate::error::StoreError;
use crate::layout::{Cursor, NONE_ID};

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

/// String interner: first occurrence assigns the next dictionary id.
#[derive(Default)]
struct Dict {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dict {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn opt_id(id: Option<impl IdIndex>) -> u32 {
    id.map_or(NONE_ID, |i| i.as_u32())
}

/// Unifies the dense id types for encoding.
trait IdIndex {
    fn as_u32(&self) -> u32;
}

macro_rules! impl_id_index {
    ($($t:ty),*) => {$(
        impl IdIndex for $t {
            fn as_u32(&self) -> u32 {
                self.index() as u32
            }
        }
    )*}
}

impl_id_index!(MetricId, ModuleId, CallSiteId, CallNodeId, MachineId, NodeId, ProcessId);

fn unit_code(u: Unit) -> u8 {
    match u {
        Unit::Seconds => 0,
        Unit::Bytes => 1,
        Unit::Occurrences => 2,
    }
}

fn region_kind_code(k: RegionKind) -> u8 {
    match k {
        RegionKind::Function => 0,
        RegionKind::Loop => 1,
        RegionKind::UserRegion => 2,
    }
}

/// Encodes metadata and provenance into METADATA-section bytes.
pub fn encode_metadata(md: &Metadata, prov: &Provenance) -> Vec<u8> {
    let mut dict = Dict::default();
    let mut body = Vec::new();

    // Provenance record.
    match prov {
        Provenance::Original { name } => {
            body.push(0u8);
            put_u32(&mut body, dict.intern(name));
        }
        Provenance::Derived { operator, operands } => {
            body.push(1u8);
            put_u32(&mut body, dict.intern(operator));
            put_u32(&mut body, operands.len() as u32);
            for op in operands {
                put_u32(&mut body, dict.intern(op));
            }
        }
        Provenance::Recovered { source, note } => {
            body.push(2u8);
            put_u32(&mut body, dict.intern(source));
            put_u32(&mut body, dict.intern(note));
        }
    }

    // Severity shape.
    let (nm, nc, nt) = md.shape();
    put_u32(&mut body, nm as u32);
    put_u32(&mut body, nc as u32);
    put_u32(&mut body, nt as u32);

    // Entity tables, each `count` then fixed-width records in id order.
    put_u32(&mut body, md.metrics().len() as u32);
    for m in md.metrics() {
        put_u32(&mut body, dict.intern(&m.name));
        put_u32(&mut body, dict.intern(&m.description));
        body.push(unit_code(m.unit));
        put_u32(&mut body, opt_id(m.parent));
    }

    put_u32(&mut body, md.modules().len() as u32);
    for m in md.modules() {
        put_u32(&mut body, dict.intern(&m.name));
        put_u32(&mut body, dict.intern(&m.path));
    }

    put_u32(&mut body, md.regions().len() as u32);
    for r in md.regions() {
        put_u32(&mut body, dict.intern(&r.name));
        put_u32(&mut body, r.module.index() as u32);
        body.push(region_kind_code(r.kind));
        put_u32(&mut body, r.begin_line);
        put_u32(&mut body, r.end_line);
    }

    put_u32(&mut body, md.call_sites().len() as u32);
    for cs in md.call_sites() {
        put_u32(&mut body, dict.intern(&cs.file));
        put_u32(&mut body, cs.line);
        put_u32(&mut body, cs.callee.index() as u32);
    }

    put_u32(&mut body, md.call_nodes().len() as u32);
    for cn in md.call_nodes() {
        put_u32(&mut body, cn.call_site.index() as u32);
        put_u32(&mut body, opt_id(cn.parent));
    }

    put_u32(&mut body, md.machines().len() as u32);
    for m in md.machines() {
        put_u32(&mut body, dict.intern(&m.name));
    }

    put_u32(&mut body, md.nodes().len() as u32);
    for n in md.nodes() {
        put_u32(&mut body, dict.intern(&n.name));
        put_u32(&mut body, n.machine.index() as u32);
    }

    put_u32(&mut body, md.processes().len() as u32);
    for p in md.processes() {
        put_u32(&mut body, dict.intern(&p.name));
        put_u32(&mut body, p.rank as u32); // two's complement
        put_u32(&mut body, p.node.index() as u32);
    }

    put_u32(&mut body, md.threads().len() as u32);
    for t in md.threads() {
        put_u32(&mut body, dict.intern(&t.name));
        put_u32(&mut body, t.number);
        put_u32(&mut body, t.process.index() as u32);
    }

    put_u32(&mut body, md.topologies().len() as u32);
    for t in md.topologies() {
        put_u32(&mut body, dict.intern(&t.name));
        put_u32(&mut body, t.dims.len() as u32);
        for &d in &t.dims {
            put_u32(&mut body, d);
        }
        for &p in &t.periodic {
            body.push(u8::from(p));
        }
        put_u32(&mut body, t.coords.len() as u32);
        for (p, c) in &t.coords {
            put_u32(&mut body, p.index() as u32);
            for &x in c {
                put_u32(&mut body, x);
            }
        }
    }

    // Dictionary first, then the body that references it.
    let mut out = Vec::with_capacity(body.len() + 64);
    put_u32(&mut out, dict.strings.len() as u32);
    for s in &dict.strings {
        put_u32(&mut out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&body);
    out
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    cur: Cursor<'a>,
    dict: Vec<&'a str>,
    max_entities: usize,
}

impl<'a> Decoder<'a> {
    fn count(&mut self, what: &str) -> Result<usize, StoreError> {
        let n = self.cur.u32(what)? as usize;
        if n > self.max_entities {
            return Err(StoreError::Limit {
                kind: LimitKind::Entities,
                message: format!(
                    "{what} {n} exceeds the limit of {} entities",
                    self.max_entities
                ),
            });
        }
        Ok(n)
    }

    fn string(&mut self, what: &str) -> Result<String, StoreError> {
        let id = self.cur.u32(what)? as usize;
        self.dict.get(id).map(|s| s.to_string()).ok_or_else(|| {
            StoreError::format(format!(
                "bad dictionary: {what} references string {id} of {}",
                self.dict.len()
            ))
        })
    }

    fn opt_id(&mut self, what: &str) -> Result<Option<u32>, StoreError> {
        let v = self.cur.u32(what)?;
        Ok(if v == NONE_ID { None } else { Some(v) })
    }
}

fn decode_unit(code: u8) -> Result<Unit, StoreError> {
    match code {
        0 => Ok(Unit::Seconds),
        1 => Ok(Unit::Bytes),
        2 => Ok(Unit::Occurrences),
        _ => Err(StoreError::format(format!("unknown unit code {code}"))),
    }
}

fn decode_region_kind(code: u8) -> Result<RegionKind, StoreError> {
    match code {
        0 => Ok(RegionKind::Function),
        1 => Ok(RegionKind::Loop),
        2 => Ok(RegionKind::UserRegion),
        _ => Err(StoreError::format(format!(
            "unknown region kind code {code}"
        ))),
    }
}

/// Decodes METADATA-section bytes back into metadata and provenance.
///
/// Dangling cross-references (a region pointing past the module table,
/// a cycle in a parent chain) are *not* rejected here — they surface
/// through [`Metadata::validate`] exactly like in the XML reader, so
/// both formats share one diagnosis path. Dictionary references and
/// enum codes *are* checked, because nothing downstream would.
pub fn decode_metadata(
    bytes: &[u8],
    limits: &ReadLimits,
) -> Result<(Metadata, Provenance), StoreError> {
    let mut cur = Cursor::new(bytes);
    let nstrings = cur.u32("dictionary count")? as usize;
    if nstrings > limits.max_entities {
        return Err(StoreError::Limit {
            kind: LimitKind::Entities,
            message: format!(
                "dictionary defines {nstrings} strings, exceeding the limit of {} entities",
                limits.max_entities
            ),
        });
    }
    let mut dict = Vec::with_capacity(nstrings.min(1 << 16));
    for i in 0..nstrings {
        let len = cur.u32("dictionary string length")? as usize;
        let raw = cur.bytes(len, "dictionary string")?;
        let s = std::str::from_utf8(raw).map_err(|_| {
            StoreError::format(format!("bad dictionary: string {i} is not valid UTF-8"))
        })?;
        dict.push(s);
    }
    let mut d = Decoder {
        cur,
        dict,
        max_entities: limits.max_entities,
    };

    let prov = match d.cur.u8("provenance kind")? {
        0 => Provenance::original(d.string("provenance name")?),
        1 => {
            let operator = d.string("provenance operator")?;
            let n = d.count("provenance operand count")?;
            let mut operands = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                operands.push(d.string("provenance operand")?);
            }
            Provenance::derived(operator, operands)
        }
        2 => {
            let source = d.string("provenance source")?;
            let note = d.string("provenance note")?;
            Provenance::recovered(source, note)
        }
        k => {
            return Err(StoreError::format(format!(
                "unknown provenance kind code {k}"
            )))
        }
    };

    let nm = d.cur.u32("metric shape")? as usize;
    let nc = d.cur.u32("call-node shape")? as usize;
    let nt = d.cur.u32("thread shape")? as usize;

    let mut md = Metadata::new();

    let n = d.count("metric count")?;
    for _ in 0..n {
        let name = d.string("metric name")?;
        let description = d.string("metric description")?;
        let unit = decode_unit(d.cur.u8("metric unit")?)?;
        let parent = d.opt_id("metric parent")?.map(MetricId::new);
        md.add_metric(Metric {
            name,
            unit,
            description,
            parent,
        });
    }

    let n = d.count("module count")?;
    for _ in 0..n {
        let name = d.string("module name")?;
        let path = d.string("module path")?;
        md.add_module(Module::new(name, path));
    }

    let n = d.count("region count")?;
    for _ in 0..n {
        let name = d.string("region name")?;
        let module = ModuleId::new(d.cur.u32("region module")?);
        let kind = decode_region_kind(d.cur.u8("region kind")?)?;
        let begin_line = d.cur.u32("region begin line")?;
        let end_line = d.cur.u32("region end line")?;
        md.add_region(Region {
            name,
            module,
            kind,
            begin_line,
            end_line,
        });
    }

    let n = d.count("call-site count")?;
    for _ in 0..n {
        let file = d.string("call-site file")?;
        let line = d.cur.u32("call-site line")?;
        let callee = cube_model::RegionId::new(d.cur.u32("call-site callee")?);
        md.add_call_site(CallSite { file, line, callee });
    }

    let n = d.count("call-node count")?;
    for _ in 0..n {
        let call_site = CallSiteId::new(d.cur.u32("call-node site")?);
        let parent = d.opt_id("call-node parent")?.map(CallNodeId::new);
        md.add_call_node(CallNode { call_site, parent });
    }

    let n = d.count("machine count")?;
    for _ in 0..n {
        let name = d.string("machine name")?;
        md.add_machine(Machine::new(name));
    }

    let n = d.count("node count")?;
    for _ in 0..n {
        let name = d.string("node name")?;
        let machine = MachineId::new(d.cur.u32("node machine")?);
        md.add_node(SystemNode::new(name, machine));
    }

    let n = d.count("process count")?;
    for _ in 0..n {
        let name = d.string("process name")?;
        let rank = d.cur.u32("process rank")? as i32;
        let node = NodeId::new(d.cur.u32("process node")?);
        md.add_process(Process::new(name, rank, node));
    }

    let n = d.count("thread count")?;
    for _ in 0..n {
        let name = d.string("thread name")?;
        let number = d.cur.u32("thread number")?;
        let process = ProcessId::new(d.cur.u32("thread process")?);
        md.add_thread(Thread::new(name, number, process));
    }

    let n = d.count("topology count")?;
    for _ in 0..n {
        let name = d.string("topology name")?;
        let ndims = d.count("topology dimension count")?;
        let mut dims = Vec::with_capacity(ndims.min(1 << 8));
        for _ in 0..ndims {
            dims.push(d.cur.u32("topology dimension")?);
        }
        let mut periodic = Vec::with_capacity(ndims.min(1 << 8));
        for _ in 0..ndims {
            periodic.push(d.cur.u8("topology periodicity")? != 0);
        }
        let ncoords = d.count("topology coordinate count")?;
        let mut topo = CartTopology::new(name, dims, periodic);
        for _ in 0..ncoords {
            let p = ProcessId::new(d.cur.u32("topology process")?);
            let mut c = Vec::with_capacity(ndims.min(1 << 8));
            for _ in 0..ndims {
                c.push(d.cur.u32("topology coordinate")?);
            }
            topo.coords.push((p, c));
        }
        md.add_topology(topo);
    }

    if d.cur.remaining() != 0 {
        return Err(StoreError::format(format!(
            "metadata section has {} trailing bytes",
            d.cur.remaining()
        )));
    }
    if md.shape() != (nm, nc, nt) {
        return Err(StoreError::format(format!(
            "declared shape {:?} disagrees with the entity tables {:?}",
            (nm, nc, nt),
            md.shape()
        )));
    }
    Ok((md, prov))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::ExperimentBuilder;

    fn sample() -> (Metadata, Provenance) {
        let mut b = ExperimentBuilder::new("meta roundtrip");
        let time = b.def_metric("time", Unit::Seconds, "total", None);
        b.def_metric("mpi", Unit::Seconds, "mpi", Some(time));
        let m = b.def_module("a.c", "/src/a.c");
        let r = b.def_region("main", m, RegionKind::Function, 1, 40);
        let cs = b.def_call_site("a.c", 3, r);
        let root = b.def_call_node(cs, None);
        b.def_call_node(cs, Some(root));
        let ts = single_threaded_system(&mut b, 2);
        let exp = b.build().unwrap();
        let _ = ts;
        (exp.metadata().clone(), exp.provenance().clone())
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (md, prov) = sample();
        let bytes = encode_metadata(&md, &prov);
        let (md2, prov2) = decode_metadata(&bytes, &ReadLimits::default()).unwrap();
        assert_eq!(md, md2);
        assert_eq!(prov, prov2);
    }

    #[test]
    fn encoding_is_deterministic() {
        let (md, prov) = sample();
        assert_eq!(encode_metadata(&md, &prov), encode_metadata(&md, &prov));
    }

    #[test]
    fn derived_and_recovered_provenance_roundtrip() {
        let (md, _) = sample();
        for prov in [
            Provenance::derived("mean", vec!["a".into(), "b".into()]),
            Provenance::recovered("run 1", "damaged; 2 rows recovered"),
        ] {
            let bytes = encode_metadata(&md, &prov);
            let (_, p2) = decode_metadata(&bytes, &ReadLimits::default()).unwrap();
            assert_eq!(prov, p2);
        }
    }

    #[test]
    fn negative_rank_roundtrips_via_twos_complement() {
        let mut md = Metadata::new();
        let mach = md.add_machine(Machine::new("m"));
        let node = md.add_node(SystemNode::new("n", mach));
        let p = md.add_process(Process::new("p", -3, node));
        md.add_thread(Thread::new("t", 0, p));
        md.add_metric(Metric::root("time", Unit::Seconds, ""));
        let m = md.add_module(Module::new("a", "a"));
        let r = md.add_region(Region {
            name: "main".into(),
            module: m,
            kind: RegionKind::Function,
            begin_line: 1,
            end_line: 1,
        });
        let cs = md.add_call_site(CallSite {
            file: "a".into(),
            line: 1,
            callee: r,
        });
        md.add_call_node(CallNode {
            call_site: cs,
            parent: None,
        });
        let bytes = encode_metadata(&md, &Provenance::original("x"));
        let (md2, _) = decode_metadata(&bytes, &ReadLimits::default()).unwrap();
        assert_eq!(md2.processes()[0].rank, -3);
    }

    #[test]
    fn bad_dictionary_reference_is_rejected() {
        let (md, prov) = sample();
        let mut bytes = encode_metadata(&md, &prov);
        // The provenance name ref sits right after the dictionary and
        // the 1-byte kind tag; point it past the dictionary.
        let dict_end = {
            let mut cur = Cursor::new(&bytes);
            let n = cur.u32("count").unwrap();
            let mut pos = 4;
            for _ in 0..n {
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4 + len;
            }
            pos
        };
        bytes[dict_end + 1..dict_end + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_metadata(&bytes, &ReadLimits::default()).unwrap_err();
        assert!(err.to_string().contains("bad dictionary"), "{err}");
    }

    #[test]
    fn entity_limit_is_enforced() {
        let (md, prov) = sample();
        let bytes = encode_metadata(&md, &prov);
        let limits = ReadLimits {
            max_entities: 1,
            ..ReadLimits::default()
        };
        let err = decode_metadata(&bytes, &limits).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Limit {
                    kind: LimitKind::Entities,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (md, prov) = sample();
        let mut bytes = encode_metadata(&md, &prov);
        bytes.push(0);
        let err = decode_metadata(&bytes, &ReadLimits::default()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
