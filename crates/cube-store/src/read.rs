//! The `.cubec` readers: strict full decode, lazy columnar open, and
//! the salvage path for damaged files.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use cube_algebra::BatchOperand;
use cube_model::{Experiment, Metadata, Provenance, Severity};
use cube_xml::footer::crc32;
use cube_xml::{FooterStatus, LimitKind, ReadLimits};

use crate::error::StoreError;
use crate::layout::{
    chunk_count, decode_f64s, Cursor, Section, FOOTER_LEN, FOOTER_MAGIC, HEADER_LEN, MAGIC,
    SECTION_ENTRY_LEN, SEC_CHUNKCRC, SEC_METADATA, SEC_SEVERITY, VERSION,
};
use crate::meta::decode_metadata;

// ---------------------------------------------------------------------------
// container structure
// ---------------------------------------------------------------------------

/// The three section-table entries every version-1 file carries.
struct Sections {
    meta: Section,
    crcs: Section,
    sev: Section,
}

fn check_input_len(len: u64, limits: &ReadLimits) -> Result<(), StoreError> {
    if len > limits.max_input_bytes as u64 {
        return Err(StoreError::Limit {
            kind: LimitKind::InputBytes,
            message: format!(
                "file is {len} bytes, exceeding the limit of {} bytes",
                limits.max_input_bytes
            ),
        });
    }
    Ok(())
}

/// Parses the fixed header, returning `(section_count, table_offset)`.
fn parse_header(buf: &[u8]) -> Result<(usize, u64), StoreError> {
    let mut cur = Cursor::new(buf);
    let magic = cur.bytes(8, "file magic")?;
    if magic != MAGIC {
        return Err(StoreError::format("magic bytes do not match"));
    }
    let version = cur.u32("format version")?;
    if version != VERSION {
        return Err(StoreError::format(format!(
            "unsupported format version {version} (this reader understands {VERSION})"
        )));
    }
    let section_count = cur.u32("section count")? as usize;
    let table_offset = cur.u64("section table offset")?;
    Ok((section_count, table_offset))
}

/// Parses the section table and picks out the three known sections.
fn parse_sections(table: &[u8], count: usize, file_len: u64) -> Result<Sections, StoreError> {
    let (mut meta, mut crcs, mut sev) = (None, None, None);
    for i in 0..count {
        let s = Section::decode(&table[i * SECTION_ENTRY_LEN..])?;
        if s.offset % 8 != 0 {
            return Err(StoreError::format(format!(
                "section {} offset {} is not 8-byte aligned",
                s.kind, s.offset
            )));
        }
        if s.offset
            .checked_add(s.length)
            .is_none_or(|end| end > file_len)
        {
            return Err(StoreError::format(format!(
                "section {} extends past the end of the file",
                s.kind
            )));
        }
        let slot = match s.kind {
            SEC_METADATA => &mut meta,
            SEC_CHUNKCRC => &mut crcs,
            SEC_SEVERITY => &mut sev,
            _ => continue, // unknown sections are skippable by design
        };
        if slot.replace(s).is_some() {
            return Err(StoreError::format(format!(
                "duplicate section of kind {}",
                s.kind
            )));
        }
    }
    match (meta, crcs, sev) {
        (Some(meta), Some(crcs), Some(sev)) => Ok(Sections { meta, crcs, sev }),
        (None, _, _) => Err(StoreError::format("missing metadata section")),
        (_, None, _) => Err(StoreError::format("missing chunk-CRC section")),
        (_, _, None) => Err(StoreError::format("missing severity section")),
    }
}

fn verify_section(bytes: &[u8], s: &Section, name: &str) -> Result<(), StoreError> {
    let actual = crc32(bytes);
    if actual != s.crc {
        return Err(StoreError::Checksum {
            expected: s.crc,
            actual,
            context: format!("{name} section"),
        });
    }
    Ok(())
}

/// Decodes the chunk-CRC section: `(values per chunk, per-chunk CRCs)`.
fn parse_chunk_table(bytes: &[u8], sev_len: usize) -> Result<(usize, Vec<u32>), StoreError> {
    let mut cur = Cursor::new(bytes);
    let chunk_values = cur.u32("chunk size")? as usize;
    if chunk_values == 0 {
        return Err(StoreError::format("chunk size of zero values"));
    }
    let n = cur.u32("chunk count")? as usize;
    if n != chunk_count(sev_len, chunk_values) {
        return Err(StoreError::format(format!(
            "chunk table lists {n} chunks but the severity section needs {}",
            chunk_count(sev_len, chunk_values)
        )));
    }
    let mut crcs = Vec::with_capacity(n);
    for _ in 0..n {
        crcs.push(cur.u32("chunk CRC")?);
    }
    if cur.remaining() != 0 {
        return Err(StoreError::format("chunk table has trailing bytes"));
    }
    Ok((chunk_values, crcs))
}

/// Checks the 16-byte footer against the file, returning the XML
/// layer's [`FooterStatus`] so both formats report integrity the same
/// way. `Absent` means the trailer is missing or mangled beyond
/// recognition (e.g. the file was truncated).
pub fn check_store_footer(bytes: &[u8]) -> FooterStatus {
    if bytes.len() < FOOTER_LEN {
        return FooterStatus::Absent;
    }
    let tail = &bytes[bytes.len() - FOOTER_LEN..];
    if tail[12..16] != FOOTER_MAGIC {
        return FooterStatus::Absent;
    }
    let recorded_len = u64::from_le_bytes(tail[4..12].try_into().unwrap());
    if recorded_len != bytes.len() as u64 {
        return FooterStatus::Absent;
    }
    let expected = u32::from_le_bytes(tail[0..4].try_into().unwrap());
    let actual = crc32(&bytes[..bytes.len() - FOOTER_LEN]);
    if expected == actual {
        FooterStatus::Valid
    } else {
        FooterStatus::Mismatch { expected, actual }
    }
}

/// Names the first severity tuple a chunk covers, for recovery and
/// corruption messages: `severity chunk K (metric 'NAME', cnode C)`.
fn chunk_context(md: &Metadata, chunk: usize, chunk_values: usize) -> String {
    let (_, nc, nt) = md.shape();
    let v = chunk * chunk_values;
    if nc == 0 || nt == 0 {
        return format!("severity chunk {chunk}");
    }
    let m = v / (nc * nt);
    let c = (v / nt) % nc;
    match md.metrics().get(m) {
        Some(metric) => format!(
            "severity chunk {chunk} (metric '{}', cnode {c})",
            metric.name
        ),
        None => format!("severity chunk {chunk}"),
    }
}

// ---------------------------------------------------------------------------
// strict full decode
// ---------------------------------------------------------------------------

/// Decodes a complete in-memory `.cubec` image, verifying the footer,
/// every section CRC, and every severity chunk CRC.
pub fn read_store(bytes: &[u8], limits: &ReadLimits) -> Result<Experiment, StoreError> {
    check_input_len(bytes.len() as u64, limits)?;
    let (md, sev, prov) = read_store_parts(bytes, limits)?;
    Experiment::new(md, sev, prov).map_err(StoreError::Model)
}

/// Like [`read_store`] but returns the raw parts without running the
/// data-model validation, so the linter can report *all* model
/// violations instead of the first.
pub fn read_store_parts(
    bytes: &[u8],
    limits: &ReadLimits,
) -> Result<(Metadata, Severity, Provenance), StoreError> {
    match check_store_footer(bytes) {
        FooterStatus::Valid => {}
        FooterStatus::Absent => {
            return Err(StoreError::format(
                "missing or truncated footer (every writer-produced file ends in CEND)",
            ))
        }
        FooterStatus::Mismatch { expected, actual } => {
            return Err(StoreError::Checksum {
                expected,
                actual,
                context: "whole file".into(),
            })
        }
    }
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(StoreError::format("file is shorter than header + footer"));
    }
    let (count, table_off) = parse_header(&bytes[..HEADER_LEN])?;
    let table_end = table_off as usize + count * SECTION_ENTRY_LEN;
    if table_end > bytes.len() - FOOTER_LEN {
        return Err(StoreError::format("section table extends past the file"));
    }
    let sections = parse_sections(
        &bytes[table_off as usize..table_end],
        count,
        (bytes.len() - FOOTER_LEN) as u64,
    )?;

    let meta_bytes = section_bytes(bytes, &sections.meta);
    verify_section(meta_bytes, &sections.meta, "metadata")?;
    let (md, prov) = decode_metadata(meta_bytes, limits)?;

    let crc_bytes = section_bytes(bytes, &sections.crcs);
    verify_section(crc_bytes, &sections.crcs, "chunk-CRC")?;
    let sev_bytes = section_bytes(bytes, &sections.sev);
    let (chunk_values, crcs) = parse_chunk_table(crc_bytes, sev_bytes.len())?;

    let (nm, nc, nt) = md.shape();
    if sev_bytes.len() != nm * nc * nt * 8 {
        return Err(StoreError::format(format!(
            "severity section is {} bytes but the shape {:?} needs {}",
            sev_bytes.len(),
            (nm, nc, nt),
            nm * nc * nt * 8
        )));
    }
    for (k, chunk) in sev_bytes.chunks(chunk_values * 8).enumerate() {
        let actual = crc32(chunk);
        if actual != crcs[k] {
            return Err(StoreError::Checksum {
                expected: crcs[k],
                actual,
                context: chunk_context(&md, k, chunk_values),
            });
        }
    }
    let sev = Severity::from_values(nm, nc, nt, decode_f64s(sev_bytes));
    Ok((md, sev, prov))
}

fn section_bytes<'a>(bytes: &'a [u8], s: &Section) -> &'a [u8] {
    &bytes[s.offset as usize..(s.offset + s.length) as usize]
}

/// Reads and strictly decodes a `.cubec` file with default limits.
pub fn read_store_file(path: impl AsRef<Path>) -> Result<Experiment, StoreError> {
    read_store_file_with(path, &ReadLimits::default())
}

/// Reads and strictly decodes a `.cubec` file with explicit limits.
pub fn read_store_file_with(
    path: impl AsRef<Path>,
    limits: &ReadLimits,
) -> Result<Experiment, StoreError> {
    let path = path.as_ref();
    let bytes = read_limited(path, limits)?;
    read_store(&bytes, limits)
}

/// Reads a file after checking its size against the input limit, so an
/// oversized file is refused before its bytes are pulled in. The bytes
/// pass through the [`cube_xml::faults`] seam (site `store.file`) so a
/// fault harness can exercise the strict-read and salvage paths.
fn read_limited(path: &Path, limits: &ReadLimits) -> Result<Vec<u8>, StoreError> {
    let err = |e: std::io::Error| StoreError::io_at(path, e);
    let len = std::fs::metadata(path).map_err(err)?.len();
    check_input_len(len, limits)?;
    let mut bytes = std::fs::read(path).map_err(err)?;
    if let Some(e) = cube_xml::faults::inject("store.file", &mut bytes) {
        return Err(StoreError::io_at(path, e));
    }
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// lazy columnar handle
// ---------------------------------------------------------------------------

/// A `.cubec` file opened lazily: metadata decoded, severity pages left
/// on disk until first touch.
///
/// Opening reads only the header, section table, metadata section, and
/// chunk-CRC table — a few kilobytes regardless of how large the
/// severity data is. The dense severity values are loaded (and their
/// chunk CRCs verified) on the first call to
/// [`severity`](Self::severity) and cached; the batch engine gathers
/// straight from that borrowed page via the
/// [`BatchOperand`] impl, never materializing an
/// [`Experiment`].
pub struct ColumnarExperiment {
    path: PathBuf,
    metadata: Metadata,
    provenance: Provenance,
    sev_offset: u64,
    sev_len: usize,
    chunk_values: usize,
    chunk_crcs: Vec<u32>,
    cache: OnceLock<Vec<f64>>,
}

impl ColumnarExperiment {
    /// Opens a `.cubec` file lazily with default limits.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(path, &ReadLimits::default())
    }

    /// Opens a `.cubec` file lazily with explicit limits.
    ///
    /// The footer's magic and recorded length are checked (so plain
    /// truncation is caught at open time) but the whole-file CRC is
    /// *not* computed — that would force reading every severity page,
    /// defeating the point of a lazy open. Severity chunks are CRC-
    /// verified when they are first loaded; use
    /// [`read_store_file`] when full up-front verification is wanted.
    pub fn open_with(path: impl AsRef<Path>, limits: &ReadLimits) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let err = |e: std::io::Error| StoreError::io_at(path, e);
        let mut f = File::open(path).map_err(err)?;
        let file_len = f.metadata().map_err(err)?.len();
        check_input_len(file_len, limits)?;
        if file_len < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Err(StoreError::format("file is shorter than header + footer"));
        }

        let header = read_at(&mut f, 0, HEADER_LEN, path)?;
        let (count, table_off) = parse_header(&header)?;
        let footer = read_at(&mut f, file_len - FOOTER_LEN as u64, FOOTER_LEN, path)?;
        if footer[12..16] != FOOTER_MAGIC
            || u64::from_le_bytes(footer[4..12].try_into().unwrap()) != file_len
        {
            return Err(StoreError::format(
                "missing or truncated footer (every writer-produced file ends in CEND)",
            ));
        }

        let table_len = count
            .checked_mul(SECTION_ENTRY_LEN)
            .filter(|&l| table_off + l as u64 <= file_len - FOOTER_LEN as u64)
            .ok_or_else(|| StoreError::format("section table extends past the file"))?;
        let table = read_at(&mut f, table_off, table_len, path)?;
        let sections = parse_sections(&table, count, file_len - FOOTER_LEN as u64)?;

        let mut meta_bytes = read_at(
            &mut f,
            sections.meta.offset,
            sections.meta.length as usize,
            path,
        )?;
        // Fault seam at the repository-open boundary: an injected byte
        // flip here is caught by the section CRC check below, i.e. the
        // production corruption path, not a synthetic error.
        if let Some(e) = cube_xml::faults::inject("store.open", &mut meta_bytes) {
            return Err(StoreError::io_at(path, e));
        }
        verify_section(&meta_bytes, &sections.meta, "metadata")?;
        let (metadata, provenance) = decode_metadata(&meta_bytes, limits)?;

        let crc_bytes = read_at(
            &mut f,
            sections.crcs.offset,
            sections.crcs.length as usize,
            path,
        )?;
        verify_section(&crc_bytes, &sections.crcs, "chunk-CRC")?;
        let sev_len = sections.sev.length as usize;
        let (chunk_values, chunk_crcs) = parse_chunk_table(&crc_bytes, sev_len)?;

        let (nm, nc, nt) = metadata.shape();
        if sev_len != nm * nc * nt * 8 {
            return Err(StoreError::format(format!(
                "severity section is {sev_len} bytes but the shape {:?} needs {}",
                (nm, nc, nt),
                nm * nc * nt * 8
            )));
        }

        Ok(Self {
            path: path.to_path_buf(),
            metadata,
            provenance,
            sev_offset: sections.sev.offset,
            sev_len,
            chunk_values,
            chunk_crcs,
            cache: OnceLock::new(),
        })
    }

    /// The decoded metadata.
    pub fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    /// The decoded provenance.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// The severity shape `(metrics, call nodes, threads)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.metadata.shape()
    }

    /// The file this handle reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the severity pages have been pulled into memory yet.
    pub fn is_loaded(&self) -> bool {
        self.cache.get().is_some()
    }

    /// The dense severity values, loading and CRC-verifying the pages
    /// from disk on first call. Subsequent calls borrow the cache.
    pub fn severity(&self) -> Result<&[f64], StoreError> {
        if let Some(v) = self.cache.get() {
            return Ok(v);
        }
        let v = self.load_severity()?;
        Ok(self.cache.get_or_init(|| v))
    }

    fn load_severity(&self) -> Result<Vec<f64>, StoreError> {
        let mut f = File::open(&self.path).map_err(|e| StoreError::io_at(&self.path, e))?;
        let mut bytes = read_at(&mut f, self.sev_offset, self.sev_len, &self.path)?;
        // Fault seam at the severity-page boundary: corruption injected
        // here trips the per-chunk CRC loop below. A failed load does
        // not poison the OnceLock cache, so a later retry can succeed.
        if let Some(e) = cube_xml::faults::inject("store.severity", &mut bytes) {
            return Err(StoreError::io_at(&self.path, e));
        }
        for (k, chunk) in bytes.chunks(self.chunk_values * 8).enumerate() {
            let actual = crc32(chunk);
            if actual != self.chunk_crcs[k] {
                return Err(StoreError::Checksum {
                    expected: self.chunk_crcs[k],
                    actual,
                    context: chunk_context(&self.metadata, k, self.chunk_values),
                });
            }
        }
        Ok(decode_f64s(&bytes))
    }

    /// Materializes a validated [`Experiment`] (loads severity).
    pub fn to_experiment(&self) -> Result<Experiment, StoreError> {
        let values = self.severity()?.to_vec();
        let (nm, nc, nt) = self.shape();
        Experiment::new(
            self.metadata.clone(),
            Severity::from_values(nm, nc, nt, values),
            self.provenance.clone(),
        )
        .map_err(StoreError::Model)
    }
}

impl BatchOperand for ColumnarExperiment {
    fn metadata(&self) -> &Metadata {
        &self.metadata
    }

    fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    fn severity_shape(&self) -> (usize, usize, usize) {
        self.shape()
    }

    /// Panics if the severity pages cannot be read or fail their CRCs;
    /// call [`ColumnarExperiment::severity`] first to surface I/O and
    /// corruption errors through `Result`.
    fn severity_values(&self) -> &[f64] {
        self.severity()
            .expect("severity pages unreadable; call ColumnarExperiment::severity() first")
    }
}

fn read_at(f: &mut File, offset: u64, len: usize, path: &Path) -> Result<Vec<u8>, StoreError> {
    let err = |e: std::io::Error| StoreError::io_at(path, e);
    f.seek(SeekFrom::Start(offset)).map_err(err)?;
    let mut buf = vec![0u8; len];
    f.read_exact(&mut buf).map_err(err)?;
    Ok(buf)
}

// ---------------------------------------------------------------------------
// salvage
// ---------------------------------------------------------------------------

/// What the `.cubec` salvage reader managed to recover, mirroring
/// [`cube_xml::SalvageReport`] for the binary format.
#[derive(Clone, Debug)]
pub struct StoreReport {
    /// `true` when nothing was lost: every chunk intact and the
    /// whole-file checksum (when verifiable) matched.
    pub complete: bool,
    /// Severity chunks recovered intact; damaged chunks read as zero
    /// (the algebra's zero-extension convention).
    pub chunks_recovered: usize,
    /// Total severity chunks the file declares.
    pub chunks_total: usize,
    /// Human-readable description of the first loss, `None` when
    /// nothing was lost.
    pub loss: Option<String>,
    /// Which structure the first loss hit, e.g.
    /// `severity chunk 3 (metric 'time', cnode 7)`.
    pub context: Option<String>,
    /// Outcome of the whole-file checksum verification.
    pub checksum: FooterStatus,
}

/// Salvages what it can from a damaged `.cubec` file.
///
/// The header, section table, metadata section, and chunk-CRC table
/// are *structural*: damage there is unrecoverable and returns an
/// error. Damage confined to severity pages — a truncated tail, a
/// flipped byte failing its chunk CRC — zeroes exactly the affected
/// chunks and reports them, with the experiment's provenance rewrapped
/// as [`Provenance::Recovered`] naming the damaged structure.
pub fn salvage_store_file(
    path: impl AsRef<Path>,
    limits: &ReadLimits,
) -> Result<(Experiment, StoreReport), StoreError> {
    salvage_store_file_as(path, None, limits)
}

/// [`salvage_store_file`] with an explicit *origin* — the name the
/// recovery provenance note should call the damaged store.
///
/// When the bytes live inside a hash-sharded repository (or pass
/// through a staging temp file), the transient filesystem path is the
/// wrong name for the lineage record; the caller passes the durable
/// one — e.g. the repository-relative `objects/ab/….cubec`. With
/// `origin: None` the note format is unchanged.
pub fn salvage_store_file_as(
    path: impl AsRef<Path>,
    origin: Option<&str>,
    limits: &ReadLimits,
) -> Result<(Experiment, StoreReport), StoreError> {
    let path = path.as_ref();
    let bytes = read_limited(path, limits)?;
    let checksum = check_store_footer(&bytes);
    let body_len = match checksum {
        FooterStatus::Absent => bytes.len() as u64, // truncated: no trailer to trust
        _ => (bytes.len() - FOOTER_LEN) as u64,
    };

    if bytes.len() < HEADER_LEN {
        return Err(StoreError::format("file is shorter than its header"));
    }
    let (count, table_off) = parse_header(&bytes[..HEADER_LEN])?;
    let table_end = table_off as usize + count * SECTION_ENTRY_LEN;
    if table_end as u64 > body_len {
        return Err(StoreError::format("section table extends past the file"));
    }
    // Sections are validated against the length the writer recorded —
    // a truncated file keeps its table intact (severity comes last), so
    // per-chunk availability is checked below instead.
    let sections = parse_sections(&bytes[table_off as usize..table_end], count, u64::MAX)?;

    let meta_end = (sections.meta.offset + sections.meta.length) as usize;
    if meta_end as u64 > body_len {
        return Err(StoreError::format("metadata section extends past the file"));
    }
    let meta_bytes = section_bytes(&bytes, &sections.meta);
    verify_section(meta_bytes, &sections.meta, "metadata")?;
    let (md, prov) = decode_metadata(meta_bytes, limits)?;

    let crcs_end = (sections.crcs.offset + sections.crcs.length) as usize;
    if crcs_end as u64 > body_len {
        return Err(StoreError::format(
            "chunk-CRC section extends past the file",
        ));
    }
    let crc_bytes = section_bytes(&bytes, &sections.crcs);
    verify_section(crc_bytes, &sections.crcs, "chunk-CRC")?;
    let sev_len = sections.sev.length as usize;
    let (chunk_values, crcs) = parse_chunk_table(crc_bytes, sev_len)?;

    let (nm, nc, nt) = md.shape();
    if sev_len != nm * nc * nt * 8 {
        return Err(StoreError::format(format!(
            "severity section is {sev_len} bytes but the shape {:?} needs {}",
            (nm, nc, nt),
            nm * nc * nt * 8
        )));
    }

    // Per-chunk recovery: keep chunks whose bytes are present and hash
    // to their recorded CRC, zero the rest.
    let mut values = vec![0.0f64; nm * nc * nt];
    let chunk_bytes = chunk_values * 8;
    let sev_off = sections.sev.offset as usize;
    let available = (body_len as usize).saturating_sub(sev_off).min(sev_len);
    let mut recovered = 0usize;
    let mut loss: Option<String> = None;
    let mut context: Option<String> = None;
    for (k, &expected) in crcs.iter().enumerate() {
        let lo = k * chunk_bytes;
        let hi = (lo + chunk_bytes).min(sev_len);
        let (what, ok) = if hi > available {
            ("severity pages truncated", false)
        } else {
            let chunk = &bytes[sev_off + lo..sev_off + hi];
            if crc32(chunk) == expected {
                values[lo / 8..hi / 8].copy_from_slice(&decode_f64s(chunk));
                ("", true)
            } else {
                ("severity page failed its checksum", false)
            }
        };
        if ok {
            recovered += 1;
        } else if loss.is_none() {
            loss = Some(what.to_string());
            context = Some(chunk_context(&md, k, chunk_values));
        }
    }

    let complete = recovered == crcs.len() && !checksum.is_mismatch();
    let report = StoreReport {
        complete,
        chunks_recovered: recovered,
        chunks_total: crcs.len(),
        loss,
        context,
        checksum,
    };

    let mut exp = Experiment::new_unchecked(md, Severity::from_values(nm, nc, nt, values), prov);
    if !report.complete {
        let what = match (&report.loss, &report.context) {
            (Some(w), Some(c)) => format!("{w} in {c}"),
            (Some(w), None) => w.clone(),
            (None, _) => "checksum mismatch".to_string(),
        };
        let mut note = format!(
            "{what}; {} of {} chunks recovered",
            report.chunks_recovered, report.chunks_total
        );
        if let Some(origin) = origin {
            note = format!("{origin}: {note}");
        }
        let source = exp.provenance().label();
        exp.set_provenance(Provenance::recovered(source, note));
    }
    Ok((exp, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::{write_store, write_store_file};
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn sample(threads: usize) -> Experiment {
        let mut b = ExperimentBuilder::new("read test");
        let time = b.def_metric("time", Unit::Seconds, "total", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "mpi", Some(time));
        let m = b.def_module("a.c", "/a.c");
        let r = b.def_region("main", m, RegionKind::Function, 1, 9);
        let cs = b.def_call_site("a.c", 1, r);
        let root = b.def_call_node(cs, None);
        let child = b.def_call_node(cs, Some(root));
        let ts = single_threaded_system(&mut b, threads);
        for (i, &t) in ts.iter().enumerate() {
            b.set_severity(time, root, t, 1.0 + i as f64);
            b.set_severity(mpi, child, t, 0.5 * i as f64);
        }
        b.build().unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cube-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn strict_roundtrip() {
        let exp = sample(3);
        let bytes = write_store(&exp);
        let back = read_store(&bytes, &ReadLimits::default()).unwrap();
        assert_eq!(exp, back);
    }

    #[test]
    fn lazy_open_defers_severity() {
        let exp = sample(2);
        let d = tmpdir("lazy");
        let p = d.join("a.cubec");
        write_store_file(&exp, &p).unwrap();
        let col = ColumnarExperiment::open(&p).unwrap();
        assert!(!col.is_loaded());
        assert_eq!(col.metadata(), exp.metadata());
        assert_eq!(col.provenance(), exp.provenance());
        assert_eq!(col.shape(), exp.severity().shape());
        assert_eq!(col.severity().unwrap(), exp.severity().values());
        assert!(col.is_loaded());
        assert_eq!(col.to_experiment().unwrap(), exp);
    }

    #[test]
    fn flipped_severity_byte_fails_strict_read_with_context() {
        let exp = sample(2);
        let mut bytes = write_store(&exp);
        // Flip a byte inside the severity section (the last section).
        let n = bytes.len();
        bytes[n - FOOTER_LEN - 5] ^= 0xff;
        let err = read_store(&bytes, &ReadLimits::default()).unwrap_err();
        // Whole-file CRC trips first on a full strict read.
        assert!(matches!(err, StoreError::Checksum { .. }), "{err}");
    }

    #[test]
    fn lazy_open_catches_chunk_corruption_on_load() {
        let exp = sample(2);
        let d = tmpdir("chunk");
        let p = d.join("bad.cubec");
        let mut bytes = write_store(&exp);
        let n = bytes.len();
        bytes[n - FOOTER_LEN - 5] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        // Open succeeds (structure intact), the load reports the chunk.
        let col = ColumnarExperiment::open(&p).unwrap();
        let err = col.severity().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("severity chunk 0"), "{msg}");
        assert!(msg.contains("metric 'time'"), "{msg}");
    }

    #[test]
    fn salvage_zeroes_damaged_chunks_and_rewraps_provenance() {
        let exp = sample(2);
        let d = tmpdir("salvage");
        let p = d.join("bad.cubec");
        let mut bytes = write_store(&exp);
        let n = bytes.len();
        bytes[n - FOOTER_LEN - 5] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        let (rec, report) = salvage_store_file(&p, &ReadLimits::default()).unwrap();
        assert!(!report.complete);
        assert_eq!(report.chunks_total, 1);
        assert_eq!(report.chunks_recovered, 0);
        assert!(report.checksum.is_mismatch());
        assert!(report.context.as_deref().unwrap().contains("metric 'time'"));
        assert!(rec.severity().values().iter().all(|&v| v == 0.0));
        assert!(rec.provenance().is_recovered());
        let label = match rec.provenance() {
            Provenance::Recovered { note, .. } => note.clone(),
            _ => unreachable!(),
        };
        assert!(label.contains("0 of 1 chunks recovered"), "{label}");
    }

    #[test]
    fn salvage_of_truncated_file_keeps_leading_chunks() {
        // Enough threads to span several chunks: 2 metrics × 2 cnodes ×
        // 3000 threads = 12000 values ≈ 3 chunks of 4096.
        let exp = sample(3000);
        let d = tmpdir("trunc");
        let p = d.join("t.cubec");
        let bytes = write_store(&exp);
        let cut = bytes.len() - FOOTER_LEN - 6000; // into the last chunk
        std::fs::write(&p, &bytes[..cut]).unwrap();
        let (rec, report) = salvage_store_file(&p, &ReadLimits::default()).unwrap();
        assert!(!report.complete);
        assert_eq!(report.checksum, FooterStatus::Absent);
        assert_eq!(report.chunks_total, 3);
        assert_eq!(report.chunks_recovered, 2);
        assert!(report.loss.as_deref().unwrap().contains("truncated"));
        // The surviving prefix matches the original values.
        let keep = 2 * 4096;
        assert_eq!(
            &rec.severity().values()[..keep],
            &exp.severity().values()[..keep]
        );
        assert!(rec.severity().values()[keep..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn salvage_refuses_damaged_metadata() {
        let exp = sample(2);
        let d = tmpdir("meta");
        let p = d.join("m.cubec");
        let mut bytes = write_store(&exp);
        bytes[HEADER_LEN + 3 * SECTION_ENTRY_LEN + 9] ^= 0xff; // inside the dictionary
        std::fs::write(&p, &bytes).unwrap();
        let err = salvage_store_file(&p, &ReadLimits::default()).unwrap_err();
        assert!(matches!(err, StoreError::Checksum { .. }), "{err}");
        assert!(err.to_string().contains("metadata section"), "{err}");
    }

    #[test]
    fn salvage_of_intact_file_is_complete() {
        let exp = sample(2);
        let d = tmpdir("ok");
        let p = d.join("ok.cubec");
        write_store_file(&exp, &p).unwrap();
        let (rec, report) = salvage_store_file(&p, &ReadLimits::default()).unwrap();
        assert!(report.complete);
        assert_eq!(report.checksum, FooterStatus::Valid);
        assert!(report.loss.is_none() && report.context.is_none());
        assert_eq!(rec, exp);
    }

    #[test]
    fn truncation_into_structure_is_unrecoverable() {
        let exp = sample(2);
        let d = tmpdir("hdr");
        let p = d.join("h.cubec");
        let bytes = write_store(&exp);
        std::fs::write(&p, &bytes[..40]).unwrap();
        assert!(salvage_store_file(&p, &ReadLimits::default()).is_err());
    }

    #[test]
    fn input_size_limit_applies() {
        let exp = sample(2);
        let d = tmpdir("limit");
        let p = d.join("l.cubec");
        write_store_file(&exp, &p).unwrap();
        let limits = ReadLimits {
            max_input_bytes: 10,
            ..ReadLimits::default()
        };
        let err = read_store_file_with(&p, &limits).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Limit {
                    kind: LimitKind::InputBytes,
                    ..
                }
            ),
            "{err}"
        );
        assert!(ColumnarExperiment::open_with(&p, &limits).is_err());
    }

    #[test]
    fn not_a_cubec_file_is_a_format_error() {
        let err =
            read_store(b"<?xml version=\"1.0\"?><cube/>", &ReadLimits::default()).unwrap_err();
        assert!(matches!(err, StoreError::Format { .. }), "{err}");
    }
}
