//! # cube-store — the `.cubec` columnar binary store
//!
//! The CUBE XML format is the *interchange* representation: readable,
//! diffable, self-describing. This crate adds the *serving*
//! representation: `.cubec`, a versioned, magic-tagged binary container
//! that keeps the metadata tree dictionary-encoded in one compact
//! section and the dense severity values in fixed-size CRC-guarded
//! pages, so a reader can open an experiment without touching its data
//! pages at all. The on-disk layout is specified normatively in
//! `docs/STORE.md`; durability (atomic rename, checksum footers) and
//! salvage semantics follow the rules the XML format established in
//! `docs/FORMAT.md` §10.
//!
//! Three ways in:
//!
//! * [`read_store_file`] — strict: verifies the whole-file checksum,
//!   every section CRC, and every severity chunk CRC, then
//!   materializes a validated [`cube_model::Experiment`].
//! * [`ColumnarExperiment::open`] — lazy: decodes only the metadata and
//!   chunk-CRC table (a few kilobytes however large the file);
//!   severity pages load and verify on first touch. The handle
//!   implements [`cube_algebra::BatchOperand`], so the batch engine
//!   gathers from the borrowed pages without ever building an
//!   `Experiment`.
//! * [`salvage_store_file`] — forgiving: zeroes exactly the damaged
//!   severity chunks, keeps everything else, and reports what was lost
//!   in a [`StoreReport`].
//!
//! ```
//! use cube_algebra::{BatchPlan, Expr, MergeOptions, Reduction, BatchOperand};
//! use cube_store::{write_store_file, ColumnarExperiment};
//! # use cube_model::{ExperimentBuilder, Unit, RegionKind};
//! # use cube_model::builder::single_threaded_system;
//! # fn mk(v: f64) -> cube_model::Experiment {
//! #     let mut b = ExperimentBuilder::new("e");
//! #     let t = b.def_metric("time", Unit::Seconds, "", None);
//! #     let m = b.def_module("a", "a");
//! #     let r = b.def_region("main", m, RegionKind::Function, 1, 1);
//! #     let cs = b.def_call_site("a", 1, r);
//! #     let root = b.def_call_node(cs, None);
//! #     let ts = single_threaded_system(&mut b, 1);
//! #     b.set_severity(t, root, ts[0], v);
//! #     b.build().unwrap()
//! # }
//! # let dir = std::env::temp_dir().join(format!("cubec-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir).unwrap();
//! // pack: one canonical, checksummed, atomically-committed file each
//! let a = dir.join("a.cubec");
//! let b = dir.join("b.cubec");
//! write_store_file(&mk(10.0), &a)?;
//! write_store_file(&mk(4.0), &b)?;
//!
//! // lazy open: metadata only, severity pages stay on disk
//! let a = ColumnarExperiment::open(&a)?;
//! let b = ColumnarExperiment::open(&b)?;
//! a.severity()?; // surface I/O + CRC errors before the gather
//! b.severity()?;
//!
//! // gather: BatchPlan pulls from the borrowed pages directly
//! let ops: Vec<&dyn BatchOperand> = vec![&a, &b];
//! let plan = BatchPlan::from_operands(&ops, MergeOptions::default());
//! let mean = plan.eval(&Expr::reduce(Reduction::Mean, 0..2))?;
//! assert_eq!(mean.severity().values()[0], 7.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod layout;
pub mod lint;
pub mod meta;
pub mod read;
pub mod write;

pub use error::StoreError;
pub use lint::{diagnostic_of_store_error, lint_file};
pub use read::{
    check_store_footer, read_store, read_store_file, read_store_file_with, read_store_parts,
    salvage_store_file, salvage_store_file_as, ColumnarExperiment, StoreReport,
};
pub use write::{write_store, write_store_file};
