//! File-level linting for `.cubec` stores, mirroring
//! [`cube_xml::lint_file`] so both formats feed the same rule engine
//! and report shape.

use std::path::Path;

use cube_model::lint::{diagnostic_of_model_error, lint_parts, Diagnostic, Location, Report};
use cube_model::RuleCode;
use cube_xml::{LimitKind, ReadLimits};

use crate::error::StoreError;
use crate::read::read_store_parts;

/// Converts a store error into a single diagnostic.
///
/// The binary format has no line/column notion, so every diagnostic
/// points at [`Location::Experiment`]; the error message itself names
/// the damaged structure (section, chunk, metric).
pub fn diagnostic_of_store_error(e: &StoreError) -> Diagnostic {
    let code = match e {
        StoreError::Io { .. } => RuleCode::Io,
        StoreError::Format { .. } => RuleCode::FormatViolation,
        StoreError::Checksum { .. } => RuleCode::ChecksumMismatch,
        StoreError::Limit { kind, .. } => match kind {
            LimitKind::InputBytes => RuleCode::InputTooLarge,
            LimitKind::Depth => RuleCode::NestingTooDeep,
            LimitKind::Entities => RuleCode::TooManyEntities,
            LimitKind::RowBytes => RuleCode::RowTooLong,
        },
        StoreError::Model(m) => return diagnostic_of_model_error(m),
    };
    Diagnostic::new(code, Location::Experiment, e.to_string())
}

/// Lints a `.cubec` file on disk. Container-level failures (I/O, bad
/// magic, checksum mismatches) become single diagnostics; a decodable
/// file runs the full model rule engine so *all* violations are
/// reported, exactly like the XML path.
pub fn lint_file(path: impl AsRef<Path>) -> Report {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            return Report::from_diagnostics(vec![diagnostic_of_store_error(&StoreError::Io {
                path: Some(path.to_path_buf()),
                source: e,
            })])
        }
    };
    match read_store_parts(&bytes, &ReadLimits::default()) {
        Ok((md, sev, prov)) => lint_parts(&md, &sev, &prov),
        Err(e) => Report::from_diagnostics(vec![diagnostic_of_store_error(&e)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::write_store_file;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    fn store_sample(tag: &str) -> std::path::PathBuf {
        let mut b = ExperimentBuilder::new("lint sample");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], 2.0);
        let exp = b.build().unwrap();
        let d = std::env::temp_dir().join(format!("cube-store-lint-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("s.cubec");
        write_store_file(&exp, &p).unwrap();
        p
    }

    #[test]
    fn valid_store_lints_clean() {
        let p = store_sample("ok");
        let report = lint_file(&p);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn missing_file_reports_e100() {
        let report = lint_file("/definitely/not/here.cubec");
        assert_eq!(report.diagnostics()[0].code.as_str(), "E100");
    }

    #[test]
    fn corrupted_store_reports_checksum_mismatch() {
        let p = store_sample("bad");
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n - 20] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        let report = lint_file(&p);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics()[0].code.as_str(), "E204");
    }

    #[test]
    fn xml_file_reports_format_violation() {
        let d = std::env::temp_dir().join(format!("cube-store-lint-xml-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("x.cubec");
        std::fs::write(&p, "<?xml version=\"1.0\"?><cube/>").unwrap();
        let report = lint_file(&p);
        assert_eq!(report.diagnostics()[0].code.as_str(), "E103");
    }
}
