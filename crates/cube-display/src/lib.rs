//! # cube-display — the CUBE display engine
//!
//! The paper's display component is a GUI with three coupled tree
//! browsers (metric, program, system). This crate implements the same
//! *semantics* as a pure, testable state machine plus a text renderer;
//! the GUI toolkit is replaced by a terminal presentation, which keeps
//! every behavior of Section 4 observable:
//!
//! * **Two user actions** — selecting a node and expanding/collapsing a
//!   node ([`BrowserState`]).
//! * **Two aggregation mechanisms** — aggregation *across* dimensions by
//!   selection (the call tree shows the selected metric, the system tree
//!   shows the selected metric and call path) and aggregation *within* a
//!   dimension by collapsing (a collapsed node shows its whole subtree).
//! * **Single representation** — each severity fraction appears exactly
//!   once per tree: an expanded node shows its exclusive value, its
//!   descendants carry the rest.
//! * **Value modes** — absolute values, percentages of the root total,
//!   and percentages *normalized with respect to another experiment*
//!   (used to compare difference experiments against a baseline).
//! * **Severity color ranking with sign relief** — colors encode the
//!   magnitude; positive values render as a *raised* relief and negative
//!   values (possible in difference experiments) as a *sunken* relief.
//! * The **flat-profile view** of the program dimension, and hiding of
//!   the thread level for single-threaded (pure MPI) experiments.
//! * A **topology heat view** ([`render_topology`]) for experiments
//!   carrying Cartesian process topologies — the visualization the
//!   paper's future work anticipates.

pub mod color;
pub mod render;
pub mod view;

pub use color::{ColorScale, Relief, Shade};
pub use render::{
    render_call_tree, render_metric_tree, render_source_pane, render_system_tree, render_topology,
    render_view, RenderOptions,
};
pub use view::{BrowserState, NormalizationRef, ProgramView, Row, RowKind, ValueMode};
