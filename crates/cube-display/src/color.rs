//! Severity color ranking.
//!
//! The display ranks all values with colors so that metric/resource
//! combinations with a high severity stand out. The color encodes the
//! *absolute* value; the *sign* is shown as a relief — raised for
//! positive values, sunken for negative ones (difference experiments
//! produce both). A color legend maps colors back onto a numeric scale.

/// Sign relief of a displayed value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relief {
    /// Positive severity (performance loss in a difference experiment's
    /// minuend-favoring convention, or any original value).
    Raised,
    /// Negative severity — only derived experiments produce these.
    Sunken,
    /// Exactly zero.
    Flat,
}

impl Relief {
    /// Relief of a value.
    pub fn of(value: f64) -> Self {
        if value > 0.0 {
            Self::Raised
        } else if value < 0.0 {
            Self::Sunken
        } else {
            Self::Flat
        }
    }

    /// One-character marker used by the text renderer (`+`/`-`/` `).
    pub fn marker(self) -> char {
        match self {
            Self::Raised => '+',
            Self::Sunken => '-',
            Self::Flat => ' ',
        }
    }
}

/// A ranked severity: color bucket plus sign relief.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shade {
    /// Color bucket, `0..ColorScale::BUCKETS`; higher is more severe.
    pub bucket: u8,
    /// Sign relief.
    pub relief: Relief,
}

/// Maps absolute severity values onto a fixed set of color buckets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColorScale {
    /// The value mapped to the hottest bucket. Values above saturate.
    pub max_abs: f64,
}

impl ColorScale {
    /// Number of color buckets (0 = negligible ... 7 = maximal).
    pub const BUCKETS: u8 = 8;

    /// Builds a scale saturating at `max_abs` (values above map to the
    /// hottest bucket). A non-positive `max_abs` yields a scale where
    /// everything lands in bucket 0.
    pub fn new(max_abs: f64) -> Self {
        Self { max_abs }
    }

    /// Ranks a value.
    pub fn shade(&self, value: f64) -> Shade {
        let relief = Relief::of(value);
        if self.max_abs <= 0.0 {
            return Shade { bucket: 0, relief };
        }
        let frac = (value.abs() / self.max_abs).clamp(0.0, 1.0);
        // Bucket boundaries are linear; bucket 0 is reserved for exact 0
        // and the bottom 1/BUCKETS of the range.
        let bucket = (frac * f64::from(Self::BUCKETS)).floor() as u8;
        Shade {
            bucket: bucket.min(Self::BUCKETS - 1),
            relief,
        }
    }

    /// ANSI 8-color escape sequence for a bucket (cold → hot).
    pub fn ansi_color(bucket: u8) -> &'static str {
        const COLORS: [&str; 8] = [
            "\x1b[90m", // bright black
            "\x1b[34m", // blue
            "\x1b[36m", // cyan
            "\x1b[32m", // green
            "\x1b[33m", // yellow
            "\x1b[35m", // magenta
            "\x1b[31m", // red
            "\x1b[91m", // bright red
        ];
        COLORS[usize::from(bucket.min(7))]
    }

    /// ANSI reset sequence.
    pub const ANSI_RESET: &'static str = "\x1b[0m";

    /// The numeric legend: for each bucket, the inclusive lower bound of
    /// absolute values it covers.
    pub fn legend(&self) -> Vec<(u8, f64)> {
        (0..Self::BUCKETS)
            .map(|b| {
                (
                    b,
                    self.max_abs.max(0.0) * f64::from(b) / f64::from(Self::BUCKETS),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relief_of_signs() {
        assert_eq!(Relief::of(1.0), Relief::Raised);
        assert_eq!(Relief::of(-0.5), Relief::Sunken);
        assert_eq!(Relief::of(0.0), Relief::Flat);
        assert_eq!(Relief::Raised.marker(), '+');
        assert_eq!(Relief::Sunken.marker(), '-');
        assert_eq!(Relief::Flat.marker(), ' ');
    }

    #[test]
    fn buckets_are_monotone_in_magnitude() {
        let s = ColorScale::new(100.0);
        let mut last = 0;
        for v in [0.0, 5.0, 20.0, 40.0, 60.0, 80.0, 99.0, 150.0] {
            let b = s.shade(v).bucket;
            assert!(b >= last, "bucket must not decrease: {v}");
            last = b;
        }
        assert_eq!(s.shade(150.0).bucket, ColorScale::BUCKETS - 1);
    }

    #[test]
    fn negative_values_rank_by_magnitude() {
        let s = ColorScale::new(10.0);
        let pos = s.shade(9.0);
        let neg = s.shade(-9.0);
        assert_eq!(pos.bucket, neg.bucket);
        assert_eq!(neg.relief, Relief::Sunken);
    }

    #[test]
    fn degenerate_scale_is_all_cold() {
        let s = ColorScale::new(0.0);
        assert_eq!(s.shade(123.0).bucket, 0);
        assert_eq!(s.shade(-1.0).relief, Relief::Sunken);
    }

    #[test]
    fn legend_has_increasing_bounds() {
        let s = ColorScale::new(80.0);
        let legend = s.legend();
        assert_eq!(legend.len(), 8);
        assert_eq!(legend[0].1, 0.0);
        for w in legend.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn ansi_codes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for b in 0..8 {
            assert!(seen.insert(ColorScale::ansi_color(b)));
        }
    }
}
