//! The browser state machine: selections, expansion, value modes, and
//! the computation of displayed rows.

use std::collections::{HashMap, HashSet};

use cube_model::aggregate::{
    call_value, flat_profile, machine_value, metric_total, node_value, process_value, root_total,
    thread_value, CallSelection, MetricSelection,
};
use cube_model::{
    CallNodeId, Experiment, MachineId, MetricId, NodeId, ProcessId, RegionId, ThreadId,
};

use crate::color::{ColorScale, Shade};

/// Which view of the program dimension is shown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProgramView {
    /// The call-tree view (the default).
    #[default]
    CallTree,
    /// The flat-profile view: one entry per region.
    FlatProfile,
}

/// Totals of a reference experiment used for normalized percentages.
///
/// "Percentages can be normalized with respect to other experiments to
/// simplify the comparison" — e.g. a difference experiment shown as
/// percent of the *previous* version's execution time (Figure 2).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NormalizationRef {
    /// Inclusive total per root-metric *name*.
    root_totals: HashMap<String, f64>,
}

impl NormalizationRef {
    /// Captures the root totals of a reference experiment.
    pub fn from_experiment(reference: &Experiment) -> Self {
        let md = reference.metadata();
        let mut root_totals = HashMap::new();
        for &root in md.metric_roots() {
            root_totals.insert(
                md.metric(root).name.clone(),
                reference.severity().metric_sum(root),
            );
        }
        Self { root_totals }
    }

    /// The reference total for a root-metric name, if present.
    pub fn total(&self, root_name: &str) -> Option<f64> {
        self.root_totals.get(root_name).copied()
    }
}

/// How numbers are presented.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ValueMode {
    /// Plain severity values.
    #[default]
    Absolute,
    /// Percent of the displayed experiment's own root-metric total.
    Percent,
    /// Percent of a *reference* experiment's root-metric total.
    PercentNormalized(NormalizationRef),
}

/// What a row represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowKind {
    /// A metric-tree node.
    Metric(MetricId),
    /// A call-tree node.
    Call(CallNodeId),
    /// A flat-profile region entry.
    Region(RegionId),
    /// A machine in the system tree.
    Machine(MachineId),
    /// An SMP node in the system tree.
    SystemNode(NodeId),
    /// A process in the system tree.
    Process(ProcessId),
    /// A thread in the system tree (hidden for single-threaded runs).
    Thread(ThreadId),
}

/// One displayed row of a tree browser.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// What the row represents.
    pub kind: RowKind,
    /// Indentation depth.
    pub depth: usize,
    /// Display label.
    pub label: String,
    /// Value in display units (absolute, or percent in percent modes).
    pub value: f64,
    /// Underlying absolute severity value.
    pub raw: f64,
    /// Severity color ranking of `raw` within this tree.
    pub shade: Shade,
    /// Whether this row is the current selection of its tree.
    pub selected: bool,
    /// Whether the node is expanded.
    pub expanded: bool,
    /// Whether the node has children (expandable).
    pub has_children: bool,
}

/// The complete interactive state of the three-pane browser.
///
/// Exactly one metric node and one call node are selected at all times;
/// the system tree has no selection (matching the paper's display).
#[derive(Clone, Debug)]
pub struct BrowserState {
    metric_selection: MetricId,
    call_selection: CallNodeId,
    expanded_metrics: HashSet<MetricId>,
    expanded_calls: HashSet<CallNodeId>,
    expanded_machines: HashSet<MachineId>,
    expanded_nodes: HashSet<NodeId>,
    expanded_processes: HashSet<ProcessId>,
    /// Presentation mode for all panes.
    pub value_mode: ValueMode,
    /// Program-dimension view.
    pub program_view: ProgramView,
}

impl BrowserState {
    /// Initial state: first metric root and first call root selected,
    /// everything collapsed, absolute values, call-tree view.
    ///
    /// # Panics
    /// Panics if the experiment has no metric or no call node — such an
    /// experiment has nothing to browse.
    pub fn new(exp: &Experiment) -> Self {
        let md = exp.metadata();
        let metric_selection = *md
            .metric_roots()
            .first()
            .expect("experiment has no metrics to display");
        let call_selection = *md
            .call_roots()
            .first()
            .expect("experiment has no call paths to display");
        Self {
            metric_selection,
            call_selection,
            expanded_metrics: HashSet::new(),
            expanded_calls: HashSet::new(),
            expanded_machines: HashSet::new(),
            expanded_nodes: HashSet::new(),
            expanded_processes: HashSet::new(),
            value_mode: ValueMode::Absolute,
            program_view: ProgramView::CallTree,
        }
    }

    // ----- selection ------------------------------------------------------

    /// The selected metric.
    pub fn selected_metric(&self) -> MetricId {
        self.metric_selection
    }

    /// The selected call path.
    pub fn selected_call(&self) -> CallNodeId {
        self.call_selection
    }

    /// Selects a metric node.
    pub fn select_metric(&mut self, m: MetricId) {
        self.metric_selection = m;
    }

    /// Selects a call-tree node.
    pub fn select_call(&mut self, c: CallNodeId) {
        self.call_selection = c;
    }

    /// Selects the first metric whose name matches, returning success.
    pub fn select_metric_by_name(&mut self, exp: &Experiment, name: &str) -> bool {
        if let Some(m) = exp.metadata().find_metric(name) {
            self.metric_selection = m;
            true
        } else {
            false
        }
    }

    /// Selects the first call node whose callee region name matches.
    pub fn select_call_by_region(&mut self, exp: &Experiment, region_name: &str) -> bool {
        let md = exp.metadata();
        for c in md.call_node_ids() {
            if md.region(md.call_node_callee(c)).name == region_name {
                self.call_selection = c;
                return true;
            }
        }
        false
    }

    // ----- expansion ------------------------------------------------------

    /// Whether a metric node is expanded.
    pub fn metric_expanded(&self, m: MetricId) -> bool {
        self.expanded_metrics.contains(&m)
    }

    /// Whether a call node is expanded.
    pub fn call_expanded(&self, c: CallNodeId) -> bool {
        self.expanded_calls.contains(&c)
    }

    /// Toggles a metric node; returns the new expansion state.
    pub fn toggle_metric(&mut self, m: MetricId) -> bool {
        if !self.expanded_metrics.remove(&m) {
            self.expanded_metrics.insert(m);
            true
        } else {
            false
        }
    }

    /// Toggles a call node; returns the new expansion state.
    pub fn toggle_call(&mut self, c: CallNodeId) -> bool {
        if !self.expanded_calls.remove(&c) {
            self.expanded_calls.insert(c);
            true
        } else {
            false
        }
    }

    /// Toggles a machine; returns the new expansion state.
    pub fn toggle_machine(&mut self, m: MachineId) -> bool {
        if !self.expanded_machines.remove(&m) {
            self.expanded_machines.insert(m);
            true
        } else {
            false
        }
    }

    /// Toggles a system node; returns the new expansion state.
    pub fn toggle_node(&mut self, n: NodeId) -> bool {
        if !self.expanded_nodes.remove(&n) {
            self.expanded_nodes.insert(n);
            true
        } else {
            false
        }
    }

    /// Toggles a process; returns the new expansion state.
    pub fn toggle_process(&mut self, p: ProcessId) -> bool {
        if !self.expanded_processes.remove(&p) {
            self.expanded_processes.insert(p);
            true
        } else {
            false
        }
    }

    /// Expands every node of every tree.
    pub fn expand_all(&mut self, exp: &Experiment) {
        let md = exp.metadata();
        self.expanded_metrics.extend(md.metric_ids());
        self.expanded_calls.extend(md.call_node_ids());
        self.expanded_machines
            .extend((0..md.machines().len() as u32).map(MachineId::new));
        self.expanded_nodes
            .extend((0..md.nodes().len() as u32).map(NodeId::new));
        self.expanded_processes
            .extend((0..md.processes().len() as u32).map(ProcessId::new));
    }

    /// Collapses every node of every tree.
    pub fn collapse_all(&mut self) {
        self.expanded_metrics.clear();
        self.expanded_calls.clear();
        self.expanded_machines.clear();
        self.expanded_nodes.clear();
        self.expanded_processes.clear();
    }

    // ----- current cross-dimension selections ------------------------------

    /// The metric selection including its expansion state: an expanded
    /// selected metric contributes only its exclusive value to the
    /// right-hand panes (single representation).
    pub fn metric_selection_view(&self) -> MetricSelection {
        MetricSelection {
            metric: self.metric_selection,
            exclusive: self.metric_expanded(self.metric_selection),
        }
    }

    /// The call selection including its expansion state: a collapsed
    /// selected call node contributes its whole subtree.
    pub fn call_selection_view(&self) -> CallSelection {
        CallSelection {
            node: self.call_selection,
            inclusive: !self.call_expanded(self.call_selection),
        }
    }

    // ----- value-mode helpers ----------------------------------------------

    /// Converts a raw value into display units for the tree rooted at
    /// the metric `m`'s tree.
    fn displayed(&self, exp: &Experiment, m: MetricId, raw: f64) -> f64 {
        match &self.value_mode {
            ValueMode::Absolute => raw,
            ValueMode::Percent => {
                let denom = root_total(exp, m);
                percent(raw, denom)
            }
            ValueMode::PercentNormalized(reference) => {
                let md = exp.metadata();
                let root = md.metric_root_of(m);
                let denom = reference
                    .total(&md.metric(root).name)
                    .unwrap_or_else(|| root_total(exp, m));
                percent(raw, denom)
            }
        }
    }

    // ----- rows -------------------------------------------------------------

    /// Rows of the metric tree (left pane).
    pub fn metric_rows(&self, exp: &Experiment) -> Vec<Row> {
        let md = exp.metadata();
        let mut rows = Vec::new();
        let mut stack: Vec<(MetricId, usize)> =
            md.metric_roots().iter().rev().map(|&m| (m, 0)).collect();
        while let Some((m, depth)) = stack.pop() {
            let expanded = self.metric_expanded(m);
            let has_children = !md.metric_children(m).is_empty();
            let raw = metric_total(
                exp,
                MetricSelection {
                    metric: m,
                    exclusive: expanded && has_children,
                },
            );
            rows.push(Row {
                kind: RowKind::Metric(m),
                depth,
                label: md.metric(m).name.clone(),
                value: self.displayed(exp, m, raw),
                raw,
                shade: Shade {
                    bucket: 0,
                    relief: crate::color::Relief::Flat,
                }, // filled below
                selected: m == self.metric_selection,
                expanded,
                has_children,
            });
            if expanded {
                for &child in md.metric_children(m).iter().rev() {
                    stack.push((child, depth + 1));
                }
            }
        }
        shade_rows(&mut rows);
        rows
    }

    /// Rows of the program pane: call tree or flat profile.
    pub fn program_rows(&self, exp: &Experiment) -> Vec<Row> {
        match self.program_view {
            ProgramView::CallTree => self.call_rows(exp),
            ProgramView::FlatProfile => self.flat_rows(exp),
        }
    }

    fn call_rows(&self, exp: &Experiment) -> Vec<Row> {
        let md = exp.metadata();
        let msel = self.metric_selection_view();
        let mut rows = Vec::new();
        let mut stack: Vec<(CallNodeId, usize)> =
            md.call_roots().iter().rev().map(|&c| (c, 0)).collect();
        while let Some((c, depth)) = stack.pop() {
            let expanded = self.call_expanded(c);
            let has_children = !md.call_node_children(c).is_empty();
            let raw = call_value(
                exp,
                msel,
                CallSelection {
                    node: c,
                    inclusive: !(expanded && has_children),
                },
            );
            rows.push(Row {
                kind: RowKind::Call(c),
                depth,
                label: md.region(md.call_node_callee(c)).name.clone(),
                value: self.displayed(exp, msel.metric, raw),
                raw,
                shade: Shade {
                    bucket: 0,
                    relief: crate::color::Relief::Flat,
                },
                selected: c == self.call_selection,
                expanded,
                has_children,
            });
            if expanded {
                for &child in md.call_node_children(c).iter().rev() {
                    stack.push((child, depth + 1));
                }
            }
        }
        shade_rows(&mut rows);
        rows
    }

    fn flat_rows(&self, exp: &Experiment) -> Vec<Row> {
        let md = exp.metadata();
        let msel = self.metric_selection_view();
        let mut rows: Vec<Row> = flat_profile(exp, msel)
            .into_iter()
            .map(|(r, raw)| Row {
                kind: RowKind::Region(r),
                depth: 0,
                label: md.region(r).name.clone(),
                value: self.displayed(exp, msel.metric, raw),
                raw,
                shade: Shade {
                    bucket: 0,
                    relief: crate::color::Relief::Flat,
                },
                selected: false,
                expanded: false,
                has_children: false,
            })
            .collect();
        shade_rows(&mut rows);
        rows
    }

    /// Rows of the system tree (right pane). The thread level is hidden
    /// when every process is single-threaded (a pure MPI run).
    pub fn system_rows(&self, exp: &Experiment) -> Vec<Row> {
        let md = exp.metadata();
        let msel = self.metric_selection_view();
        let csel = self.call_selection_view();
        let show_threads = md
            .processes()
            .iter()
            .enumerate()
            .any(|(i, _)| md.threads_of_process(ProcessId::from_index(i)).len() > 1);

        let mut rows = Vec::new();
        for (mi, machine) in md.machines().iter().enumerate() {
            let mid = MachineId::from_index(mi);
            let m_expanded = self.expanded_machines.contains(&mid);
            let m_children = !md.nodes_of_machine(mid).is_empty();
            // Non-leaf system entities are pure groupings: expanded they
            // show 0 (everything lives in their children).
            let m_raw = if m_expanded && m_children {
                0.0
            } else {
                machine_value(exp, msel, csel, mid)
            };
            rows.push(Row {
                kind: RowKind::Machine(mid),
                depth: 0,
                label: machine.name.clone(),
                value: self.displayed(exp, msel.metric, m_raw),
                raw: m_raw,
                shade: Shade {
                    bucket: 0,
                    relief: crate::color::Relief::Flat,
                },
                selected: false,
                expanded: m_expanded,
                has_children: m_children,
            });
            if !m_expanded {
                continue;
            }
            for &nid in md.nodes_of_machine(mid) {
                let n_expanded = self.expanded_nodes.contains(&nid);
                let n_children = !md.processes_of_node(nid).is_empty();
                let n_raw = if n_expanded && n_children {
                    0.0
                } else {
                    node_value(exp, msel, csel, nid)
                };
                rows.push(Row {
                    kind: RowKind::SystemNode(nid),
                    depth: 1,
                    label: md.node(nid).name.clone(),
                    value: self.displayed(exp, msel.metric, n_raw),
                    raw: n_raw,
                    shade: Shade {
                        bucket: 0,
                        relief: crate::color::Relief::Flat,
                    },
                    selected: false,
                    expanded: n_expanded,
                    has_children: n_children,
                });
                if !n_expanded {
                    continue;
                }
                for &pid in md.processes_of_node(nid) {
                    let p_expanded = self.expanded_processes.contains(&pid) && show_threads;
                    let p_has_children = show_threads && !md.threads_of_process(pid).is_empty();
                    let p_raw = if p_expanded && p_has_children {
                        0.0
                    } else {
                        process_value(exp, msel, csel, pid)
                    };
                    rows.push(Row {
                        kind: RowKind::Process(pid),
                        depth: 2,
                        label: md.process(pid).name.clone(),
                        value: self.displayed(exp, msel.metric, p_raw),
                        raw: p_raw,
                        shade: Shade {
                            bucket: 0,
                            relief: crate::color::Relief::Flat,
                        },
                        selected: false,
                        expanded: p_expanded,
                        has_children: p_has_children,
                    });
                    if !p_expanded {
                        continue;
                    }
                    for &tid in md.threads_of_process(pid) {
                        let t_raw = thread_value(exp, msel, csel, tid);
                        rows.push(Row {
                            kind: RowKind::Thread(tid),
                            depth: 3,
                            label: md.thread(tid).name.clone(),
                            value: self.displayed(exp, msel.metric, t_raw),
                            raw: t_raw,
                            shade: Shade {
                                bucket: 0,
                                relief: crate::color::Relief::Flat,
                            },
                            selected: false,
                            expanded: false,
                            has_children: false,
                        });
                    }
                }
            }
        }
        shade_rows(&mut rows);
        rows
    }
}

fn percent(raw: f64, denom: f64) -> f64 {
    if denom == 0.0 {
        0.0
    } else {
        raw / denom * 100.0
    }
}

/// Ranks the rows of one pane against the pane's own maximum magnitude.
fn shade_rows(rows: &mut [Row]) {
    let max_abs = rows.iter().fold(0.0f64, |acc, r| acc.max(r.raw.abs()));
    let scale = ColorScale::new(max_abs);
    for r in rows {
        r.shade = scale.shade(r.raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, RegionKind, Unit};

    /// metrics: time(root) > mpi; calls: main > {solve, io}; 2 ranks.
    fn sample() -> Experiment {
        let mut b = ExperimentBuilder::new("view sample");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "", Some(time));
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 99);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 5, 50);
        let io_r = b.def_region("io", m, RegionKind::Function, 60, 80);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 10, solve_r);
        let cs2 = b.def_call_site("a.c", 70, io_r);
        let root = b.def_call_node(cs0, None);
        let solve = b.def_call_node(cs1, Some(root));
        let io = b.def_call_node(cs2, Some(root));
        let ts = single_threaded_system(&mut b, 2);
        for &t in &ts {
            b.set_severity(time, root, t, 1.0);
            b.set_severity(time, solve, t, 3.0);
            b.set_severity(time, io, t, 1.0);
            b.set_severity(mpi, solve, t, 2.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn initial_state_selects_roots() {
        let e = sample();
        let s = BrowserState::new(&e);
        assert_eq!(s.selected_metric(), MetricId::new(0));
        assert_eq!(s.selected_call(), CallNodeId::new(0));
        let rows = s.metric_rows(&e);
        assert_eq!(rows.len(), 1); // collapsed root only
        assert_eq!(rows[0].label, "time");
        assert_eq!(rows[0].raw, 10.0); // total time
        assert!(rows[0].selected);
        assert!(rows[0].has_children);
    }

    #[test]
    fn expanding_metric_shows_exclusive_values() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        s.toggle_metric(MetricId::new(0));
        let rows = s.metric_rows(&e);
        assert_eq!(rows.len(), 2);
        // Single representation: expanded time shows 10 - 4 = 6.
        assert_eq!(rows[0].raw, 6.0);
        assert_eq!(rows[1].label, "mpi");
        assert_eq!(rows[1].raw, 4.0);
        assert_eq!(rows[1].depth, 1);
        // Collapsing shows the inclusive value again.
        s.toggle_metric(MetricId::new(0));
        assert_eq!(s.metric_rows(&e)[0].raw, 10.0);
    }

    #[test]
    fn call_rows_follow_metric_selection() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        // Select mpi (child metric): call tree shows mpi distribution.
        assert!(s.select_metric_by_name(&e, "mpi"));
        s.toggle_call(CallNodeId::new(0));
        let rows = s.program_rows(&e);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "main");
        assert_eq!(rows[0].raw, 0.0); // exclusive: no mpi directly in main
        assert_eq!(rows[1].label, "solve");
        assert_eq!(rows[1].raw, 4.0);
        assert_eq!(rows[2].label, "io");
        assert_eq!(rows[2].raw, 0.0);
    }

    #[test]
    fn collapsed_call_root_aggregates_subtree() {
        let e = sample();
        let s = BrowserState::new(&e);
        let rows = s.program_rows(&e);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].raw, 10.0);
    }

    #[test]
    fn percent_mode_uses_root_total() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        s.value_mode = ValueMode::Percent;
        assert!(s.select_metric_by_name(&e, "mpi"));
        let rows = s.metric_rows(&e);
        // Only root visible (time collapsed): 100% of itself.
        assert_eq!(rows[0].value, 100.0);
        s.toggle_metric(MetricId::new(0));
        let rows = s.metric_rows(&e);
        assert_eq!(rows[1].label, "mpi");
        assert!((rows[1].value - 40.0).abs() < 1e-9); // 4/10
    }

    #[test]
    fn normalized_percent_uses_reference_totals() {
        let e = sample();
        // Reference with twice the total time.
        let reference = {
            let mut r = e.clone();
            for v in r.severity_mut().values_mut() {
                *v *= 2.0;
            }
            r
        };
        let mut s = BrowserState::new(&e);
        s.value_mode = ValueMode::PercentNormalized(NormalizationRef::from_experiment(&reference));
        let rows = s.metric_rows(&e);
        assert!((rows[0].value - 50.0).abs() < 1e-9); // 10/20
    }

    #[test]
    fn system_rows_collapse_and_expand() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        let rows = s.system_rows(&e);
        assert_eq!(rows.len(), 1); // collapsed machine
        assert_eq!(rows[0].raw, 10.0);
        s.toggle_machine(MachineId::new(0));
        s.toggle_node(NodeId::new(0));
        let rows = s.system_rows(&e);
        // machine(0) + node(0) + 2 processes; thread level hidden.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].raw, 0.0); // expanded grouping rows show 0
        assert_eq!(rows[1].raw, 0.0);
        assert_eq!(rows[2].raw, 5.0);
        assert_eq!(rows[3].raw, 5.0);
        assert!(matches!(rows[2].kind, RowKind::Process(_)));
        // Thread level hidden: processes are leaves.
        assert!(!rows[2].has_children);
    }

    #[test]
    fn thread_level_shown_for_multithreaded_runs() {
        let mut b = ExperimentBuilder::new("omp");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let mach = b.def_machine("mach");
        let node = b.def_node("n0", mach);
        let p = b.def_process("rank 0", 0, node);
        let t0 = b.def_thread("t0", 0, p);
        let t1 = b.def_thread("t1", 1, p);
        b.set_severity(time, root, t0, 1.0);
        b.set_severity(time, root, t1, 2.0);
        let e = b.build().unwrap();
        let mut s = BrowserState::new(&e);
        s.expand_all(&e);
        let rows = s.system_rows(&e);
        let labels: Vec<_> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["mach", "n0", "rank 0", "t0", "t1"]);
        assert_eq!(rows[3].raw, 1.0);
        assert_eq!(rows[4].raw, 2.0);
        assert_eq!(rows[2].raw, 0.0); // expanded process is a grouping
    }

    #[test]
    fn flat_profile_view() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        s.program_view = ProgramView::FlatProfile;
        let rows = s.program_rows(&e);
        let by_label: Vec<(&str, f64)> = rows.iter().map(|r| (r.label.as_str(), r.raw)).collect();
        assert_eq!(by_label, vec![("main", 2.0), ("solve", 6.0), ("io", 2.0)]);
    }

    #[test]
    fn expanded_selected_metric_propagates_exclusively() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        // Expand the selected root metric: panes to the right see only
        // its exclusive fraction (time without mpi = 6).
        s.toggle_metric(MetricId::new(0));
        let rows = s.program_rows(&e);
        assert_eq!(rows[0].raw, 6.0);
    }

    #[test]
    fn shades_rank_within_pane() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        s.toggle_call(CallNodeId::new(0));
        let rows = s.program_rows(&e);
        let solve = rows.iter().find(|r| r.label == "solve").unwrap();
        let io = rows.iter().find(|r| r.label == "io").unwrap();
        assert!(solve.shade.bucket > io.shade.bucket);
    }

    #[test]
    fn negative_differences_get_sunken_relief() {
        let e = sample();
        let better = {
            let mut x = e.clone();
            for v in x.severity_mut().values_mut() {
                *v *= 0.5;
            }
            x
        };
        let d = cube_algebra::ops::diff(&better, &e); // negative everywhere
        let s = BrowserState::new(&d);
        let rows = s.metric_rows(&d);
        assert_eq!(rows[0].shade.relief, crate::color::Relief::Sunken);
    }

    #[test]
    fn expand_all_collapse_all_roundtrip() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        s.expand_all(&e);
        assert_eq!(s.metric_rows(&e).len(), 2);
        assert_eq!(s.program_rows(&e).len(), 3);
        s.collapse_all();
        assert_eq!(s.metric_rows(&e).len(), 1);
        assert_eq!(s.program_rows(&e).len(), 1);
        assert_eq!(s.system_rows(&e).len(), 1);
    }

    #[test]
    fn select_call_by_region_name() {
        let e = sample();
        let mut s = BrowserState::new(&e);
        assert!(s.select_call_by_region(&e, "solve"));
        assert_eq!(s.selected_call(), CallNodeId::new(1));
        assert!(!s.select_call_by_region(&e, "nonexistent"));
    }
}
