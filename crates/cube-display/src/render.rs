//! Text rendering of the three-pane browser.
//!
//! Renders [`Row`]s as indented tree listings. With ANSI enabled the
//! severity color ranking appears as a colored block glyph; the sign
//! relief renders as `+`/`-` markers on the value. Rendering is pure
//! string production — deterministic and testable.

use std::fmt::Write as _;

use cube_model::Experiment;

use crate::color::ColorScale;
use crate::view::{BrowserState, Row, ValueMode};

/// Rendering switches.
#[derive(Clone, Copy, Debug)]
pub struct RenderOptions {
    /// Emit ANSI color escapes.
    pub ansi: bool,
    /// Total width of the value column.
    pub value_width: usize,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            ansi: false,
            value_width: 12,
        }
    }
}

fn format_value(row: &Row, mode: &ValueMode, width: usize) -> String {
    let body = match mode {
        ValueMode::Absolute => {
            if row.value == 0.0 {
                "0".to_string()
            } else if row.value.abs() >= 1e6 || row.value.abs() < 1e-3 {
                format!("{:.3e}", row.value)
            } else {
                format!("{:.3}", row.value)
            }
        }
        ValueMode::Percent | ValueMode::PercentNormalized(_) => format!("{:.1}%", row.value),
    };
    format!("{body:>width$}")
}

fn render_rows(rows: &[Row], mode: &ValueMode, opts: RenderOptions, out: &mut String) {
    for row in rows {
        let block = if opts.ansi {
            format!(
                "{}■{}",
                ColorScale::ansi_color(row.shade.bucket),
                ColorScale::ANSI_RESET
            )
        } else {
            // Plain mode: digit block makes the ranking visible in tests
            // and logs.
            format!("{}", row.shade.bucket)
        };
        let expander = if row.has_children {
            if row.expanded {
                '-'
            } else {
                '+'
            }
        } else {
            ' '
        };
        let sel = if row.selected { '>' } else { ' ' };
        let indent = "  ".repeat(row.depth);
        let value = format_value(row, mode, opts.value_width);
        let relief = row.shade.relief.marker();
        let _ = writeln!(
            out,
            "{sel}{value}{relief} {block} {indent}{expander} {label}",
            label = row.label
        );
    }
}

/// Renders the metric tree pane.
pub fn render_metric_tree(exp: &Experiment, state: &BrowserState, opts: RenderOptions) -> String {
    let mut out = String::new();
    render_rows(&state.metric_rows(exp), &state.value_mode, opts, &mut out);
    out
}

/// Renders the program pane (call tree or flat profile).
pub fn render_call_tree(exp: &Experiment, state: &BrowserState, opts: RenderOptions) -> String {
    let mut out = String::new();
    render_rows(&state.program_rows(exp), &state.value_mode, opts, &mut out);
    out
}

/// Renders the system tree pane.
pub fn render_system_tree(exp: &Experiment, state: &BrowserState, opts: RenderOptions) -> String {
    let mut out = String::new();
    render_rows(&state.system_rows(exp), &state.value_mode, opts, &mut out);
    out
}

/// Renders all three panes stacked, with headers — the textual analogue
/// of the paper's Figure 1 layout.
pub fn render_view(exp: &Experiment, state: &BrowserState, opts: RenderOptions) -> String {
    let md = exp.metadata();
    let metric_name = &md.metric(state.selected_metric()).name;
    let call_name = &md.region(md.call_node_callee(state.selected_call())).name;
    let mode = match &state.value_mode {
        ValueMode::Absolute => "absolute".to_string(),
        ValueMode::Percent => "percent of root".to_string(),
        ValueMode::PercentNormalized(_) => "percent, normalized to reference".to_string(),
    };
    let mut out = String::new();
    let _ = writeln!(out, "experiment: {}", exp.provenance().label());
    let _ = writeln!(
        out,
        "selection: metric '{metric_name}', call path '{call_name}'  [{mode}]"
    );
    let _ = writeln!(out, "--- metric tree ---");
    out.push_str(&render_metric_tree(exp, state, opts));
    let _ = writeln!(out, "--- call tree ---");
    out.push_str(&render_call_tree(exp, state, opts));
    let _ = writeln!(out, "--- system tree ---");
    out.push_str(&render_system_tree(exp, state, opts));
    out
}

/// Renders the source-location pane for the current call selection —
/// the paper's GUI "includes a source-code display that shows the exact
/// position of a performance problem in the source code". Without
/// source files on disk, the pane reports the call site and the callee
/// region's extent, which is what the GUI would scroll to.
pub fn render_source_pane(exp: &Experiment, state: &BrowserState) -> String {
    let md = exp.metadata();
    let cnode = state.selected_call();
    let site = md.call_site(md.call_node(cnode).call_site);
    let region = md.region(site.callee);
    let module = md.module(region.module);
    let mut out = String::new();
    let _ = writeln!(out, "--- source location ---");
    let _ = writeln!(
        out,
        "call site:  {}:{} -> {}",
        site.file, site.line, region.name
    );
    let _ = writeln!(
        out,
        "callee:     {} ({}) lines {}..{} in module {}",
        region.name,
        region.kind.as_str(),
        region.begin_line,
        region.end_line,
        module.name
    );
    let _ = writeln!(out, "call path:  {}", md.call_path(cnode).join(" / "));
    out
}

/// Renders a Cartesian topology heat view for the current metric and
/// call-path selections — the visualization the paper's future work
/// anticipates for topology data.
///
/// 1-D topologies render as one row, 2-D as a grid (x across, y down).
/// Each occupied cell shows the severity color bucket of the process at
/// that coordinate (aggregated over its threads), ranked against the
/// topology's own maximum; `·` marks unoccupied coordinates. Returns
/// `None` when the experiment has no topology at `index` or its
/// dimensionality exceeds 2.
pub fn render_topology(
    exp: &Experiment,
    state: &BrowserState,
    index: usize,
    opts: RenderOptions,
) -> Option<String> {
    use cube_model::aggregate::process_value;

    let md = exp.metadata();
    let topo = md.topologies().get(index)?;
    if topo.ndims() == 0 || topo.ndims() > 2 {
        return None;
    }
    let (nx, ny) = (
        topo.dims[0] as usize,
        if topo.ndims() == 2 {
            topo.dims[1] as usize
        } else {
            1
        },
    );
    let msel = state.metric_selection_view();
    let csel = state.call_selection_view();

    // Values per coordinate.
    let mut values = vec![vec![None::<f64>; nx]; ny];
    let mut max_abs = 0.0f64;
    for (p, c) in &topo.coords {
        let x = c[0] as usize;
        let y = if topo.ndims() == 2 { c[1] as usize } else { 0 };
        let v = process_value(exp, msel, csel, *p);
        max_abs = max_abs.max(v.abs());
        values[y][x] = Some(v);
    }
    let scale = ColorScale::new(max_abs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "topology '{}' ({}) — metric '{}', severity heat",
        topo.name,
        topo.dims
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("x"),
        md.metric(msel.metric).name,
    );
    for row in &values {
        for cell in row {
            match cell {
                Some(v) => {
                    let shade = scale.shade(*v);
                    if opts.ansi {
                        let _ = write!(
                            out,
                            "{}■{} ",
                            ColorScale::ansi_color(shade.bucket),
                            ColorScale::ANSI_RESET
                        );
                    } else {
                        let _ = write!(out, "{}{}", shade.bucket, shade.relief.marker());
                    }
                }
                None => {
                    let _ = write!(out, "· ");
                }
            }
        }
        out.push('\n');
    }
    let legend: Vec<String> = scale
        .legend()
        .iter()
        .map(|(b, lo)| format!("{b}≥{lo:.3e}"))
        .collect();
    let _ = writeln!(out, "legend: {}", legend.join("  "));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::builder::single_threaded_system;
    use cube_model::{ExperimentBuilder, MetricId, RegionKind, Unit};

    fn sample() -> Experiment {
        let mut b = ExperimentBuilder::new("render sample");
        let time = b.def_metric("time", Unit::Seconds, "", None);
        let mpi = b.def_metric("mpi", Unit::Seconds, "", Some(time));
        let m = b.def_module("a.c", "/a.c");
        let main_r = b.def_region("main", m, RegionKind::Function, 1, 99);
        let solve_r = b.def_region("solve", m, RegionKind::Function, 5, 50);
        let cs0 = b.def_call_site("a.c", 1, main_r);
        let cs1 = b.def_call_site("a.c", 10, solve_r);
        let root = b.def_call_node(cs0, None);
        let solve = b.def_call_node(cs1, Some(root));
        let ts = single_threaded_system(&mut b, 2);
        for &t in &ts {
            b.set_severity(time, root, t, 1.0);
            b.set_severity(time, solve, t, 3.0);
            b.set_severity(mpi, solve, t, 2.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn render_marks_selection_and_expander() {
        let e = sample();
        let state = BrowserState::new(&e);
        let s = render_metric_tree(&e, &state, RenderOptions::default());
        assert!(s.starts_with('>'), "selected row marked: {s}");
        assert!(s.contains("+ time"), "collapsed expandable node: {s}");
    }

    #[test]
    fn render_shows_indentation() {
        let e = sample();
        let mut state = BrowserState::new(&e);
        state.toggle_metric(MetricId::new(0));
        let s = render_metric_tree(&e, &state, RenderOptions::default());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("- time"), "expanded marker: {}", lines[0]);
        assert!(lines[1].contains("   mpi") || lines[1].contains("  mpi"));
    }

    #[test]
    fn percent_mode_formats_with_percent_sign() {
        let e = sample();
        let mut state = BrowserState::new(&e);
        state.value_mode = crate::view::ValueMode::Percent;
        let s = render_metric_tree(&e, &state, RenderOptions::default());
        assert!(s.contains("100.0%"), "{s}");
    }

    #[test]
    fn negative_values_render_minus_relief() {
        let e = sample();
        let d = cube_algebra::ops::scale(&e, -1.0);
        let state = BrowserState::new(&d);
        let s = render_metric_tree(&d, &state, RenderOptions::default());
        // The relief marker column carries '-'.
        assert!(s.contains("- "), "{s}");
        assert!(s.contains("-8"), "negative value shown: {s}");
    }

    #[test]
    fn ansi_mode_emits_escapes() {
        let e = sample();
        let state = BrowserState::new(&e);
        let plain = render_metric_tree(&e, &state, RenderOptions::default());
        let ansi = render_metric_tree(
            &e,
            &state,
            RenderOptions {
                ansi: true,
                ..Default::default()
            },
        );
        assert!(!plain.contains('\x1b'));
        assert!(ansi.contains('\x1b'));
    }

    #[test]
    fn full_view_contains_all_panes() {
        let e = sample();
        let state = BrowserState::new(&e);
        let s = render_view(&e, &state, RenderOptions::default());
        assert!(s.contains("--- metric tree ---"));
        assert!(s.contains("--- call tree ---"));
        assert!(s.contains("--- system tree ---"));
        assert!(s.contains("render sample"));
        assert!(s.contains("metric 'time'"));
    }

    #[test]
    fn source_pane_shows_selected_call_site() {
        let e = sample();
        let mut state = BrowserState::new(&e);
        state.select_call_by_region(&e, "solve");
        let s = render_source_pane(&e, &state);
        assert!(s.contains("a.c:10 -> solve"), "{s}");
        assert!(s.contains("lines 5..50"), "{s}");
        assert!(s.contains("main / solve"), "{s}");
    }

    #[test]
    fn topology_heat_view() {
        // 2x2 grid over 4 ranks with distinct severities.
        let mut b = ExperimentBuilder::new("topo");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 4);
        for (i, &tid) in ts.iter().enumerate() {
            b.set_severity(t, root, tid, (i + 1) as f64);
        }
        let mut topo = cube_model::CartTopology::new("grid", vec![2, 2], vec![false, false]);
        for (i, (x, y)) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
            topo.coords
                .push((cube_model::ProcessId::new(i as u32), vec![*x, *y]));
        }
        b.def_topology(topo);
        let e = b.build().unwrap();

        let state = BrowserState::new(&e);
        let s = render_topology(&e, &state, 0, RenderOptions::default()).unwrap();
        assert!(s.contains("topology 'grid' (2x2)"));
        let grid_lines: Vec<&str> = s.lines().skip(1).take(2).collect();
        assert_eq!(grid_lines.len(), 2);
        // Rank 3 (value 4) is the hottest: bucket 7 in the last cell.
        assert!(grid_lines[1].trim_end().ends_with("7+"), "{s}");
        assert!(s.contains("legend:"));

        // Out-of-range index and missing topology return None.
        assert!(render_topology(&e, &state, 1, RenderOptions::default()).is_none());
    }

    #[test]
    fn topology_marks_holes() {
        let mut b = ExperimentBuilder::new("holes");
        let t = b.def_metric("time", Unit::Seconds, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], 1.0);
        let mut topo = cube_model::CartTopology::new("line", vec![3], vec![true]);
        topo.coords.push((cube_model::ProcessId::new(0), vec![1]));
        b.def_topology(topo);
        let e = b.build().unwrap();
        let state = BrowserState::new(&e);
        let s = render_topology(&e, &state, 0, RenderOptions::default()).unwrap();
        let grid = s.lines().nth(1).unwrap();
        assert!(grid.starts_with("· "), "{grid}");
        assert!(grid.contains("7+"), "{grid}");
    }

    #[test]
    fn large_and_tiny_absolutes_use_scientific_notation() {
        let mut b = ExperimentBuilder::new("sci");
        let t = b.def_metric("flops", Unit::Occurrences, "", None);
        let m = b.def_module("a", "a");
        let r = b.def_region("main", m, RegionKind::Function, 1, 1);
        let cs = b.def_call_site("a", 1, r);
        let root = b.def_call_node(cs, None);
        let ts = single_threaded_system(&mut b, 1);
        b.set_severity(t, root, ts[0], 2.5e9);
        let e = b.build().unwrap();
        let state = BrowserState::new(&e);
        let s = render_metric_tree(&e, &state, RenderOptions::default());
        assert!(
            s.contains("e9") || s.contains("e+9") || s.contains("2.500e9"),
            "{s}"
        );
    }
}
