//! Programs: per-rank operation scripts over a shared region table.

use epilog::CollectiveOp;

use crate::error::SimError;
use crate::monitor::ComputeWork;

/// A user source region of the simulated application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionInfo {
    /// Region name.
    pub name: String,
    /// Source file.
    pub file: String,
    /// First source line.
    pub line: u32,
}

impl RegionInfo {
    /// Creates a region description.
    pub fn new(name: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        Self {
            name: name.into(),
            file: file.into(),
            line,
        }
    }
}

/// One operation of a rank's script.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Enter a user region (index into [`Program::regions`]).
    Enter(usize),
    /// Exit the region entered most recently (index must match).
    Exit(usize),
    /// Busy computation for `seconds` (before noise), performing `work`.
    Compute {
        /// Nominal duration in seconds.
        seconds: f64,
        /// Synthetic workload characteristics for counter generation.
        work: ComputeWork,
    },
    /// Post an asynchronous (eager) point-to-point send.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: i32,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking receive of a matching message.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: i32,
        /// Expected payload size (informational; the matching message's
        /// actual size is reported to monitors).
        bytes: u64,
    },
    /// Blocking collective over *all* ranks.
    Collective {
        /// Which collective.
        op: CollectiveOp,
        /// Bytes contributed per rank.
        bytes: u64,
        /// Root rank for rooted collectives; `-1` otherwise.
        root: i32,
    },
    /// A fork/join parallel region (OpenMP-style): every thread of the
    /// process computes its share, the master continues when the last
    /// thread finishes.
    ParallelCompute {
        /// Nominal seconds per thread (length must equal
        /// [`Program::threads_per_rank`]); thread 0 is the master.
        seconds_per_thread: Vec<f64>,
        /// Total synthetic workload across all threads.
        work: ComputeWork,
    },
}

/// A complete simulated program: region table plus one script per rank.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name (becomes the experiment/trace name).
    pub name: String,
    /// User region table.
    pub regions: Vec<RegionInfo>,
    /// One operation script per rank.
    pub scripts: Vec<Vec<Op>>,
    /// Threads per process (1 = pure MPI; >1 = hybrid MPI + OpenMP).
    pub threads_per_rank: usize,
}

impl Program {
    /// Creates an empty pure-MPI program for `ranks` single-threaded
    /// ranks.
    pub fn new(name: impl Into<String>, ranks: usize) -> Self {
        Self::hybrid(name, ranks, 1)
    }

    /// Creates an empty hybrid program: `ranks` processes with
    /// `threads` OpenMP-style threads each.
    pub fn hybrid(name: impl Into<String>, ranks: usize, threads: usize) -> Self {
        Self {
            name: name.into(),
            regions: Vec::new(),
            scripts: vec![Vec::new(); ranks],
            threads_per_rank: threads.max(1),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.scripts.len()
    }

    /// Adds a region and returns its index.
    pub fn add_region(&mut self, info: RegionInfo) -> usize {
        self.regions.push(info);
        self.regions.len() - 1
    }

    /// Appends an op to one rank's script.
    pub fn push(&mut self, rank: usize, op: Op) {
        self.scripts[rank].push(op);
    }

    /// Appends an op to every rank's script.
    pub fn push_all(&mut self, op: Op) {
        for s in &mut self.scripts {
            s.push(op.clone());
        }
    }

    /// Static validation: indices in range, enter/exit properly nested
    /// per rank, sends/recvs address existing ranks.
    pub fn validate(&self) -> Result<(), SimError> {
        let ranks = self.ranks();
        if ranks == 0 {
            return Err(SimError::InvalidProgram("program has zero ranks".into()));
        }
        for (rank, script) in self.scripts.iter().enumerate() {
            let mut stack: Vec<usize> = Vec::new();
            for (i, op) in script.iter().enumerate() {
                match op {
                    Op::Enter(r) => {
                        if *r >= self.regions.len() {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: unknown region {r}"
                            )));
                        }
                        stack.push(*r);
                    }
                    Op::Exit(r) => match stack.pop() {
                        Some(top) if top == *r => {}
                        Some(top) => {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: exits region {r} but {top} is open"
                            )))
                        }
                        None => {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: exit with empty region stack"
                            )))
                        }
                    },
                    Op::Send { to, .. } => {
                        if *to >= ranks {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: send to unknown rank {to}"
                            )));
                        }
                        if *to == rank {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: send to self"
                            )));
                        }
                    }
                    Op::Recv { from, .. } => {
                        if *from >= ranks {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: recv from unknown rank {from}"
                            )));
                        }
                        if *from == rank {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: recv from self"
                            )));
                        }
                    }
                    Op::Compute { seconds, .. } => {
                        if !seconds.is_finite() || *seconds < 0.0 {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: bad compute duration {seconds}"
                            )));
                        }
                    }
                    Op::Collective { .. } => {}
                    Op::ParallelCompute {
                        seconds_per_thread, ..
                    } => {
                        if seconds_per_thread.len() != self.threads_per_rank {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: parallel region sized for {} threads, \
                                 program has {}",
                                seconds_per_thread.len(),
                                self.threads_per_rank
                            )));
                        }
                        if seconds_per_thread
                            .iter()
                            .any(|s| !s.is_finite() || *s < 0.0)
                        {
                            return Err(SimError::InvalidProgram(format!(
                                "rank {rank} op {i}: bad per-thread durations"
                            )));
                        }
                    }
                }
            }
            if !stack.is_empty() {
                return Err(SimError::InvalidProgram(format!(
                    "rank {rank}: {} region(s) left open",
                    stack.len()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RegionInfo {
        RegionInfo::new("main", "main.c", 1)
    }

    #[test]
    fn build_and_validate() {
        let mut p = Program::new("t", 2);
        let main = p.add_region(region());
        p.push_all(Op::Enter(main));
        p.push(
            0,
            Op::Send {
                to: 1,
                tag: 0,
                bytes: 8,
            },
        );
        p.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                bytes: 8,
            },
        );
        p.push_all(Op::Exit(main));
        p.validate().unwrap();
        assert_eq!(p.ranks(), 2);
    }

    #[test]
    fn zero_ranks_rejected() {
        let p = Program::new("t", 0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn unbalanced_regions_rejected() {
        let mut p = Program::new("t", 1);
        let main = p.add_region(region());
        p.push(0, Op::Enter(main));
        assert!(p.validate().is_err());
    }

    #[test]
    fn self_messaging_rejected() {
        let mut p = Program::new("t", 2);
        p.push(
            0,
            Op::Send {
                to: 0,
                tag: 0,
                bytes: 8,
            },
        );
        assert!(p.validate().is_err());
        let mut p = Program::new("t", 2);
        p.push(
            1,
            Op::Recv {
                from: 1,
                tag: 0,
                bytes: 8,
            },
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn out_of_range_targets_rejected() {
        let mut p = Program::new("t", 2);
        p.push(
            0,
            Op::Send {
                to: 7,
                tag: 0,
                bytes: 8,
            },
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn negative_compute_rejected() {
        let mut p = Program::new("t", 1);
        p.push(
            0,
            Op::Compute {
                seconds: -1.0,
                work: ComputeWork::default(),
            },
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn crossed_regions_rejected() {
        let mut p = Program::new("t", 1);
        let a = p.add_region(RegionInfo::new("a", "f", 1));
        let b = p.add_region(RegionInfo::new("b", "f", 2));
        p.push(0, Op::Enter(a));
        p.push(0, Op::Enter(b));
        p.push(0, Op::Exit(a));
        p.push(0, Op::Exit(b));
        assert!(p.validate().is_err());
    }
}
