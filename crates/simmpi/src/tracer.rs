//! The EPILOG tracer: records a simulation run as an event trace.
//!
//! Every monitor callback becomes one or more trace events, exactly as
//! a measurement library would emit them:
//!
//! * user regions → `Enter`/`Exit`;
//! * a send → `Enter(MPI_Send)`, `MpiSend`, `Exit` (the send-post
//!   timestamp is the `MpiSend` record's time);
//! * a receive → `Enter(MPI_Recv)` at the moment the receive was
//!   posted (waiting starts) and `MpiRecv` + `Exit` at completion —
//!   EXPERT derives *Late Sender* from these timestamps together with
//!   the sender's `MpiSend` record;
//! * a collective → `Enter(MPI_<op>)` at arrival, `CollectiveExit` +
//!   `Exit` at completion — EXPERT derives *Wait at Barrier* /
//!   *Wait at N x N* / *Barrier Completion* from the instance's
//!   enter/exit spread.

use epilog::{CollectiveOp, Event, EventKind, Location, RegionDef, Trace, TraceDefs};

use crate::monitor::{ComputeWork, Monitor};
use crate::program::Program;

/// Records a run into an EPILOG [`Trace`].
pub struct EpilogTracer {
    trace: Trace,
    /// Mapping: user region index → trace region index.
    user_regions: Vec<u32>,
    /// Trace region indices of MPI routine pseudo-regions.
    mpi_send: u32,
    mpi_recv: u32,
    mpi_coll: [u32; 5],
    /// Trace region of the `!$omp parallel` pseudo-region.
    omp_parallel: u32,
    nodes: usize,
    /// Threads per rank (1 for pure MPI).
    threads_per_rank: usize,
    /// Open *user* region stack per rank, replicated onto worker
    /// locations at each fork.
    open_stacks: Vec<Vec<u32>>,
}

impl EpilogTracer {
    /// Creates a tracer placing ranks round-robin onto `nodes` SMP
    /// nodes of machine `machine`.
    pub fn new(machine: impl Into<String>, nodes: usize) -> Self {
        Self {
            trace: Trace::new(TraceDefs {
                machine_name: machine.into(),
                ..TraceDefs::default()
            }),
            user_regions: Vec::new(),
            mpi_send: 0,
            mpi_recv: 0,
            mpi_coll: [0; 5],
            omp_parallel: 0,
            nodes: nodes.max(1),
            threads_per_rank: 1,
            open_stacks: Vec::new(),
        }
    }

    /// Records a Cartesian process topology with the trace (as an
    /// instrumented `MPI_Cart_create` would): `coords[r]` is rank `r`'s
    /// coordinate vector.
    pub fn with_topology(
        mut self,
        name: impl Into<String>,
        dims: Vec<u32>,
        periodic: Vec<bool>,
        coords: Vec<Vec<u32>>,
    ) -> Self {
        self.trace.defs.topology = Some(epilog::TopologyDef {
            name: name.into(),
            dims,
            periodic,
            coords: coords
                .into_iter()
                .enumerate()
                .map(|(rank, c)| (rank as i32, c))
                .collect(),
        });
        self
    }

    /// Consumes the tracer and returns the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    fn def_region(&mut self, name: &str, file: &str, line: u32) -> u32 {
        self.trace.defs.regions.push(RegionDef {
            name: name.to_string(),
            file: file.to_string(),
            line,
        });
        (self.trace.defs.regions.len() - 1) as u32
    }

    fn location(&self, rank: usize, thread: usize) -> u32 {
        (rank * self.threads_per_rank + thread) as u32
    }

    fn push(&mut self, time: f64, rank: usize, kind: EventKind) {
        let loc = self.location(rank, 0);
        self.trace.events.push(Event::new(time, loc, kind));
    }

    fn push_at(&mut self, time: f64, location: u32, kind: EventKind) {
        self.trace.events.push(Event::new(time, location, kind));
    }
}

impl Monitor for EpilogTracer {
    fn on_start(&mut self, program: &Program) {
        self.threads_per_rank = program.threads_per_rank;
        self.open_stacks = vec![Vec::new(); program.ranks()];
        let defs = &mut self.trace.defs;
        defs.node_names = (0..self.nodes).map(|n| format!("node{n}")).collect();
        defs.locations = (0..program.ranks())
            .flat_map(|r| {
                let nodes = self.nodes;
                (0..self.threads_per_rank).map(move |t| Location {
                    rank: r as i32,
                    thread: t as u32,
                    node_index: (r % nodes) as u32,
                })
            })
            .collect();
        self.user_regions = program
            .regions
            .iter()
            .map(|r| {
                self.trace.defs.regions.push(RegionDef {
                    name: r.name.clone(),
                    file: r.file.clone(),
                    line: r.line,
                });
                (self.trace.defs.regions.len() - 1) as u32
            })
            .collect();
        self.mpi_send = self.def_region("MPI_Send", "mpi", 0);
        self.mpi_recv = self.def_region("MPI_Recv", "mpi", 0);
        for op in [
            CollectiveOp::Barrier,
            CollectiveOp::AllToAll,
            CollectiveOp::AllReduce,
            CollectiveOp::Broadcast,
            CollectiveOp::Reduce,
        ] {
            self.mpi_coll[op.tag() as usize] = self.def_region(op.region_name(), "mpi", 0);
        }
        self.omp_parallel = self.def_region("!$omp parallel", "omp", 0);
    }

    fn on_enter(&mut self, rank: usize, region: usize, time: f64) {
        let r = self.user_regions[region];
        self.open_stacks[rank].push(r);
        self.push(time, rank, EventKind::Enter { region: r });
    }

    fn on_exit(&mut self, rank: usize, region: usize, time: f64) {
        let r = self.user_regions[region];
        self.open_stacks[rank].pop();
        self.push(time, rank, EventKind::Exit { region: r });
    }

    fn on_compute(&mut self, _rank: usize, _start: f64, _end: f64, _work: &ComputeWork) {
        // Computation is implicit in the gaps between events.
    }

    fn on_send(&mut self, rank: usize, start: f64, end: f64, dest: usize, tag: i32, bytes: u64) {
        let r = self.mpi_send;
        self.push(start, rank, EventKind::Enter { region: r });
        self.push(
            start,
            rank,
            EventKind::MpiSend {
                dest: dest as i32,
                tag,
                bytes,
            },
        );
        self.push(end, rank, EventKind::Exit { region: r });
    }

    fn on_recv(
        &mut self,
        rank: usize,
        start: f64,
        end: f64,
        source: usize,
        tag: i32,
        bytes: u64,
        _send_time: f64,
    ) {
        let r = self.mpi_recv;
        self.push(start, rank, EventKind::Enter { region: r });
        self.push(
            end,
            rank,
            EventKind::MpiRecv {
                source: source as i32,
                tag,
                bytes,
            },
        );
        self.push(end, rank, EventKind::Exit { region: r });
    }

    fn on_collective(
        &mut self,
        rank: usize,
        op: CollectiveOp,
        start: f64,
        end: f64,
        bytes: u64,
        root: i32,
    ) {
        let r = self.mpi_coll[op.tag() as usize];
        self.push(start, rank, EventKind::Enter { region: r });
        self.push(end, rank, EventKind::CollectiveExit { op, bytes, root });
        self.push(end, rank, EventKind::Exit { region: r });
    }

    fn on_parallel(
        &mut self,
        rank: usize,
        start: f64,
        thread_ends: &[f64],
        _work: &crate::monitor::ComputeWork,
    ) {
        let omp = self.omp_parallel;
        let enclosing = self.open_stacks[rank].clone();
        for (thread, &end) in thread_ends.iter().enumerate() {
            let loc = self.location(rank, thread);
            if thread > 0 {
                // Workers replicate the master's call context so the
                // analyzer sees the parallel region on the same call
                // path (the standard hybrid-trace convention).
                for &r in &enclosing {
                    self.push_at(start, loc, EventKind::Enter { region: r });
                }
            }
            self.push_at(start, loc, EventKind::Enter { region: omp });
            self.push_at(end, loc, EventKind::Exit { region: omp });
            if thread > 0 {
                for &r in enclosing.iter().rev() {
                    self.push_at(end, loc, EventKind::Exit { region: r });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::program::{Op, Program, RegionInfo};
    use crate::sim::simulate;

    fn traced_program() -> Trace {
        let mut p = Program::new("traced", 2);
        let main = p.add_region(RegionInfo::new("main", "main.c", 1));
        let work = p.add_region(RegionInfo::new("work", "main.c", 10));
        p.push_all(Op::Enter(main));
        p.push_all(Op::Enter(work));
        p.push(
            0,
            Op::Compute {
                seconds: 0.5,
                work: ComputeWork::default(),
            },
        );
        p.push(
            0,
            Op::Send {
                to: 1,
                tag: 9,
                bytes: 256,
            },
        );
        p.push(
            1,
            Op::Recv {
                from: 0,
                tag: 9,
                bytes: 256,
            },
        );
        p.push_all(Op::Exit(work));
        p.push_all(Op::Collective {
            op: CollectiveOp::Barrier,
            bytes: 0,
            root: -1,
        });
        p.push_all(Op::Exit(main));
        let mut tracer = EpilogTracer::new("simulated cluster", 2);
        simulate(&p, &MachineModel::default(), &mut tracer).unwrap();
        tracer.into_trace()
    }

    #[test]
    fn recorded_trace_is_valid() {
        let t = traced_program();
        t.validate().unwrap();
        assert_eq!(t.defs.locations.len(), 2);
        assert_eq!(t.defs.machine_name, "simulated cluster");
    }

    #[test]
    fn trace_contains_mpi_pseudo_regions() {
        let t = traced_program();
        assert!(t.defs.find_region("MPI_Send").is_some());
        assert!(t.defs.find_region("MPI_Recv").is_some());
        assert!(t.defs.find_region("MPI_Barrier").is_some());
        assert!(t.defs.find_region("main").is_some());
        assert!(t.defs.find_region("work").is_some());
    }

    #[test]
    fn event_mix_matches_program() {
        let t = traced_program();
        let s = t.stats();
        assert_eq!(s.sends, 1);
        assert_eq!(s.recvs, 1);
        assert_eq!(s.collectives, 2); // one barrier instance, two ranks
                                      // main + work + MPI_Send/Recv/Barrier wrappers per rank.
        assert_eq!(s.enters, s.exits);
    }

    #[test]
    fn recv_enter_precedes_completion() {
        let t = traced_program();
        let recv_region = t.defs.find_region("MPI_Recv").unwrap();
        let enter = t
            .events
            .iter()
            .find(|e| {
                e.location == 1
                    && matches!(e.kind, EventKind::Enter { region } if region == recv_region)
            })
            .expect("recv enter event");
        let exit = t
            .events
            .iter()
            .find(|e| {
                e.location == 1
                    && matches!(e.kind, EventKind::Exit { region } if region == recv_region)
            })
            .expect("recv exit event");
        // Rank 1 posted immediately (t=0) and waited for rank 0's send at 0.5.
        assert_eq!(enter.time, 0.0);
        assert!(exit.time > 0.5);
    }

    #[test]
    fn trace_roundtrips_through_codec() {
        let t = traced_program();
        let back = epilog::decode_trace(epilog::encode_trace(&t)).unwrap();
        assert_eq!(back, t);
    }
}
