//! The discrete-event execution engine.
//!
//! Ranks execute their scripts round-robin; each pass retires as many
//! operations per rank as possible. A rank blocks on a receive whose
//! matching send has not been posted yet, and on every collective.
//! Collectives resolve once *all* ranks are blocked on a matching
//! collective: everyone exits at `max(arrival) + cost + per-rank skew`,
//! which is exactly how temporal displacement between ranks turns into
//! measurable waiting time at synchronization points.

use std::collections::{HashMap, VecDeque};

use epilog::CollectiveOp;

use crate::error::SimError;
use crate::model::MachineModel;
use crate::monitor::Monitor;
use crate::program::{Op, Program};

/// Result of an uninstrumented (or instrumented) run.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Wall-clock time of the run: the latest rank finish time.
    pub elapsed: f64,
    /// Per-rank finish times.
    pub rank_times: Vec<f64>,
    /// Point-to-point messages delivered.
    pub messages: u64,
    /// Collective instances completed.
    pub collectives: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingCollective {
    op: CollectiveOp,
    bytes: u64,
    root: i32,
    arrival: f64,
}

struct InFlight {
    avail: f64,
    send_post: f64,
    bytes: u64,
}

/// Executes `program` under `model`, reporting observations to
/// `monitor`.
pub fn simulate(
    program: &Program,
    model: &MachineModel,
    monitor: &mut dyn Monitor,
) -> Result<SimReport, SimError> {
    program.validate()?;
    let ranks = program.ranks();
    monitor.on_start(program);

    let mut time = vec![0.0f64; ranks];
    let mut pc = vec![0usize; ranks];
    let mut done = vec![false; ranks];
    let mut recv_wait_start: Vec<Option<f64>> = vec![None; ranks];
    let mut pending_coll: Vec<Option<PendingCollective>> = vec![None; ranks];
    let mut channels: HashMap<(usize, usize, i32), VecDeque<InFlight>> = HashMap::new();
    let mut noise: Vec<_> = (0..ranks).map(|r| model.noise.source_for(r)).collect();
    let mut messages = 0u64;
    let mut collectives = 0u64;

    loop {
        let mut progress = false;

        for rank in 0..ranks {
            if done[rank] || pending_coll[rank].is_some() {
                continue;
            }
            loop {
                if pc[rank] >= program.scripts[rank].len() {
                    if !done[rank] {
                        done[rank] = true;
                        monitor.on_finish(rank, time[rank]);
                        progress = true;
                    }
                    break;
                }
                match &program.scripts[rank][pc[rank]] {
                    Op::Enter(region) => {
                        monitor.on_enter(rank, *region, time[rank]);
                        pc[rank] += 1;
                    }
                    Op::Exit(region) => {
                        monitor.on_exit(rank, *region, time[rank]);
                        pc[rank] += 1;
                    }
                    Op::Compute { seconds, work } => {
                        let dur = seconds * noise[rank].stretch();
                        let start = time[rank];
                        time[rank] = start + dur;
                        monitor.on_compute(rank, start, time[rank], work);
                        pc[rank] += 1;
                    }
                    Op::Send { to, tag, bytes } => {
                        let start = time[rank];
                        let end = start + model.network.send_overhead;
                        channels
                            .entry((rank, *to, *tag))
                            .or_default()
                            .push_back(InFlight {
                                avail: start + model.network.transfer_time(*bytes),
                                send_post: start,
                                bytes: *bytes,
                            });
                        monitor.on_send(rank, start, end, *to, *tag, *bytes);
                        time[rank] = end;
                        pc[rank] += 1;
                    }
                    Op::Recv { from, tag, .. } => {
                        let key = (*from, rank, *tag);
                        let msg = channels.get_mut(&key).and_then(|q| q.pop_front());
                        match msg {
                            Some(m) => {
                                let start = recv_wait_start[rank].take().unwrap_or(time[rank]);
                                let end = start.max(m.avail) + model.network.recv_overhead;
                                monitor.on_recv(
                                    rank,
                                    start,
                                    end,
                                    *from,
                                    *tag,
                                    m.bytes,
                                    m.send_post,
                                );
                                time[rank] = end;
                                pc[rank] += 1;
                                messages += 1;
                            }
                            None => {
                                recv_wait_start[rank].get_or_insert(time[rank]);
                                break; // blocked: matching send not posted yet
                            }
                        }
                    }
                    Op::Collective { op, bytes, root } => {
                        pending_coll[rank] = Some(PendingCollective {
                            op: *op,
                            bytes: *bytes,
                            root: *root,
                            arrival: time[rank],
                        });
                        break; // blocked until everyone arrives
                    }
                    Op::ParallelCompute {
                        seconds_per_thread,
                        work,
                    } => {
                        let start = time[rank];
                        let ends: Vec<f64> = seconds_per_thread
                            .iter()
                            .map(|s| start + s * noise[rank].stretch())
                            .collect();
                        let join = ends.iter().copied().fold(start, f64::max);
                        monitor.on_parallel(rank, start, &ends, work);
                        time[rank] = join;
                        pc[rank] += 1;
                    }
                }
                progress = true;
            }
        }

        if done.iter().all(|&d| d) {
            break;
        }
        if progress {
            continue;
        }

        // No rank advanced. Either everyone sits in one collective — then
        // it resolves — or the program deadlocks.
        let all_in_collective =
            (0..ranks).all(|r| pending_coll[r].is_some()) && !done.iter().any(|&d| d);
        if all_in_collective {
            let first = pending_coll[0].expect("checked above");
            let same_kind = pending_coll
                .iter()
                .all(|p| p.map(|p| (p.op, p.root)) == Some((first.op, first.root)));
            if !same_kind {
                return Err(SimError::Deadlock {
                    detail: format!(
                        "ranks are blocked in different collectives: {:?}",
                        pending_coll
                            .iter()
                            .map(|p| p.map(|p| p.op))
                            .collect::<Vec<_>>()
                    ),
                });
            }
            let max_arrival = pending_coll
                .iter()
                .map(|p| p.expect("all set").arrival)
                .fold(f64::NEG_INFINITY, f64::max);
            let max_bytes = pending_coll
                .iter()
                .map(|p| p.expect("all set").bytes)
                .max()
                .unwrap_or(0);
            let cost = model.collective_cost(first.op, max_bytes, ranks);
            let skew_unit = model.completion_skew_unit();
            for rank in 0..ranks {
                let p = pending_coll[rank].take().expect("all set");
                let exit = max_arrival + cost + noise[rank].exit_skew(skew_unit);
                monitor.on_collective(rank, p.op, p.arrival, exit, p.bytes, p.root);
                time[rank] = exit;
                pc[rank] += 1;
            }
            collectives += 1;
            continue;
        }

        let detail: Vec<String> = (0..ranks)
            .map(|r| {
                if done[r] {
                    format!("rank {r}: finished")
                } else if let Some(p) = pending_coll[r] {
                    format!("rank {r}: in {:?} since t={:.6}", p.op, p.arrival)
                } else {
                    match &program.scripts[r][pc[r]] {
                        Op::Recv { from, tag, .. } => format!(
                            "rank {r}: waiting for message from rank {from} tag {tag} since t={:.6}",
                            recv_wait_start[r].unwrap_or(time[r])
                        ),
                        other => format!("rank {r}: stuck at {other:?}"),
                    }
                }
            })
            .collect();
        return Err(SimError::Deadlock {
            detail: detail.join("; "),
        });
    }

    let elapsed = time.iter().copied().fold(0.0, f64::max);
    Ok(SimReport {
        elapsed,
        rank_times: time,
        messages,
        collectives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MachineModel, NoiseModel};
    use crate::monitor::{ComputeWork, NullMonitor};
    use crate::program::{Op, Program, RegionInfo};

    fn model() -> MachineModel {
        MachineModel::default()
    }

    fn wrap_main(p: &mut Program) -> usize {
        let main = p.add_region(RegionInfo::new("main", "main.c", 1));
        for rank in 0..p.ranks() {
            p.scripts[rank].insert(0, Op::Enter(main));
            p.scripts[rank].push(Op::Exit(main));
        }
        main
    }

    #[test]
    fn compute_advances_time() {
        let mut p = Program::new("t", 1);
        p.push(
            0,
            Op::Compute {
                seconds: 2.0,
                work: ComputeWork::default(),
            },
        );
        wrap_main(&mut p);
        let r = simulate(&p, &model(), &mut NullMonitor).unwrap();
        assert!((r.elapsed - 2.0).abs() < 1e-12);
    }

    #[test]
    fn message_timing_includes_transfer() {
        let mut p = Program::new("t", 2);
        p.push(
            0,
            Op::Send {
                to: 1,
                tag: 5,
                bytes: 1_000_000,
            },
        );
        p.push(
            1,
            Op::Recv {
                from: 0,
                tag: 5,
                bytes: 1_000_000,
            },
        );
        wrap_main(&mut p);
        let m = model();
        let r = simulate(&p, &m, &mut NullMonitor).unwrap();
        let expected = m.network.transfer_time(1_000_000) + m.network.recv_overhead;
        assert!((r.rank_times[1] - expected).abs() < 1e-9);
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn late_sender_wait_is_observable() {
        // Rank 1 posts the recv immediately; rank 0 computes 1s first.
        struct RecvWatch {
            start: f64,
            end: f64,
            send_time: f64,
        }
        impl Monitor for RecvWatch {
            fn on_recv(
                &mut self,
                _rank: usize,
                start: f64,
                end: f64,
                _source: usize,
                _tag: i32,
                _bytes: u64,
                send_time: f64,
            ) {
                self.start = start;
                self.end = end;
                self.send_time = send_time;
            }
        }
        let mut p = Program::new("t", 2);
        p.push(
            0,
            Op::Compute {
                seconds: 1.0,
                work: ComputeWork::default(),
            },
        );
        p.push(
            0,
            Op::Send {
                to: 1,
                tag: 0,
                bytes: 8,
            },
        );
        p.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                bytes: 8,
            },
        );
        wrap_main(&mut p);
        let mut w = RecvWatch {
            start: -1.0,
            end: -1.0,
            send_time: -1.0,
        };
        simulate(&p, &model(), &mut w).unwrap();
        assert_eq!(w.start, 0.0); // posted immediately
        assert!((w.send_time - 1.0).abs() < 1e-12);
        assert!(w.end > 1.0); // waited for the late sender
    }

    #[test]
    fn barrier_synchronizes_and_skews_exits() {
        struct CollWatch {
            arrivals: Vec<f64>,
            exits: Vec<f64>,
        }
        impl Monitor for CollWatch {
            fn on_collective(
                &mut self,
                rank: usize,
                _op: CollectiveOp,
                start: f64,
                end: f64,
                _bytes: u64,
                _root: i32,
            ) {
                self.arrivals[rank] = start;
                self.exits[rank] = end;
            }
        }
        let mut p = Program::new("t", 4);
        for rank in 0..4 {
            p.push(
                rank,
                Op::Compute {
                    seconds: 0.25 * (rank + 1) as f64,
                    work: ComputeWork::default(),
                },
            );
        }
        p.push_all(Op::Collective {
            op: CollectiveOp::Barrier,
            bytes: 0,
            root: -1,
        });
        wrap_main(&mut p);
        let mut w = CollWatch {
            arrivals: vec![0.0; 4],
            exits: vec![0.0; 4],
        };
        let m = MachineModel {
            noise: NoiseModel {
                amplitude: 0.0,
                seed: 7,
            },
            ..model()
        };
        simulate(&p, &m, &mut w).unwrap();
        // Arrivals are staggered; exits are all at/after the last arrival.
        let last = w.arrivals.iter().copied().fold(0.0, f64::max);
        assert!((last - 1.0).abs() < 1e-12);
        for r in 0..4 {
            assert!(w.exits[r] >= last);
        }
        // Exit skew produces different completion instants.
        let distinct: std::collections::HashSet<u64> =
            w.exits.iter().map(|e| e.to_bits()).collect();
        assert!(distinct.len() > 1, "exit skew must spread completions");
    }

    #[test]
    fn deadlock_on_missing_send_is_detected() {
        let mut p = Program::new("t", 2);
        p.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                bytes: 8,
            },
        );
        wrap_main(&mut p);
        let err = simulate(&p, &model(), &mut NullMonitor).unwrap_err();
        match err {
            SimError::Deadlock { detail } => {
                assert!(detail.contains("rank 1"), "{detail}");
                assert!(detail.contains("rank 0: finished"), "{detail}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mismatched_collectives_are_detected() {
        let mut p = Program::new("t", 2);
        p.push(
            0,
            Op::Collective {
                op: CollectiveOp::Barrier,
                bytes: 0,
                root: -1,
            },
        );
        p.push(
            1,
            Op::Collective {
                op: CollectiveOp::AllReduce,
                bytes: 8,
                root: -1,
            },
        );
        wrap_main(&mut p);
        assert!(matches!(
            simulate(&p, &model(), &mut NullMonitor),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn messages_match_fifo_per_tag() {
        struct Recvs(Vec<u64>);
        impl Monitor for Recvs {
            fn on_recv(
                &mut self,
                _rank: usize,
                _start: f64,
                _end: f64,
                _source: usize,
                _tag: i32,
                bytes: u64,
                _send_time: f64,
            ) {
                self.0.push(bytes);
            }
        }
        let mut p = Program::new("t", 2);
        for bytes in [10u64, 20, 30] {
            p.push(
                0,
                Op::Send {
                    to: 1,
                    tag: 1,
                    bytes,
                },
            );
        }
        for _ in 0..3 {
            p.push(
                1,
                Op::Recv {
                    from: 0,
                    tag: 1,
                    bytes: 0,
                },
            );
        }
        wrap_main(&mut p);
        let mut w = Recvs(Vec::new());
        simulate(&p, &model(), &mut w).unwrap();
        assert_eq!(w.0, vec![10, 20, 30]);
    }

    #[test]
    fn noise_changes_elapsed_time_reproducibly() {
        let mut p = Program::new("t", 1);
        p.push(
            0,
            Op::Compute {
                seconds: 1.0,
                work: ComputeWork::default(),
            },
        );
        wrap_main(&mut p);
        let quiet = simulate(&p, &model(), &mut NullMonitor).unwrap();
        let noisy_model = MachineModel {
            noise: NoiseModel {
                amplitude: 0.2,
                seed: 3,
            },
            ..model()
        };
        let noisy1 = simulate(&p, &noisy_model, &mut NullMonitor).unwrap();
        let noisy2 = simulate(&p, &noisy_model, &mut NullMonitor).unwrap();
        assert!(noisy1.elapsed > quiet.elapsed);
        assert_eq!(noisy1.elapsed, noisy2.elapsed); // same seed
        let other_seed = MachineModel {
            noise: NoiseModel {
                amplitude: 0.2,
                seed: 4,
            },
            ..model()
        };
        let noisy3 = simulate(&p, &other_seed, &mut NullMonitor).unwrap();
        assert_ne!(noisy1.elapsed, noisy3.elapsed);
    }

    #[test]
    fn report_counts_operations() {
        let mut p = Program::new("t", 2);
        p.push(
            0,
            Op::Send {
                to: 1,
                tag: 0,
                bytes: 64,
            },
        );
        p.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                bytes: 64,
            },
        );
        p.push_all(Op::Collective {
            op: CollectiveOp::AllReduce,
            bytes: 8,
            root: -1,
        });
        wrap_main(&mut p);
        let r = simulate(&p, &model(), &mut NullMonitor).unwrap();
        assert_eq!(r.messages, 1);
        assert_eq!(r.collectives, 1);
        assert_eq!(r.rank_times.len(), 2);
        assert!(r.elapsed > 0.0);
    }
}
