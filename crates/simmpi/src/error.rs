//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Errors detected while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No rank can make progress and the blocked operations do not form
    /// a resolvable collective — the program deadlocks.
    Deadlock {
        /// Human-readable description of each blocked rank.
        detail: String,
    },
    /// The program is structurally invalid (bad rank references,
    /// mismatched region enter/exit, wrong script count, ...).
    InvalidProgram(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Deadlock { detail } => write!(f, "simulated program deadlocks: {detail}"),
            Self::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::Deadlock {
            detail: "rank 0 waits on rank 1".into(),
        };
        assert!(e.to_string().contains("deadlock"));
        assert!(SimError::InvalidProgram("x".into())
            .to_string()
            .contains('x'));
    }
}
