//! The measurement interface: everything a tool can observe.
//!
//! Measurement tools (the EPILOG tracer, the CONE profiler) attach to a
//! simulation run as [`Monitor`]s. The simulator reports region
//! enter/exit, computation, point-to-point operations with their true
//! start/end times, and collective instances. Multiple tools can run
//! simultaneously via [`Fanout`] — or deliberately *not* simultaneously,
//! which is the whole point of the paper's merge operator.

use epilog::CollectiveOp;

use crate::program::Program;

/// Synthetic workload characteristics of a compute phase, used by
/// profilers to generate hardware-counter values.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ComputeWork {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Level-1 data-cache accesses performed.
    pub l1_accesses: u64,
    /// Fraction of accesses that miss in L1 (`0.0..=1.0`).
    pub l1_miss_rate: f64,
}

impl ComputeWork {
    /// Work of a dense FLOP-heavy kernel: many flops, cache-friendly.
    pub fn flop_heavy(flops: u64) -> Self {
        Self {
            flops,
            l1_accesses: flops / 2,
            l1_miss_rate: 0.01,
        }
    }

    /// Work of a memory-bound kernel: streaming accesses, high miss
    /// rate.
    pub fn memory_bound(l1_accesses: u64) -> Self {
        Self {
            flops: l1_accesses / 4,
            l1_accesses,
            l1_miss_rate: 0.15,
        }
    }
}

/// Observer of a simulation run. All times are in simulated seconds.
///
/// Default implementations are no-ops so tools only override what they
/// record.
#[allow(unused_variables)]
pub trait Monitor {
    /// Called once before the run starts.
    fn on_start(&mut self, program: &Program) {}
    /// A rank entered a user region.
    fn on_enter(&mut self, rank: usize, region: usize, time: f64) {}
    /// A rank left a user region.
    fn on_exit(&mut self, rank: usize, region: usize, time: f64) {}
    /// A rank computed from `start` to `end`.
    fn on_compute(&mut self, rank: usize, start: f64, end: f64, work: &ComputeWork) {}
    /// A rank executed a send operation (CPU-side occupancy
    /// `start..end`).
    fn on_send(&mut self, rank: usize, start: f64, end: f64, dest: usize, tag: i32, bytes: u64) {}
    /// A rank executed a receive; `start` is when the receive was
    /// posted (waiting begins), `end` when it completed, `send_time`
    /// when the matching send was posted at the sender.
    // A trait callback mirroring the EPILOG record layout; splitting
    // the record into a struct would complicate every implementor.
    #[allow(clippy::too_many_arguments)]
    fn on_recv(
        &mut self,
        rank: usize,
        start: f64,
        end: f64,
        source: usize,
        tag: i32,
        bytes: u64,
        send_time: f64,
    ) {
    }
    /// A rank executed a fork/join parallel region: all threads start
    /// at `start`; `thread_ends[i]` is thread `i`'s finish time (thread
    /// 0 is the master, which continues at `max(thread_ends)`). `work`
    /// is the total workload across threads.
    fn on_parallel(&mut self, rank: usize, start: f64, thread_ends: &[f64], work: &ComputeWork) {}
    /// A rank completed a collective instance; `start` is its arrival,
    /// `end` its exit.
    fn on_collective(
        &mut self,
        rank: usize,
        op: CollectiveOp,
        start: f64,
        end: f64,
        bytes: u64,
        root: i32,
    ) {
    }
    /// A rank finished its script.
    fn on_finish(&mut self, rank: usize, time: f64) {}
}

/// The monitor that records nothing (uninstrumented runs — the paper's
/// §5.1 measures its headline speedup "without any trace
/// instrumentation").
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// Broadcasts every observation to several monitors.
#[derive(Default)]
pub struct Fanout<'a> {
    monitors: Vec<&'a mut dyn Monitor>,
}

impl<'a> Fanout<'a> {
    /// Creates an empty fanout.
    pub fn new() -> Self {
        Self {
            monitors: Vec::new(),
        }
    }

    /// Attaches a monitor.
    pub fn attach(mut self, m: &'a mut dyn Monitor) -> Self {
        self.monitors.push(m);
        self
    }
}

impl Monitor for Fanout<'_> {
    fn on_start(&mut self, program: &Program) {
        for m in &mut self.monitors {
            m.on_start(program);
        }
    }
    fn on_enter(&mut self, rank: usize, region: usize, time: f64) {
        for m in &mut self.monitors {
            m.on_enter(rank, region, time);
        }
    }
    fn on_exit(&mut self, rank: usize, region: usize, time: f64) {
        for m in &mut self.monitors {
            m.on_exit(rank, region, time);
        }
    }
    fn on_compute(&mut self, rank: usize, start: f64, end: f64, work: &ComputeWork) {
        for m in &mut self.monitors {
            m.on_compute(rank, start, end, work);
        }
    }
    fn on_send(&mut self, rank: usize, start: f64, end: f64, dest: usize, tag: i32, bytes: u64) {
        for m in &mut self.monitors {
            m.on_send(rank, start, end, dest, tag, bytes);
        }
    }
    fn on_recv(
        &mut self,
        rank: usize,
        start: f64,
        end: f64,
        source: usize,
        tag: i32,
        bytes: u64,
        send_time: f64,
    ) {
        for m in &mut self.monitors {
            m.on_recv(rank, start, end, source, tag, bytes, send_time);
        }
    }
    fn on_parallel(&mut self, rank: usize, start: f64, thread_ends: &[f64], work: &ComputeWork) {
        for m in &mut self.monitors {
            m.on_parallel(rank, start, thread_ends, work);
        }
    }
    fn on_collective(
        &mut self,
        rank: usize,
        op: CollectiveOp,
        start: f64,
        end: f64,
        bytes: u64,
        root: i32,
    ) {
        for m in &mut self.monitors {
            m.on_collective(rank, op, start, end, bytes, root);
        }
    }
    fn on_finish(&mut self, rank: usize, time: f64) {
        for m in &mut self.monitors {
            m.on_finish(rank, time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        enters: usize,
        finishes: usize,
    }

    impl Monitor for Counter {
        fn on_enter(&mut self, _rank: usize, _region: usize, _time: f64) {
            self.enters += 1;
        }
        fn on_finish(&mut self, _rank: usize, _time: f64) {
            self.finishes += 1;
        }
    }

    #[test]
    fn fanout_broadcasts() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut f = Fanout::new().attach(&mut a).attach(&mut b);
            f.on_enter(0, 0, 0.0);
            f.on_enter(1, 0, 0.0);
            f.on_finish(0, 1.0);
        }
        assert_eq!(a.enters, 2);
        assert_eq!(b.enters, 2);
        assert_eq!(a.finishes, 1);
    }

    #[test]
    fn compute_work_presets() {
        let f = ComputeWork::flop_heavy(1_000_000);
        assert_eq!(f.flops, 1_000_000);
        assert!(f.l1_miss_rate < 0.05);
        let m = ComputeWork::memory_bound(1_000_000);
        assert!(m.l1_miss_rate > f.l1_miss_rate);
        assert!(m.l1_accesses > m.flops);
    }

    #[test]
    fn null_monitor_is_a_monitor() {
        let mut n = NullMonitor;
        n.on_enter(0, 0, 0.0);
        n.on_finish(0, 0.0);
    }
}
