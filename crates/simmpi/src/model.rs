//! The machine performance model: network costs, collective costs,
//! noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use epilog::CollectiveOp;

/// Point-to-point network parameters (a LogGP-flavored model).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
    /// CPU overhead of posting a send.
    pub send_overhead: f64,
    /// CPU overhead of completing a receive (after data arrival).
    pub recv_overhead: f64,
}

impl Default for NetworkModel {
    /// Defaults resembling the paper's Myrinet-era cluster: ~10 µs
    /// latency, ~100 MB/s bandwidth.
    fn default() -> Self {
        Self {
            latency: 10e-6,
            bandwidth: 100e6,
            send_overhead: 2e-6,
            recv_overhead: 2e-6,
        }
    }
}

impl NetworkModel {
    /// Time from posting a send until the data is available at the
    /// receiver.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Pseudo-random perturbation of compute times — the "unrelated system
/// activity" that makes repeated experiments differ.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Relative amplitude: each compute op is stretched by a factor
    /// drawn uniformly from `[1, 1 + amplitude]` (OS noise only ever
    /// steals time).
    pub amplitude: f64,
    /// RNG seed; two runs with the same seed are identical.
    pub seed: u64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            amplitude: 0.0,
            seed: 0,
        }
    }
}

impl NoiseModel {
    /// A noise source for one run.
    #[cfg(test)]
    pub(crate) fn source(&self) -> NoiseSource {
        NoiseSource {
            rng: StdRng::seed_from_u64(self.seed),
            amplitude: self.amplitude,
        }
    }

    /// An independent noise source per rank, so that adding ops to one
    /// rank's script does not perturb another rank's noise stream.
    pub(crate) fn source_for(&self, rank: usize) -> NoiseSource {
        NoiseSource {
            rng: StdRng::seed_from_u64(
                self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            amplitude: self.amplitude,
        }
    }
}

/// Stateful noise stream (one per simulation run).
pub(crate) struct NoiseSource {
    rng: StdRng,
    amplitude: f64,
}

impl NoiseSource {
    /// Multiplicative stretch factor for one compute op.
    pub(crate) fn stretch(&mut self) -> f64 {
        if self.amplitude <= 0.0 {
            1.0
        } else {
            1.0 + self.rng.random::<f64>() * self.amplitude
        }
    }

    /// Small nonnegative exit skew for collective completion, in
    /// multiples of `unit` seconds.
    pub(crate) fn exit_skew(&mut self, unit: f64) -> f64 {
        self.rng.random::<f64>() * unit
    }
}

/// Complete machine model.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct MachineModel {
    /// Point-to-point network.
    pub network: NetworkModel,
    /// Compute-time noise.
    pub noise: NoiseModel,
}

impl MachineModel {
    /// Cost of the collective operation itself (excluding the wait for
    /// late participants), for `ranks` participants contributing
    /// `bytes` each. Logarithmic algorithms for the rooted/reduction
    /// collectives, linear exchange volume for all-to-all.
    pub fn collective_cost(&self, op: CollectiveOp, bytes: u64, ranks: usize) -> f64 {
        let p = ranks.max(1) as f64;
        let log_p = p.log2().max(1.0);
        let n = self.network;
        match op {
            // Gather + release phase plus per-stage software overhead —
            // dissemination barriers of the paper's era cost on the
            // order of 100 µs at 16 ranks.
            CollectiveOp::Barrier => 3.0 * (n.latency + n.send_overhead) * log_p,
            CollectiveOp::AllToAll => n.latency * log_p + (bytes as f64 * (p - 1.0)) / n.bandwidth,
            CollectiveOp::AllReduce => (n.latency + bytes as f64 / n.bandwidth) * log_p,
            CollectiveOp::Broadcast | CollectiveOp::Reduce => {
                (n.latency + bytes as f64 / n.bandwidth) * log_p
            }
        }
    }

    /// Scale of the per-rank exit skew after a collective (produces
    /// nonzero *Barrier Completion* / collective completion times).
    pub fn completion_skew_unit(&self) -> f64 {
        self.network.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_grows_with_bytes() {
        let n = NetworkModel::default();
        assert!(n.transfer_time(1_000_000) > n.transfer_time(1_000));
        assert!(n.transfer_time(0) >= n.latency);
    }

    #[test]
    fn collective_costs_grow_with_ranks() {
        let m = MachineModel::default();
        for op in [
            CollectiveOp::Barrier,
            CollectiveOp::AllToAll,
            CollectiveOp::AllReduce,
        ] {
            let small = m.collective_cost(op, 4096, 4);
            let large = m.collective_cost(op, 4096, 64);
            assert!(large > small, "{op:?} must scale with ranks");
        }
    }

    #[test]
    fn alltoall_costs_more_than_allreduce_for_large_payloads() {
        let m = MachineModel::default();
        let a2a = m.collective_cost(CollectiveOp::AllToAll, 1 << 20, 16);
        let ar = m.collective_cost(CollectiveOp::AllReduce, 1 << 20, 16);
        assert!(a2a > ar);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let n = NoiseModel {
            amplitude: 0.1,
            seed: 42,
        };
        let a: Vec<f64> = {
            let mut s = n.source();
            (0..10).map(|_| s.stretch()).collect()
        };
        let b: Vec<f64> = {
            let mut s = n.source();
            (0..10).map(|_| s.stretch()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&f| (1.0..=1.1).contains(&f)));
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = NoiseModel {
            amplitude: 0.1,
            seed: 1,
        }
        .source();
        let mut s2 = NoiseModel {
            amplitude: 0.1,
            seed: 2,
        }
        .source();
        let a: Vec<f64> = (0..5).map(|_| s1.stretch()).collect();
        let b: Vec<f64> = (0..5).map(|_| s2.stretch()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_amplitude_is_exact() {
        let mut s = NoiseModel::default().source();
        assert_eq!(s.stretch(), 1.0);
    }
}
