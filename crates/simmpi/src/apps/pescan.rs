//! PESCAN-like eigensolver skeleton.
//!
//! PESCAN computes interior eigenvalues of a large Hermitian matrix
//! with a preconditioned conjugate-gradient solver applied to the
//! folded spectrum; its core alternates FFT-based matrix-vector
//! products (all-to-all), local potential application, dot products
//! (allreduce), and asynchronous point-to-point halo exchange. On the
//! original IBM platform, barriers were placed around the asynchronous
//! phase to avoid communication-buffer overflow; on a Linux cluster
//! with modest process counts they are unnecessary — removing them is
//! the optimization the paper's §5.1 analyzes with the difference
//! operator.
//!
//! The skeleton reproduces the performance-relevant structure the paper
//! describes: "some of the factors introducing temporal displacements
//! are antipodal and cancel each other out if they are not materialized
//! at a barrier or another synchronizing event". Each iteration has two
//! imbalanced local phases whose displacements are (mostly) antipodal:
//!
//! * with `barriers = true` a barrier follows each phase, so *both*
//!   displacements materialize fully as **Wait at Barrier**;
//! * with `barriers = false` the second phase largely cancels the
//!   first; only the residual displacement materializes downstream —
//!   as **Late Sender** waiting in the halo receives and as
//!   **Wait at N x N** at the dot-product allreduce. Removing the
//!   barriers therefore wins overall, with exactly the waiting-time
//!   migration Figure 2 shows.

use epilog::CollectiveOp;

use crate::monitor::ComputeWork;
use crate::program::{Op, Program, RegionInfo};

/// Configuration of the PESCAN skeleton.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PescanConfig {
    /// Number of MPI ranks (the paper ran 16).
    pub ranks: usize,
    /// Solver iterations.
    pub iterations: usize,
    /// Whether the protective barriers around the halo exchange are
    /// present (the unoptimized version) or removed (the optimized one).
    pub barriers: bool,
    /// Nominal seconds of one compute phase per iteration.
    pub base_compute: f64,
    /// Relative amplitude of the rotating load imbalance in the two
    /// local phases.
    pub imbalance: f64,
    /// How much of the first phase's displacement the second phase
    /// cancels when no barrier materializes it (`0.0..=1.0`).
    pub cancellation: f64,
    /// Bytes per rank exchanged in the FFT all-to-all.
    pub fft_bytes: u64,
    /// Bytes per halo message.
    pub halo_bytes: u64,
    /// Bytes of the dot-product allreduce.
    pub reduce_bytes: u64,
}

impl Default for PescanConfig {
    /// Sixteen ranks, calibrated so that the unoptimized version spends
    /// roughly 13 % of its execution time in Wait-at-Barrier, matching
    /// Figure 1.
    fn default() -> Self {
        Self {
            ranks: 16,
            iterations: 30,
            barriers: true,
            base_compute: 2.0e-3,
            imbalance: 0.35,
            cancellation: 0.95,
            fft_bytes: 8 * 1024,
            halo_bytes: 32 * 1024,
            reduce_bytes: 64,
        }
    }
}

/// Rotating imbalance factor in `[-1, 1]`: which rank is slow changes
/// every iteration, so displacements are antipodal across iterations
/// and can cancel when no barrier materializes them.
fn imbalance_phase(rank: usize, iter: usize, ranks: usize) -> f64 {
    let pos = (rank + iter) % ranks;
    (pos as f64 / (ranks - 1).max(1) as f64) * 2.0 - 1.0
}

/// Builds the PESCAN skeleton program.
pub fn pescan(cfg: &PescanConfig) -> Program {
    assert!(cfg.ranks >= 2, "pescan needs at least 2 ranks");
    let mut p = Program::new(
        if cfg.barriers {
            "pescan (original)"
        } else {
            "pescan (optimized)"
        },
        cfg.ranks,
    );
    let main = p.add_region(RegionInfo::new("main", "pescan.f90", 1));
    let setup = p.add_region(RegionInfo::new("setup", "pescan.f90", 40));
    let solver = p.add_region(RegionInfo::new("solver", "pescan.f90", 120));
    let fft = p.add_region(RegionInfo::new("fft_forward", "fft.f90", 15));
    let potential = p.add_region(RegionInfo::new("apply_potential", "hamiltonian.f90", 60));
    let precond = p.add_region(RegionInfo::new("precondition", "cg.f90", 140));
    let dot = p.add_region(RegionInfo::new("dot_product", "cg.f90", 200));
    let halo = p.add_region(RegionInfo::new("halo_exchange", "comm.f90", 30));

    let ranks = cfg.ranks;
    for rank in 0..ranks {
        let right = (rank + 1) % ranks;
        let left = (rank + ranks - 1) % ranks;
        let script = &mut p.scripts[rank];
        script.push(Op::Enter(main));
        script.push(Op::Enter(setup));
        script.push(Op::Compute {
            seconds: cfg.base_compute * 4.0,
            work: ComputeWork::memory_bound(2_000_000),
        });
        script.push(Op::Exit(setup));
        script.push(Op::Enter(solver));
        for iter in 0..cfg.iterations {
            // (1) FFT-based matrix-vector product: balanced compute, then
            // the all-to-all transpose.
            script.push(Op::Enter(fft));
            script.push(Op::Compute {
                seconds: cfg.base_compute,
                work: ComputeWork::flop_heavy(5_000_000),
            });
            script.push(Op::Collective {
                op: CollectiveOp::AllToAll,
                bytes: cfg.fft_bytes,
                root: -1,
            });
            script.push(Op::Exit(fft));
            // (2) Local potential application: the first imbalanced
            // phase (displacement +x per rank).
            let x = imbalance_phase(rank, iter, ranks);
            script.push(Op::Enter(potential));
            script.push(Op::Compute {
                seconds: cfg.base_compute * (1.0 + cfg.imbalance * x),
                work: ComputeWork::flop_heavy(3_000_000),
            });
            script.push(Op::Exit(potential));
            // (3) First protective barrier (unoptimized version only).
            // It materializes the +x displacement as Wait-at-Barrier;
            // without it, the displacement stays in flight.
            if cfg.barriers {
                script.push(Op::Collective {
                    op: CollectiveOp::Barrier,
                    bytes: 0,
                    root: -1,
                });
            }
            // (4) Preconditioner: the second imbalanced phase, largely
            // antipodal (-cancellation * x). With barriers its
            // displacement materializes at the second barrier; without
            // them it cancels most of phase (2)'s displacement in
            // flight — the paper's antipodal-displacement effect.
            script.push(Op::Enter(precond));
            script.push(Op::Compute {
                seconds: cfg.base_compute * (1.0 - cfg.imbalance * cfg.cancellation * x),
                work: ComputeWork::flop_heavy(3_000_000),
            });
            script.push(Op::Exit(precond));
            // (5) Second protective barrier, throttling the ranks before
            // they post the asynchronous sends (the buffer-overflow
            // protection the barriers were introduced for).
            if cfg.barriers {
                script.push(Op::Collective {
                    op: CollectiveOp::Barrier,
                    bytes: 0,
                    root: -1,
                });
            }
            // (6) Asynchronous halo exchange with both ring neighbors.
            // Without the barriers, the residual displacement surfaces
            // here as Late-Sender waiting.
            script.push(Op::Enter(halo));
            script.push(Op::Send {
                to: right,
                tag: 1,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Send {
                to: left,
                tag: 2,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Recv {
                from: left,
                tag: 1,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Recv {
                from: right,
                tag: 2,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Exit(halo));
            // (7) Dot products: small balanced compute + allreduce. The
            // residual displacement materializes here as Wait-at-NxN.
            script.push(Op::Enter(dot));
            script.push(Op::Compute {
                seconds: cfg.base_compute * 0.25,
                work: ComputeWork::flop_heavy(1_000_000),
            });
            script.push(Op::Collective {
                op: CollectiveOp::AllReduce,
                bytes: cfg.reduce_bytes,
                root: -1,
            });
            script.push(Op::Exit(dot));
        }
        script.push(Op::Exit(solver));
        script.push(Op::Exit(main));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::monitor::NullMonitor;
    use crate::sim::simulate;

    #[test]
    fn program_validates() {
        let p = pescan(&PescanConfig::default());
        p.validate().unwrap();
        assert_eq!(p.ranks(), 16);
    }

    #[test]
    fn imbalance_phase_rotates_and_spans() {
        let ranks = 8;
        for iter in 0..4 {
            let phases: Vec<f64> = (0..ranks)
                .map(|r| imbalance_phase(r, iter, ranks))
                .collect();
            assert!(phases.iter().cloned().fold(f64::INFINITY, f64::min) <= -0.99);
            assert!(phases.iter().cloned().fold(f64::NEG_INFINITY, f64::max) >= 0.99);
        }
        // Rotation: the slow rank differs between iterations.
        assert_ne!(imbalance_phase(0, 0, ranks), imbalance_phase(0, 1, ranks));
    }

    #[test]
    fn removing_barriers_speeds_up_the_run() {
        let original = pescan(&PescanConfig::default());
        let optimized = pescan(&PescanConfig {
            barriers: false,
            ..PescanConfig::default()
        });
        let m = MachineModel::default();
        let before = simulate(&original, &m, &mut NullMonitor).unwrap();
        let after = simulate(&optimized, &m, &mut NullMonitor).unwrap();
        assert!(
            after.elapsed < before.elapsed,
            "optimized {} !< original {}",
            after.elapsed,
            before.elapsed
        );
        // The gain is substantial (the paper measured ~16 %).
        let gain = (before.elapsed - after.elapsed) / before.elapsed;
        assert!(
            (0.05..0.35).contains(&gain),
            "gain {:.1}% out of plausible range",
            gain * 100.0
        );
    }

    #[test]
    fn barrier_count_matches_configuration() {
        let cfg = PescanConfig::default();
        let with = simulate(&pescan(&cfg), &MachineModel::default(), &mut NullMonitor).unwrap();
        let without = simulate(
            &pescan(&PescanConfig {
                barriers: false,
                ..cfg
            }),
            &MachineModel::default(),
            &mut NullMonitor,
        )
        .unwrap();
        // per iteration: alltoall + allreduce (+ 2 barriers).
        assert_eq!(with.collectives, (cfg.iterations * 4) as u64);
        assert_eq!(without.collectives, (cfg.iterations * 2) as u64);
    }

    #[test]
    fn deterministic_without_noise() {
        let cfg = PescanConfig::default();
        let m = MachineModel::default();
        let a = simulate(&pescan(&cfg), &m, &mut NullMonitor).unwrap();
        let b = simulate(&pescan(&cfg), &m, &mut NullMonitor).unwrap();
        assert_eq!(a.elapsed, b.elapsed);
    }
}
