//! Application kernels reproducing the paper's workloads.
//!
//! * [`pescan()`] — the §5.1 subject: a PESCAN-like iterative eigensolver
//!   skeleton (FFT all-to-all, imbalanced potential application,
//!   dot-product allreduce, halo exchange) with *removable barriers*
//!   around the asynchronous point-to-point phase;
//! * [`sweep3d()`] — the §5.2 subject: a SWEEP3D-like pipelined wavefront
//!   sweep whose blocking receives wait on upstream neighbors (Late
//!   Sender) while performing memory-bound computation (cache misses);
//! * [`stencil()`] — a generic halo-exchange stencil used by the
//!   quickstart example;
//! * [`hybrid()`] — an MPI + OpenMP kernel whose sequential master
//!   sections leave worker threads idle (EXPERT's *Idle Threads*).

pub mod hybrid;
pub mod pescan;
pub mod stencil;
pub mod sweep3d;

pub use hybrid::{hybrid, HybridConfig};
pub use pescan::{pescan, PescanConfig};
pub use stencil::{stencil, StencilConfig};
pub use sweep3d::{sweep3d, Sweep3dConfig};
