//! A generic 1-D halo-exchange stencil kernel.
//!
//! The simplest realistic message-passing workload: every iteration,
//! each rank exchanges halos with its ring neighbors, computes, and
//! periodically reduces a convergence norm. Used by the quickstart
//! example and as a neutral workload in benches.

use epilog::CollectiveOp;

use crate::monitor::ComputeWork;
use crate::program::{Op, Program, RegionInfo};

/// Configuration of the stencil kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StencilConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Iterations.
    pub iterations: usize,
    /// Nominal compute seconds per iteration.
    pub base_compute: f64,
    /// Relative static imbalance across ranks.
    pub imbalance: f64,
    /// Halo bytes per neighbor message.
    pub halo_bytes: u64,
    /// Reduce the convergence norm every `reduce_every` iterations.
    pub reduce_every: usize,
}

impl Default for StencilConfig {
    fn default() -> Self {
        Self {
            ranks: 8,
            iterations: 25,
            base_compute: 1e-3,
            imbalance: 0.15,
            halo_bytes: 16 * 1024,
            reduce_every: 5,
        }
    }
}

/// Builds the stencil program.
pub fn stencil(cfg: &StencilConfig) -> Program {
    assert!(cfg.ranks >= 2, "stencil needs at least 2 ranks");
    let ranks = cfg.ranks;
    let mut p = Program::new("stencil", ranks);
    let main = p.add_region(RegionInfo::new("main", "stencil.c", 1));
    let init = p.add_region(RegionInfo::new("read_input", "stencil.c", 20));
    let exchange = p.add_region(RegionInfo::new("exchange_halo", "stencil.c", 40));
    let relax = p.add_region(RegionInfo::new("relax", "stencil.c", 80));
    let norm = p.add_region(RegionInfo::new("norm", "stencil.c", 120));
    let report = p.add_region(RegionInfo::new("report", "stencil.c", 160));

    for rank in 0..ranks {
        let right = (rank + 1) % ranks;
        let left = (rank + ranks - 1) % ranks;
        let factor = 1.0 + cfg.imbalance * (rank as f64 / (ranks - 1).max(1) as f64 - 0.5);
        let script = &mut p.scripts[rank];
        script.push(Op::Enter(main));
        // Rank 0 reads the input deck and broadcasts the parameters; the
        // other ranks reach the broadcast immediately and wait for the
        // late root (EXPERT's Late Broadcast pattern).
        script.push(Op::Enter(init));
        if rank == 0 {
            script.push(Op::Compute {
                seconds: cfg.base_compute * 4.0,
                work: ComputeWork::memory_bound(500_000),
            });
        }
        script.push(Op::Collective {
            op: CollectiveOp::Broadcast,
            bytes: 4096,
            root: 0,
        });
        script.push(Op::Exit(init));
        for iter in 0..cfg.iterations {
            script.push(Op::Enter(exchange));
            script.push(Op::Send {
                to: right,
                tag: 1,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Send {
                to: left,
                tag: 2,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Recv {
                from: left,
                tag: 1,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Recv {
                from: right,
                tag: 2,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Exit(exchange));
            script.push(Op::Enter(relax));
            script.push(Op::Compute {
                seconds: cfg.base_compute * factor,
                work: ComputeWork::memory_bound(1_000_000),
            });
            script.push(Op::Exit(relax));
            if cfg.reduce_every > 0 && (iter + 1) % cfg.reduce_every == 0 {
                script.push(Op::Enter(norm));
                script.push(Op::Collective {
                    op: CollectiveOp::AllReduce,
                    bytes: 8,
                    root: -1,
                });
                script.push(Op::Exit(norm));
            }
        }
        // Final statistics reduced to rank 0, which (being the fastest
        // under the static imbalance) tends to arrive first and wait —
        // EXPERT's Early Reduce pattern.
        script.push(Op::Enter(report));
        script.push(Op::Collective {
            op: CollectiveOp::Reduce,
            bytes: 256,
            root: 0,
        });
        script.push(Op::Exit(report));
        script.push(Op::Exit(main));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::monitor::NullMonitor;
    use crate::sim::simulate;

    #[test]
    fn runs_and_counts() {
        let cfg = StencilConfig::default();
        let p = stencil(&cfg);
        p.validate().unwrap();
        let r = simulate(&p, &MachineModel::default(), &mut NullMonitor).unwrap();
        // 2 messages per rank per iteration.
        assert_eq!(r.messages, (2 * cfg.ranks * cfg.iterations) as u64);
        // Norm allreduces plus the parameter broadcast and final reduce.
        assert_eq!(
            r.collectives,
            (cfg.iterations / cfg.reduce_every + 2) as u64
        );
    }

    #[test]
    fn no_reduction_when_disabled() {
        let p = stencil(&StencilConfig {
            reduce_every: 0,
            ..StencilConfig::default()
        });
        let r = simulate(&p, &MachineModel::default(), &mut NullMonitor).unwrap();
        // Only the broadcast and the final reduce remain.
        assert_eq!(r.collectives, 2);
    }

    #[test]
    fn imbalance_spreads_rank_times_without_sync() {
        let p = stencil(&StencilConfig {
            imbalance: 0.5,
            reduce_every: 0,
            ..StencilConfig::default()
        });
        let r = simulate(&p, &MachineModel::default(), &mut NullMonitor).unwrap();
        let min = r.rank_times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = r.rank_times.iter().cloned().fold(0.0, f64::max);
        assert!(max > min);
    }
}
