//! A hybrid MPI + OpenMP kernel.
//!
//! Each MPI rank runs several OpenMP-style threads: the relaxation
//! kernel executes as a fork/join parallel region (with a per-thread
//! imbalance), while halo exchange and the convergence reduction stay
//! in the sequential master part — so worker threads idle there,
//! producing EXPERT's *Idle Threads* pattern. This is the "and/or
//! multithreaded" half of the paper's application domain.

use epilog::CollectiveOp;

use crate::monitor::ComputeWork;
use crate::program::{Op, Program, RegionInfo};

/// Configuration of the hybrid kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridConfig {
    /// MPI ranks.
    pub ranks: usize,
    /// OpenMP threads per rank (≥ 1).
    pub threads: usize,
    /// Iterations.
    pub iterations: usize,
    /// Nominal per-thread compute seconds per iteration.
    pub base_compute: f64,
    /// Relative imbalance across the threads of one rank.
    pub thread_imbalance: f64,
    /// Halo bytes per neighbor message.
    pub halo_bytes: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            ranks: 4,
            threads: 4,
            iterations: 12,
            base_compute: 1.5e-3,
            thread_imbalance: 0.25,
            halo_bytes: 16 * 1024,
        }
    }
}

/// Builds the hybrid program.
pub fn hybrid(cfg: &HybridConfig) -> Program {
    assert!(cfg.ranks >= 2, "hybrid kernel needs at least 2 ranks");
    assert!(cfg.threads >= 1);
    let mut p = Program::hybrid("hybrid stencil", cfg.ranks, cfg.threads);
    let main = p.add_region(RegionInfo::new("main", "hybrid.c", 1));
    let relax = p.add_region(RegionInfo::new("relax", "hybrid.c", 50));
    let exchange = p.add_region(RegionInfo::new("exchange_halo", "hybrid.c", 90));
    let norm = p.add_region(RegionInfo::new("norm", "hybrid.c", 130));

    for rank in 0..cfg.ranks {
        let right = (rank + 1) % cfg.ranks;
        let left = (rank + cfg.ranks - 1) % cfg.ranks;
        let script = &mut p.scripts[rank];
        script.push(Op::Enter(main));
        for iter in 0..cfg.iterations {
            // Fork/join parallel relaxation with a rotating per-thread
            // imbalance.
            let seconds_per_thread: Vec<f64> = (0..cfg.threads)
                .map(|t| {
                    let pos = (t + iter) % cfg.threads;
                    let x = if cfg.threads > 1 {
                        pos as f64 / (cfg.threads - 1) as f64 * 2.0 - 1.0
                    } else {
                        0.0
                    };
                    cfg.base_compute * (1.0 + cfg.thread_imbalance * x)
                })
                .collect();
            script.push(Op::Enter(relax));
            script.push(Op::ParallelCompute {
                seconds_per_thread,
                work: ComputeWork::memory_bound(1_000_000 * cfg.threads as u64),
            });
            script.push(Op::Exit(relax));
            // Sequential master part: halo exchange (workers idle).
            script.push(Op::Enter(exchange));
            script.push(Op::Send {
                to: right,
                tag: 1,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Send {
                to: left,
                tag: 2,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Recv {
                from: left,
                tag: 1,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Recv {
                from: right,
                tag: 2,
                bytes: cfg.halo_bytes,
            });
            script.push(Op::Exit(exchange));
            if (iter + 1) % 4 == 0 {
                script.push(Op::Enter(norm));
                script.push(Op::Collective {
                    op: CollectiveOp::AllReduce,
                    bytes: 8,
                    root: -1,
                });
                script.push(Op::Exit(norm));
            }
        }
        script.push(Op::Exit(main));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::monitor::{Monitor, NullMonitor};
    use crate::sim::simulate;

    #[test]
    fn program_validates_and_runs() {
        let p = hybrid(&HybridConfig::default());
        p.validate().unwrap();
        assert_eq!(p.threads_per_rank, 4);
        let r = simulate(&p, &MachineModel::default(), &mut NullMonitor).unwrap();
        assert!(r.elapsed > 0.0);
    }

    #[test]
    fn wrong_thread_vector_rejected() {
        let mut p = Program::hybrid("t", 2, 4);
        p.push(
            0,
            Op::ParallelCompute {
                seconds_per_thread: vec![1.0; 3], // wrong length
                work: ComputeWork::default(),
            },
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn join_waits_for_the_slowest_thread() {
        struct Watch {
            start: f64,
            ends: Vec<f64>,
        }
        impl Monitor for Watch {
            fn on_parallel(
                &mut self,
                _rank: usize,
                start: f64,
                thread_ends: &[f64],
                _work: &ComputeWork,
            ) {
                self.start = start;
                self.ends = thread_ends.to_vec();
            }
        }
        let mut p = Program::hybrid("t", 2, 3);
        let main = p.add_region(RegionInfo::new("main", "m.c", 1));
        p.push_all(Op::Enter(main));
        p.push_all(Op::ParallelCompute {
            seconds_per_thread: vec![0.1, 0.3, 0.2],
            work: ComputeWork::default(),
        });
        p.push_all(Op::Exit(main));
        let mut w = Watch {
            start: -1.0,
            ends: vec![],
        };
        let r = simulate(&p, &MachineModel::default(), &mut w).unwrap();
        assert_eq!(w.ends.len(), 3);
        assert!((w.ends[1] - 0.3).abs() < 1e-12);
        assert!((r.elapsed - 0.3).abs() < 1e-12); // join at the slowest
    }

    #[test]
    fn single_thread_degenerates_to_pure_mpi() {
        let p = hybrid(&HybridConfig {
            threads: 1,
            thread_imbalance: 0.0,
            ..HybridConfig::default()
        });
        p.validate().unwrap();
        simulate(&p, &MachineModel::default(), &mut NullMonitor).unwrap();
    }
}
