//! SWEEP3D-like wavefront sweep.
//!
//! SWEEP3D solves a neutron-transport problem with a pipelined
//! wavefront: the process grid is swept from each corner; every process
//! waits for its upstream neighbors' boundary data, computes, and
//! forwards boundary data downstream. Two properties matter for the
//! paper's §5.2:
//!
//! * the blocking receives at the pipeline front wait on upstream
//!   neighbors → **Late Sender** waiting concentrated at `MPI_Recv`;
//! * the per-cell computation is memory-bound, and receives copy
//!   boundary arrays → above-average **L1 cache misses** in exactly
//!   those `MPI_Recv` call paths.
//!
//! The combination — "the cache-miss problem is insignificant because
//! that time was waiting anyway" — is what merging EXPERT and CONE
//! outputs reveals.

use crate::monitor::ComputeWork;
use crate::program::{Op, Program, RegionInfo};

/// Configuration of the sweep kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sweep3dConfig {
    /// Process-grid width.
    pub px: usize,
    /// Process-grid height.
    pub py: usize,
    /// Number of full sweeps (each covers all four corner octant
    /// pairs).
    pub sweeps: usize,
    /// Nominal seconds of per-stage computation.
    pub base_compute: f64,
    /// Relative spread of per-rank compute cost (static imbalance).
    pub imbalance: f64,
    /// Bytes per boundary message.
    pub bytes: u64,
}

impl Default for Sweep3dConfig {
    fn default() -> Self {
        Self {
            px: 4,
            py: 4,
            sweeps: 8,
            base_compute: 1.5e-3,
            imbalance: 0.2,
            bytes: 48 * 1024,
        }
    }
}

/// The process-grid coordinates of every rank, for recording a
/// topology with the trace: `coords()[rank] == [x, y]`.
pub fn grid_coordinates(cfg: &Sweep3dConfig) -> Vec<Vec<u32>> {
    (0..cfg.px * cfg.py)
        .map(|rank| vec![(rank % cfg.px) as u32, (rank / cfg.px) as u32])
        .collect()
}

/// The four sweep directions (sign of x-propagation, sign of
/// y-propagation).
const DIRECTIONS: [(i32, i32); 4] = [(1, 1), (-1, 1), (1, -1), (-1, -1)];

/// Builds the sweep program.
pub fn sweep3d(cfg: &Sweep3dConfig) -> Program {
    assert!(cfg.px >= 1 && cfg.py >= 1, "grid must be nonempty");
    assert!(cfg.px * cfg.py >= 2, "sweep needs at least 2 ranks");
    let ranks = cfg.px * cfg.py;
    let mut p = Program::new("sweep3d", ranks);
    let main = p.add_region(RegionInfo::new("main", "driver.f", 1));
    let sweep = p.add_region(RegionInfo::new("sweep", "sweep.f", 30));
    let octant = p.add_region(RegionInfo::new("octant", "sweep.f", 80));

    for rank in 0..ranks {
        let (i, j) = (rank % cfg.px, rank / cfg.px);
        let script = &mut p.scripts[rank];
        script.push(Op::Enter(main));
        for _ in 0..cfg.sweeps {
            script.push(Op::Enter(sweep));
            for (d, (dx, dy)) in DIRECTIONS.iter().enumerate() {
                let tag = d as i32;
                // Upstream neighbor coordinates for this direction.
                let up_x = i as i32 - dx;
                let up_y = j as i32 - dy;
                let down_x = i as i32 + dx;
                let down_y = j as i32 + dy;
                let at = |x: i32, y: i32| -> Option<usize> {
                    if x < 0 || y < 0 || x >= cfg.px as i32 || y >= cfg.py as i32 {
                        None
                    } else {
                        Some(y as usize * cfg.px + x as usize)
                    }
                };
                script.push(Op::Enter(octant));
                if let Some(up) = at(up_x, j as i32) {
                    script.push(Op::Recv {
                        from: up,
                        tag,
                        bytes: cfg.bytes,
                    });
                }
                if let Some(up) = at(i as i32, up_y) {
                    script.push(Op::Recv {
                        from: up,
                        tag: tag + 4,
                        bytes: cfg.bytes,
                    });
                }
                // Memory-bound per-stage computation with a static
                // per-rank imbalance.
                let factor = 1.0 + cfg.imbalance * (rank as f64 / (ranks - 1).max(1) as f64 - 0.5);
                script.push(Op::Compute {
                    seconds: cfg.base_compute * factor,
                    work: ComputeWork::memory_bound(4_000_000),
                });
                if let Some(down) = at(down_x, j as i32) {
                    script.push(Op::Send {
                        to: down,
                        tag,
                        bytes: cfg.bytes,
                    });
                }
                if let Some(down) = at(i as i32, down_y) {
                    script.push(Op::Send {
                        to: down,
                        tag: tag + 4,
                        bytes: cfg.bytes,
                    });
                }
                script.push(Op::Exit(octant));
            }
            script.push(Op::Exit(sweep));
        }
        script.push(Op::Exit(main));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;
    use crate::monitor::{Monitor, NullMonitor};
    use crate::sim::simulate;

    #[test]
    fn program_validates_and_runs() {
        let p = sweep3d(&Sweep3dConfig::default());
        p.validate().unwrap();
        let r = simulate(&p, &MachineModel::default(), &mut NullMonitor).unwrap();
        assert!(r.elapsed > 0.0);
        assert!(r.messages > 0);
    }

    #[test]
    fn wavefront_creates_late_sender_waiting() {
        #[derive(Default)]
        struct WaitSum {
            waiting: f64,
        }
        impl Monitor for WaitSum {
            fn on_recv(
                &mut self,
                _rank: usize,
                start: f64,
                end: f64,
                _source: usize,
                _tag: i32,
                _bytes: u64,
                send_time: f64,
            ) {
                // Waiting: the receive was posted before the send existed.
                if send_time > start {
                    self.waiting += (send_time - start).min(end - start);
                }
            }
        }
        let mut w = WaitSum::default();
        let p = sweep3d(&Sweep3dConfig::default());
        simulate(&p, &MachineModel::default(), &mut w).unwrap();
        assert!(
            w.waiting > 0.0,
            "pipeline fill must produce late-sender waiting"
        );
    }

    #[test]
    fn small_grids_work() {
        for (px, py) in [(2, 1), (1, 2), (2, 2), (3, 2)] {
            let p = sweep3d(&Sweep3dConfig {
                px,
                py,
                sweeps: 2,
                ..Sweep3dConfig::default()
            });
            p.validate().unwrap();
            simulate(&p, &MachineModel::default(), &mut NullMonitor).unwrap();
        }
    }

    #[test]
    fn more_sweeps_take_longer() {
        let m = MachineModel::default();
        let short = simulate(
            &sweep3d(&Sweep3dConfig {
                sweeps: 2,
                ..Sweep3dConfig::default()
            }),
            &m,
            &mut NullMonitor,
        )
        .unwrap();
        let long = simulate(
            &sweep3d(&Sweep3dConfig {
                sweeps: 8,
                ..Sweep3dConfig::default()
            }),
            &m,
            &mut NullMonitor,
        )
        .unwrap();
        assert!(long.elapsed > short.elapsed);
    }
}
