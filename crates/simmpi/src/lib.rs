//! # simmpi — a discrete-event simulator of message-passing programs
//!
//! The paper evaluates the CUBE algebra on real parallel applications
//! (PESCAN on a Pentium III/Myrinet cluster, SWEEP3D on IBM POWER4).
//! This crate is the substitute testbed: a deterministic discrete-event
//! simulator that executes per-rank operation scripts ([`Program`])
//! under a simple network/compute performance model ([`MachineModel`])
//! and reports everything a measurement tool would observe through the
//! [`Monitor`] trait.
//!
//! What the simulator reproduces faithfully — because the paper's case
//! studies depend on it:
//!
//! * **blocking receive semantics**: a receive completes no earlier than
//!   `send time + latency + bytes/bandwidth`; the gap is the *Late
//!   Sender* waiting time EXPERT detects;
//! * **collective synchronization**: a barrier/all-to-all/allreduce
//!   completes for everyone only after the last participant arrives —
//!   temporal displacement between ranks *materializes* as waiting time
//!   at the next synchronization point (the waiting-time migration
//!   effect of §5.1), with a small per-rank exit skew so that
//!   *Barrier Completion* time exists;
//! * **load imbalance and OS noise**: per-rank compute times carry a
//!   deterministic imbalance pattern plus seeded pseudo-random noise, so
//!   repeated experiments differ exactly the way the paper's ten-run
//!   series do.
//!
//! Attached monitors turn a run into artifacts: [`tracer::EpilogTracer`]
//! records an EPILOG trace for EXPERT; the `cone` crate's profiler
//! builds call-path profiles with synthetic hardware counters.
//!
//! The [`apps`] module ships the paper's workloads: a PESCAN-like
//! eigensolver skeleton with removable barriers, a SWEEP3D-like
//! wavefront sweep, and a generic stencil kernel.

pub mod apps;
pub mod error;
pub mod model;
pub mod monitor;
pub mod program;
pub mod sim;
pub mod tracer;

pub use error::SimError;
pub use model::{MachineModel, NetworkModel, NoiseModel};
pub use monitor::{ComputeWork, Fanout, Monitor, NullMonitor};
pub use program::{Op, Program, RegionInfo};
pub use sim::{simulate, SimReport};
pub use tracer::EpilogTracer;
