//! Property tests for the discrete-event engine: any well-formed
//! program (matched sends/receives, collective-aligned ranks, balanced
//! regions) simulates without deadlock, and the report obeys
//! conservation laws.

use proptest::prelude::*;

use epilog::CollectiveOp;
use simmpi::{simulate, ComputeWork, MachineModel, Monitor, NoiseModel, Op, Program, RegionInfo};

/// One communication round of a generated program. Construction
/// guarantees deadlock freedom: sends are eager, every receive has a
/// matching send appended before it in program order per channel, and
/// collectives always involve every rank.
#[derive(Clone, Debug)]
enum Round {
    /// Per-rank compute with the given per-rank millisecond durations.
    Compute(Vec<u8>),
    /// Ring exchange: everyone sends to the right, receives from the left.
    Ring { bytes: u16 },
    /// Point-to-point from rank a to rank b (a != b enforced at build).
    Pair { a: u8, b: u8, bytes: u16 },
    /// A collective over all ranks.
    Collective(u8),
}

fn round_strategy(ranks: usize) -> impl Strategy<Value = Round> {
    let r = ranks as u8;
    prop_oneof![
        proptest::collection::vec(0u8..20, ranks..=ranks).prop_map(Round::Compute),
        (any::<u16>()).prop_map(|bytes| Round::Ring { bytes }),
        (0..r, 0..r, any::<u16>()).prop_map(|(a, b, bytes)| Round::Pair { a, b, bytes }),
        (0u8..5).prop_map(Round::Collective),
    ]
}

fn build_program(ranks: usize, rounds: &[Round]) -> Program {
    let mut p = Program::new("generated", ranks);
    let main = p.add_region(RegionInfo::new("main", "gen.c", 1));
    let phase = p.add_region(RegionInfo::new("phase", "gen.c", 10));
    p.push_all(Op::Enter(main));
    for (tag, round) in rounds.iter().enumerate() {
        let tag = tag as i32;
        match round {
            Round::Compute(ms) => {
                // The strategy sizes the vector for the maximum rank
                // count; use the prefix that exists.
                for (rank, &m) in ms.iter().enumerate().take(ranks) {
                    p.push(rank, Op::Enter(phase));
                    p.push(
                        rank,
                        Op::Compute {
                            seconds: f64::from(m) * 1e-4,
                            work: ComputeWork::flop_heavy(1000),
                        },
                    );
                    p.push(rank, Op::Exit(phase));
                }
            }
            Round::Ring { bytes } => {
                for rank in 0..ranks {
                    p.push(
                        rank,
                        Op::Send {
                            to: (rank + 1) % ranks,
                            tag,
                            bytes: u64::from(*bytes),
                        },
                    );
                }
                for rank in 0..ranks {
                    p.push(
                        rank,
                        Op::Recv {
                            from: (rank + ranks - 1) % ranks,
                            tag,
                            bytes: u64::from(*bytes),
                        },
                    );
                }
            }
            Round::Pair { a, b, bytes } => {
                let (a, b) = (*a as usize % ranks, *b as usize % ranks);
                if a != b {
                    p.push(
                        a,
                        Op::Send {
                            to: b,
                            tag,
                            bytes: u64::from(*bytes),
                        },
                    );
                    p.push(
                        b,
                        Op::Recv {
                            from: a,
                            tag,
                            bytes: u64::from(*bytes),
                        },
                    );
                }
            }
            Round::Collective(k) => {
                let op = CollectiveOp::from_tag(k % 5).expect("tag in range");
                let root = if matches!(op, CollectiveOp::Broadcast | CollectiveOp::Reduce) {
                    0
                } else {
                    -1
                };
                p.push_all(Op::Collective {
                    op,
                    bytes: 64,
                    root,
                });
            }
        }
    }
    p.push_all(Op::Exit(main));
    p
}

#[derive(Default)]
struct Accountant {
    sends: usize,
    recvs: usize,
    recv_bytes: u64,
    send_bytes: u64,
    last_time_per_rank: Vec<(usize, f64)>,
}

impl Monitor for Accountant {
    fn on_send(&mut self, rank: usize, _s: f64, e: f64, _d: usize, _t: i32, bytes: u64) {
        self.sends += 1;
        self.send_bytes += bytes;
        self.last_time_per_rank.push((rank, e));
    }
    fn on_recv(
        &mut self,
        rank: usize,
        start: f64,
        end: f64,
        _src: usize,
        _tag: i32,
        bytes: u64,
        send_time: f64,
    ) {
        self.recvs += 1;
        self.recv_bytes += bytes;
        assert!(end >= start, "receive cannot end before it starts");
        assert!(
            end >= send_time,
            "data cannot arrive before the send was posted"
        );
        self.last_time_per_rank.push((rank, end));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed programs never deadlock, and every posted message is
    /// delivered (conservation of messages and bytes).
    #[test]
    fn generated_programs_simulate_cleanly(
        ranks in 2usize..6,
        rounds in proptest::collection::vec(round_strategy(5), 0..12),
        noise_amp in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let program = build_program(ranks, &rounds);
        program.validate().expect("generated programs are well-formed");
        let model = MachineModel {
            noise: NoiseModel { amplitude: noise_amp, seed },
            ..MachineModel::default()
        };
        let mut acc = Accountant::default();
        let report = simulate(&program, &model, &mut acc).expect("no deadlock possible");
        prop_assert_eq!(acc.sends, acc.recvs, "every send is consumed");
        prop_assert_eq!(acc.send_bytes, acc.recv_bytes);
        prop_assert_eq!(report.messages as usize, acc.recvs);
        // Per-rank observed times never exceed the final rank time.
        for (rank, t) in acc.last_time_per_rank {
            prop_assert!(t <= report.rank_times[rank] + 1e-12);
        }
        prop_assert!(report.elapsed >= 0.0);
    }

    /// Determinism: the same program + model produce bit-identical
    /// reports.
    #[test]
    fn simulation_is_deterministic(
        ranks in 2usize..5,
        rounds in proptest::collection::vec(round_strategy(4), 0..8),
        seed in any::<u64>(),
    ) {
        let program = build_program(ranks, &rounds);
        let model = MachineModel {
            noise: NoiseModel { amplitude: 0.1, seed },
            ..MachineModel::default()
        };
        let a = simulate(&program, &model, &mut simmpi::NullMonitor).unwrap();
        let b = simulate(&program, &model, &mut simmpi::NullMonitor).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The traced run of any generated program yields a valid trace that
    /// EXPERT-style replay preconditions hold for (balanced stacks).
    #[test]
    fn generated_traces_validate(
        ranks in 2usize..5,
        rounds in proptest::collection::vec(round_strategy(4), 0..8),
    ) {
        let program = build_program(ranks, &rounds);
        let mut tracer = simmpi::EpilogTracer::new("gen", 2);
        simulate(&program, &MachineModel::default(), &mut tracer).unwrap();
        let trace = tracer.into_trace();
        trace.validate().expect("tracer output is always a valid trace");
        // Codec round-trip as a bonus.
        let back = epilog::decode_trace(epilog::encode_trace(&trace)).unwrap();
        prop_assert_eq!(back, trace);
    }
}
