//! PAPI-like hardware counters, event sets, and the conflict model.
//!
//! The simulated performance-monitoring unit has a small number of
//! programmable counter slots; each logical counter needs specific
//! slots. An [`EventSet`] is measurable in one run only if no slot is
//! claimed twice. The slot assignment reproduces the paper's POWER4
//! restriction: `PAPI_FP_INS` and `PAPI_L1_DCM` both need slot 4, so
//! "POWER4 does not permit the combination of floating-point
//! instructions with level 1 data-cache misses in the same run".

use crate::error::ConeError;

/// Logical hardware counters the profiler can record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// Total cycles.
    TotCyc,
    /// Total instructions completed.
    TotIns,
    /// Floating-point instructions.
    FpIns,
    /// Level-1 data-cache accesses.
    L1Dca,
    /// Level-1 data-cache misses.
    L1Dcm,
}

impl CounterKind {
    /// All counters.
    pub const ALL: [CounterKind; 5] = [
        Self::TotCyc,
        Self::TotIns,
        Self::FpIns,
        Self::L1Dca,
        Self::L1Dcm,
    ];

    /// The PAPI preset name.
    pub fn papi_name(self) -> &'static str {
        match self {
            Self::TotCyc => "PAPI_TOT_CYC",
            Self::TotIns => "PAPI_TOT_INS",
            Self::FpIns => "PAPI_FP_INS",
            Self::L1Dca => "PAPI_L1_DCA",
            Self::L1Dcm => "PAPI_L1_DCM",
        }
    }

    /// Human-readable description.
    pub fn description(self) -> &'static str {
        match self {
            Self::TotCyc => "Total cycles",
            Self::TotIns => "Instructions completed",
            Self::FpIns => "Floating-point instructions",
            Self::L1Dca => "Level 1 data cache accesses",
            Self::L1Dcm => "Level 1 data cache misses",
        }
    }

    /// Hardware counter slots this counter occupies on the simulated
    /// PMU. `FpIns` and `L1Dcm` contend for slot 4 — the paper's
    /// POWER4 conflict.
    pub fn slots(self) -> &'static [u8] {
        match self {
            Self::TotCyc => &[0],
            Self::TotIns => &[1],
            Self::FpIns => &[4],
            Self::L1Dca => &[2],
            Self::L1Dcm => &[4],
        }
    }

    /// The counter this one is a subset of, defining the metric
    /// hierarchy of a profile (instructions include FP instructions,
    /// accesses include misses).
    pub fn parent(self) -> Option<CounterKind> {
        match self {
            Self::FpIns => Some(Self::TotIns),
            Self::L1Dcm => Some(Self::L1Dca),
            _ => None,
        }
    }
}

/// A named set of counters measured together in one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventSet {
    /// Set name (shows up in provenance).
    pub name: String,
    /// The counters, in declaration order.
    pub counters: Vec<CounterKind>,
}

impl EventSet {
    /// Creates and validates an event set.
    pub fn new(name: impl Into<String>, counters: Vec<CounterKind>) -> Result<Self, ConeError> {
        let set = Self {
            name: name.into(),
            counters,
        };
        set.validate()?;
        Ok(set)
    }

    /// The predefined floating-point set: cycles, instructions,
    /// FP instructions.
    pub fn flops() -> Self {
        Self::new(
            "FP",
            vec![CounterKind::TotCyc, CounterKind::TotIns, CounterKind::FpIns],
        )
        .expect("predefined set is conflict-free")
    }

    /// The predefined cache set: L1 accesses and misses.
    pub fn l1_cache() -> Self {
        Self::new("L1", vec![CounterKind::L1Dca, CounterKind::L1Dcm])
            .expect("predefined set is conflict-free")
    }

    /// Checks for slot conflicts and emptiness.
    pub fn validate(&self) -> Result<(), ConeError> {
        if self.counters.is_empty() {
            return Err(ConeError::EmptyEventSet);
        }
        let mut owner: std::collections::HashMap<u8, CounterKind> = Default::default();
        for &c in &self.counters {
            for &slot in c.slots() {
                if let Some(&prev) = owner.get(&slot) {
                    return Err(ConeError::ConflictingEventSet {
                        a: prev,
                        b: c,
                        slot,
                    });
                }
                owner.insert(slot, c);
            }
        }
        Ok(())
    }
}

/// Synthetic counter deltas for one observed activity, derived from the
/// workload model (one value per [`CounterKind::ALL`] entry).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CounterDeltas {
    values: [f64; 5],
}

impl CounterDeltas {
    fn index(kind: CounterKind) -> usize {
        CounterKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind is in ALL")
    }

    /// The delta of one counter.
    pub fn get(&self, kind: CounterKind) -> f64 {
        self.values[Self::index(kind)]
    }

    fn add(&mut self, kind: CounterKind, v: f64) {
        self.values[Self::index(kind)] += v;
    }

    /// Deltas of a compute phase of `seconds` under `work`, with a CPU
    /// clock of `clock_hz`.
    pub fn for_compute(seconds: f64, work: &simmpi::ComputeWork, clock_hz: f64) -> Self {
        let mut d = Self::default();
        d.add(CounterKind::TotCyc, seconds * clock_hz);
        let ins = work.flops as f64 * 2.0 + work.l1_accesses as f64 * 1.2;
        d.add(CounterKind::TotIns, ins);
        d.add(CounterKind::FpIns, work.flops as f64);
        d.add(CounterKind::L1Dca, work.l1_accesses as f64);
        d.add(
            CounterKind::L1Dcm,
            work.l1_accesses as f64 * work.l1_miss_rate,
        );
        d
    }

    /// Deltas of a message operation that copies `bytes` through the
    /// cache while occupying the CPU for `seconds` (waiting included —
    /// cycles tick while a process spins in `MPI_Recv`).
    ///
    /// Two sources of cache traffic: the buffer copy streams through L1
    /// (one access per 8-byte word, one miss per 64-byte line), and the
    /// progress-polling loop thrashes the cache for the whole duration
    /// of the call — which is why a rank that spends its time *waiting*
    /// inside `MPI_Recv` shows an above-average miss rate there (the
    /// paper's §5.2 observation).
    pub fn for_message(seconds: f64, bytes: u64, clock_hz: f64) -> Self {
        const POLL_ACCESSES_PER_SEC: f64 = 40e6;
        const POLL_MISSES_PER_SEC: f64 = 10e6;
        let mut d = Self::default();
        d.add(CounterKind::TotCyc, seconds * clock_hz);
        d.add(
            CounterKind::TotIns,
            bytes as f64 / 4.0 + 200.0 + seconds * clock_hz * 0.5,
        );
        d.add(
            CounterKind::L1Dca,
            bytes as f64 / 8.0 + 50.0 + seconds * POLL_ACCESSES_PER_SEC,
        );
        d.add(
            CounterKind::L1Dcm,
            bytes as f64 / 64.0 + 10.0 + seconds * POLL_MISSES_PER_SEC,
        );
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_sets_are_valid() {
        EventSet::flops().validate().unwrap();
        EventSet::l1_cache().validate().unwrap();
    }

    #[test]
    fn power4_conflict_reproduced() {
        let err = EventSet::new("bad", vec![CounterKind::FpIns, CounterKind::L1Dcm]).unwrap_err();
        assert!(matches!(
            err,
            ConeError::ConflictingEventSet { slot: 4, .. }
        ));
    }

    #[test]
    fn duplicate_counter_conflicts_with_itself() {
        let err = EventSet::new("dup", vec![CounterKind::TotCyc, CounterKind::TotCyc]).unwrap_err();
        assert!(matches!(err, ConeError::ConflictingEventSet { .. }));
    }

    #[test]
    fn empty_set_rejected() {
        assert!(matches!(
            EventSet::new("empty", vec![]),
            Err(ConeError::EmptyEventSet)
        ));
    }

    #[test]
    fn fp_and_l1_access_can_coexist() {
        // Only *misses* conflict with FP instructions.
        EventSet::new("ok", vec![CounterKind::FpIns, CounterKind::L1Dca]).unwrap();
    }

    #[test]
    fn hierarchy_parents() {
        assert_eq!(CounterKind::FpIns.parent(), Some(CounterKind::TotIns));
        assert_eq!(CounterKind::L1Dcm.parent(), Some(CounterKind::L1Dca));
        assert_eq!(CounterKind::TotCyc.parent(), None);
    }

    #[test]
    fn compute_deltas_follow_work() {
        let work = simmpi::ComputeWork {
            flops: 1000,
            l1_accesses: 2000,
            l1_miss_rate: 0.1,
        };
        let d = CounterDeltas::for_compute(1.0, &work, 1e9);
        assert_eq!(d.get(CounterKind::TotCyc), 1e9);
        assert_eq!(d.get(CounterKind::FpIns), 1000.0);
        assert_eq!(d.get(CounterKind::L1Dca), 2000.0);
        assert_eq!(d.get(CounterKind::L1Dcm), 200.0);
        assert!(d.get(CounterKind::TotIns) > d.get(CounterKind::FpIns));
    }

    #[test]
    fn message_deltas_stream_through_cache() {
        let d = CounterDeltas::for_message(0.001, 64 * 1024, 1e9);
        assert_eq!(
            d.get(CounterKind::L1Dca),
            64.0 * 1024.0 / 8.0 + 50.0 + 0.001 * 40e6
        );
        assert_eq!(
            d.get(CounterKind::L1Dcm),
            64.0 * 1024.0 / 64.0 + 10.0 + 0.001 * 10e6
        );
        assert_eq!(d.get(CounterKind::FpIns), 0.0);
        // Streaming copies have a much higher miss *rate* than dense
        // compute — the §5.2 "above-average cache miss rate in MPI calls".
        let miss_rate_msg = d.get(CounterKind::L1Dcm) / d.get(CounterKind::L1Dca);
        let dc =
            CounterDeltas::for_compute(0.001, &simmpi::ComputeWork::flop_heavy(1_000_000), 1e9);
        let miss_rate_compute = dc.get(CounterKind::L1Dcm) / dc.get(CounterKind::L1Dca);
        assert!(miss_rate_msg > miss_rate_compute);
    }
}
