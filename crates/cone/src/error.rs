//! Profiler error type.

use std::error::Error;
use std::fmt;

use crate::papi::CounterKind;

/// Errors raised by the profiler.
#[derive(Debug, Clone, PartialEq)]
pub enum ConeError {
    /// Two counters of an event set need the same hardware counter
    /// slot — the POWER4-style restriction that motivates the merge
    /// operator.
    ConflictingEventSet {
        /// First counter.
        a: CounterKind,
        /// Second counter.
        b: CounterKind,
        /// The contested hardware slot.
        slot: u8,
    },
    /// An event set must name at least one counter.
    EmptyEventSet,
    /// The profiler observed inconsistent enter/exit nesting (a bug in
    /// the monitored program or simulator).
    CorruptCallStack { rank: usize },
    /// Assembling the experiment failed a data-model constraint.
    Model(cube_model::ModelError),
}

impl fmt::Display for ConeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ConflictingEventSet { a, b, slot } => write!(
                f,
                "counters {} and {} cannot be measured in the same run \
                 (both need hardware counter slot {slot}); \
                 measure them in separate runs and merge the experiments",
                a.papi_name(),
                b.papi_name()
            ),
            Self::EmptyEventSet => write!(f, "event set contains no counters"),
            Self::CorruptCallStack { rank } => {
                write!(f, "rank {rank}: corrupt call stack during profiling")
            }
            Self::Model(e) => write!(f, "profile violates the data model: {e}"),
        }
    }
}

impl Error for ConeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cube_model::ModelError> for ConeError {
    fn from(e: cube_model::ModelError) -> Self {
        Self::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_message_suggests_merging() {
        let e = ConeError::ConflictingEventSet {
            a: CounterKind::FpIns,
            b: CounterKind::L1Dcm,
            slot: 4,
        };
        let s = e.to_string();
        assert!(s.contains("PAPI_FP_INS"));
        assert!(s.contains("PAPI_L1_DCM"));
        assert!(s.contains("merge"));
    }
}
