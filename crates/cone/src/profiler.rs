//! The call-graph profiler: a [`Monitor`] that accumulates wall time,
//! visits, and counter values per call path and emits a CUBE
//! experiment.

use std::collections::HashMap;

use cube_model::builder::ExperimentBuilder;
use cube_model::{Experiment, MetricId, RegionKind, Unit};
use epilog::CollectiveOp;
use simmpi::{ComputeWork, Monitor, Program};

use crate::error::ConeError;
use crate::papi::{CounterDeltas, CounterKind, EventSet};

/// Call-graph node identity: a user region or an MPI routine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum NodeKind {
    User(usize),
    Mpi(&'static str),
}

#[derive(Clone, Debug)]
struct Node {
    parent: Option<usize>,
    kind: NodeKind,
    children: HashMap<NodeKind, usize>,
    time: f64,
    visits: f64,
    counters: [f64; 5],
}

struct Frame {
    node: usize,
    enter: f64,
    child_time: f64,
}

#[derive(Default)]
struct RankState {
    nodes: Vec<Node>,
    stack: Vec<Frame>,
}

impl RankState {
    fn node(&mut self, parent: Option<usize>, kind: NodeKind) -> usize {
        if let Some(p) = parent {
            if let Some(&n) = self.nodes[p].children.get(&kind) {
                return n;
            }
        } else if let Some(n) = self
            .nodes
            .iter()
            .position(|n| n.parent.is_none() && n.kind == kind)
        {
            return n;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            parent,
            kind,
            children: HashMap::new(),
            time: 0.0,
            visits: 0.0,
            counters: [0.0; 5],
        });
        if let Some(p) = parent {
            self.nodes[p].children.insert(kind, id);
        }
        id
    }

    fn add_counters(&mut self, node: usize, d: &CounterDeltas) {
        for (i, &k) in CounterKind::ALL.iter().enumerate() {
            self.nodes[node].counters[i] += d.get(k);
        }
    }
}

/// The profiler. Attach it to [`simmpi::simulate`] as a monitor, then
/// call [`ConeProfiler::into_experiment`].
pub struct ConeProfiler {
    event_set: EventSet,
    clock_hz: f64,
    machine_name: String,
    nodes_on_machine: usize,
    program_name: String,
    regions: Vec<simmpi::RegionInfo>,
    ranks: Vec<RankState>,
    corrupt: Option<usize>,
}

impl ConeProfiler {
    /// Creates a profiler for a (conflict-free) event set.
    pub fn new(event_set: EventSet) -> Result<Self, ConeError> {
        event_set.validate()?;
        Ok(Self {
            event_set,
            clock_hz: 550e6, // the paper's 550 MHz cluster
            machine_name: "simulated cluster".into(),
            nodes_on_machine: 1,
            program_name: String::new(),
            regions: Vec::new(),
            ranks: Vec::new(),
            corrupt: None,
        })
    }

    /// Overrides the CPU clock used to derive cycle counts.
    pub fn with_clock_hz(mut self, clock_hz: f64) -> Self {
        self.clock_hz = clock_hz;
        self
    }

    /// Overrides the machine name and SMP node count of the emitted
    /// system dimension (ranks are placed round-robin).
    pub fn with_layout(mut self, machine: impl Into<String>, nodes: usize) -> Self {
        self.machine_name = machine.into();
        self.nodes_on_machine = nodes.max(1);
        self
    }

    /// The event set being measured.
    pub fn event_set(&self) -> &EventSet {
        &self.event_set
    }

    fn mpi_child(&mut self, rank: usize, name: &'static str) -> Option<usize> {
        let state = &mut self.ranks[rank];
        let parent = state.stack.last().map(|f| f.node);
        Some(state.node(parent, NodeKind::Mpi(name)))
    }

    fn attribute_mpi(&mut self, rank: usize, name: &'static str, start: f64, end: f64, bytes: u64) {
        let clock = self.clock_hz;
        if let Some(node) = self.mpi_child(rank, name) {
            let state = &mut self.ranks[rank];
            state.nodes[node].time += end - start;
            state.nodes[node].visits += 1.0;
            let d = CounterDeltas::for_message(end - start, bytes, clock);
            state.add_counters(node, &d);
            if let Some(f) = state.stack.last_mut() {
                f.child_time += end - start;
            }
        }
    }

    /// Consumes the profiler and builds the CUBE experiment.
    pub fn into_experiment(self) -> Result<Experiment, ConeError> {
        if let Some(rank) = self.corrupt {
            return Err(ConeError::CorruptCallStack { rank });
        }
        let mut b = ExperimentBuilder::new(format!(
            "CONE profile of {} (event set {})",
            self.program_name, self.event_set.name
        ));

        // Metrics: wall time, visits, and the event set's counters with
        // their inclusion hierarchy (parent first when both present).
        let time = b.def_metric("Time", Unit::Seconds, "Wall-clock time", None);
        let visits = b.def_metric("Visits", Unit::Occurrences, "Call-path visits", None);
        let mut metric_of_counter: HashMap<CounterKind, MetricId> = HashMap::new();
        let mut ordered = self.event_set.counters.clone();
        // Parents must be defined before children.
        ordered.sort_by_key(|c| c.parent().is_some());
        for &c in &ordered {
            let parent = c.parent().and_then(|p| metric_of_counter.get(&p).copied());
            let id = b.def_metric(c.papi_name(), Unit::Occurrences, c.description(), parent);
            metric_of_counter.insert(c, id);
        }

        // Program dimension: user regions plus the MPI routines seen.
        let mut module_of_file: HashMap<String, cube_model::ModuleId> = HashMap::new();
        let mut user_region_ids = Vec::new();
        for r in &self.regions {
            let module = *module_of_file
                .entry(r.file.clone())
                .or_insert_with(|| b.def_module(r.file.clone(), r.file.clone()));
            user_region_ids.push(b.def_region(
                r.name.clone(),
                module,
                RegionKind::Function,
                r.line,
                r.line,
            ));
        }
        let mpi_module = b.def_module("mpi", "mpi");
        let mut mpi_region_ids: HashMap<&'static str, cube_model::RegionId> = HashMap::new();
        for state in &self.ranks {
            for n in &state.nodes {
                if let NodeKind::Mpi(name) = n.kind {
                    mpi_region_ids.entry(name).or_insert_with(|| {
                        b.def_region(name, mpi_module, RegionKind::Function, 0, 0)
                    });
                }
            }
        }

        // Merge per-rank call trees into a global tree.
        let region_of = |kind: NodeKind| match kind {
            NodeKind::User(i) => user_region_ids[i],
            NodeKind::Mpi(name) => mpi_region_ids[name],
        };
        let mut site_of_region: HashMap<cube_model::RegionId, cube_model::CallSiteId> =
            HashMap::new();
        let mut global: HashMap<
            (Option<cube_model::CallNodeId>, cube_model::RegionId),
            cube_model::CallNodeId,
        > = HashMap::new();
        let mut node_maps: Vec<Vec<cube_model::CallNodeId>> = Vec::new();
        for state in &self.ranks {
            let mut map = Vec::with_capacity(state.nodes.len());
            for n in &state.nodes {
                let parent = n.parent.map(|p| map[p]);
                let region = region_of(n.kind);
                let key = (parent, region);
                let id = match global.get(&key) {
                    Some(&id) => id,
                    None => {
                        let site = *site_of_region.entry(region).or_insert_with(|| {
                            let (file, line) = match n.kind {
                                NodeKind::User(i) => {
                                    (self.regions[i].file.clone(), self.regions[i].line)
                                }
                                NodeKind::Mpi(_) => ("mpi".to_string(), 0),
                            };
                            b.def_call_site(file, line, region)
                        });
                        let id = b.def_call_node(site, parent);
                        global.insert(key, id);
                        id
                    }
                };
                map.push(id);
            }
            node_maps.push(map);
        }

        // System dimension: single-threaded ranks round-robin on nodes.
        let mach = b.def_machine(self.machine_name.clone());
        let node_ids: Vec<_> = (0..self.nodes_on_machine)
            .map(|i| b.def_node(format!("node{i}"), mach))
            .collect();
        let threads: Vec<_> = (0..self.ranks.len())
            .map(|r| {
                let p = b.def_process(format!("rank {r}"), r as i32, node_ids[r % node_ids.len()]);
                b.def_thread(format!("rank {r} thread 0"), 0, p)
            })
            .collect();

        // Severity.
        for (rank, state) in self.ranks.iter().enumerate() {
            let thread = threads[rank];
            for (ni, n) in state.nodes.iter().enumerate() {
                let cnode = node_maps[rank][ni];
                if n.time != 0.0 {
                    b.set_severity(time, cnode, thread, n.time);
                }
                if n.visits != 0.0 {
                    b.set_severity(visits, cnode, thread, n.visits);
                }
                for (i, &k) in CounterKind::ALL.iter().enumerate() {
                    if let Some(&metric) = metric_of_counter.get(&k) {
                        if n.counters[i] != 0.0 {
                            b.set_severity(metric, cnode, thread, n.counters[i]);
                        }
                    }
                }
            }
        }

        b.build().map_err(ConeError::from)
    }
}

impl Monitor for ConeProfiler {
    fn on_start(&mut self, program: &Program) {
        self.program_name = program.name.clone();
        self.regions = program.regions.clone();
        self.ranks = (0..program.ranks()).map(|_| RankState::default()).collect();
    }

    fn on_enter(&mut self, rank: usize, region: usize, time: f64) {
        let state = &mut self.ranks[rank];
        let parent = state.stack.last().map(|f| f.node);
        let node = state.node(parent, NodeKind::User(region));
        state.nodes[node].visits += 1.0;
        state.stack.push(Frame {
            node,
            enter: time,
            child_time: 0.0,
        });
    }

    fn on_exit(&mut self, rank: usize, _region: usize, time: f64) {
        let state = &mut self.ranks[rank];
        match state.stack.pop() {
            Some(frame) => {
                let duration = time - frame.enter;
                state.nodes[frame.node].time += duration - frame.child_time;
                if let Some(parent) = state.stack.last_mut() {
                    parent.child_time += duration;
                }
            }
            None => self.corrupt = Some(rank),
        }
    }

    fn on_compute(&mut self, rank: usize, start: f64, end: f64, work: &ComputeWork) {
        let d = CounterDeltas::for_compute(end - start, work, self.clock_hz);
        let state = &mut self.ranks[rank];
        if let Some(frame) = state.stack.last() {
            let node = frame.node;
            state.add_counters(node, &d);
        }
    }

    fn on_send(&mut self, rank: usize, start: f64, end: f64, _dest: usize, _tag: i32, bytes: u64) {
        self.attribute_mpi(rank, "MPI_Send", start, end, bytes);
    }

    fn on_recv(
        &mut self,
        rank: usize,
        start: f64,
        end: f64,
        _source: usize,
        _tag: i32,
        bytes: u64,
        _send_time: f64,
    ) {
        self.attribute_mpi(rank, "MPI_Recv", start, end, bytes);
    }

    fn on_collective(
        &mut self,
        rank: usize,
        op: CollectiveOp,
        start: f64,
        end: f64,
        bytes: u64,
        _root: i32,
    ) {
        self.attribute_mpi(rank, op.region_name(), start, end, bytes);
    }

    fn on_parallel(&mut self, rank: usize, start: f64, thread_ends: &[f64], work: &ComputeWork) {
        // CONE is a per-process profiler: the parallel region becomes a
        // call-graph child carrying the region's wall time and the total
        // CPU seconds' worth of counters across all threads.
        let clock = self.clock_hz;
        let wall = thread_ends.iter().copied().fold(start, f64::max) - start;
        let cpu_seconds: f64 = thread_ends.iter().map(|&e| e - start).sum();
        let state = &mut self.ranks[rank];
        let parent = state.stack.last().map(|f| f.node);
        let node = state.node(parent, NodeKind::Mpi("!$omp parallel"));
        state.nodes[node].time += wall;
        state.nodes[node].visits += 1.0;
        let d = CounterDeltas::for_compute(cpu_seconds, work, clock);
        state.add_counters(node, &d);
        if let Some(f) = state.stack.last_mut() {
            f.child_time += wall;
        }
    }

    fn on_finish(&mut self, rank: usize, _time: f64) {
        if !self.ranks[rank].stack.is_empty() {
            self.corrupt = Some(rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cube_model::aggregate::{call_value, metric_total, CallSelection, MetricSelection};
    use simmpi::apps::{pescan, sweep3d, PescanConfig, Sweep3dConfig};
    use simmpi::{simulate, MachineModel};

    fn profile(program: &Program, set: EventSet) -> Experiment {
        let mut prof = ConeProfiler::new(set).unwrap().with_layout("cluster", 4);
        simulate(program, &MachineModel::default(), &mut prof).unwrap();
        prof.into_experiment().unwrap()
    }

    fn total(e: &Experiment, name: &str) -> f64 {
        let m = e.metadata().find_metric(name).unwrap();
        metric_total(e, MetricSelection::inclusive(m))
    }

    #[test]
    fn fp_profile_of_pescan() {
        let e = profile(&pescan(&PescanConfig::default()), EventSet::flops());
        e.validate().unwrap();
        assert!(total(&e, "Time") > 0.0);
        assert!(total(&e, "PAPI_FP_INS") > 0.0);
        assert!(total(&e, "PAPI_TOT_INS") >= total(&e, "PAPI_FP_INS"));
        assert!(total(&e, "PAPI_TOT_CYC") > 0.0);
        // FP_INS is a child of TOT_INS in the metric tree.
        let md = e.metadata();
        let fp = md.find_metric("PAPI_FP_INS").unwrap();
        let ins = md.find_metric("PAPI_TOT_INS").unwrap();
        assert_eq!(md.metric(fp).parent, Some(ins));
        // The L1 counters are absent from this event set.
        assert!(md.find_metric("PAPI_L1_DCM").is_none());
    }

    #[test]
    fn l1_profile_of_sweep3d_concentrates_misses_at_recv() {
        let e = profile(&sweep3d(&Sweep3dConfig::default()), EventSet::l1_cache());
        e.validate().unwrap();
        let md = e.metadata();
        let dcm = md.find_metric("PAPI_L1_DCM").unwrap();
        let msel = MetricSelection::inclusive(dcm);
        // Misses attributed to MPI_Recv call paths.
        let recv_misses: f64 = md
            .call_node_ids()
            .filter(|&c| md.region(md.call_node_callee(c)).name == "MPI_Recv")
            .map(|c| call_value(&e, msel, CallSelection::exclusive(c)))
            .sum();
        let all = total(&e, "PAPI_L1_DCM");
        assert!(recv_misses > 0.0);
        assert!(
            recv_misses / all > 0.05,
            "recv misses {:.1}% too small",
            recv_misses / all * 100.0
        );
        // And the miss *rate* in MPI_Recv exceeds the overall rate.
        let dca = md.find_metric("PAPI_L1_DCA").unwrap();
        let recv_accesses: f64 = md
            .call_node_ids()
            .filter(|&c| md.region(md.call_node_callee(c)).name == "MPI_Recv")
            .map(|c| {
                call_value(
                    &e,
                    MetricSelection::inclusive(dca),
                    CallSelection::exclusive(c),
                )
            })
            .sum();
        let overall_rate = all / total(&e, "PAPI_L1_DCA");
        let recv_rate = recv_misses / recv_accesses;
        assert!(
            recv_rate > overall_rate,
            "recv miss rate {recv_rate:.3} not above average {overall_rate:.3}"
        );
    }

    #[test]
    fn call_tree_includes_mpi_routines() {
        let e = profile(
            &pescan(&PescanConfig {
                ranks: 4,
                iterations: 2,
                ..PescanConfig::default()
            }),
            EventSet::flops(),
        );
        let md = e.metadata();
        let names: std::collections::HashSet<String> = md
            .call_node_ids()
            .map(|c| md.region(md.call_node_callee(c)).name.clone())
            .collect();
        for expected in [
            "main",
            "solver",
            "fft_forward",
            "MPI_Alltoall",
            "MPI_Barrier",
            "MPI_Send",
            "MPI_Recv",
        ] {
            assert!(names.contains(expected), "missing call path {expected}");
        }
    }

    #[test]
    fn profile_time_approximates_run_time() {
        let program = pescan(&PescanConfig {
            ranks: 4,
            iterations: 3,
            ..PescanConfig::default()
        });
        let mut prof = ConeProfiler::new(EventSet::flops()).unwrap();
        let report = simulate(&program, &MachineModel::default(), &mut prof).unwrap();
        let e = prof.into_experiment().unwrap();
        let time_total = total(&e, "Time");
        let busy_total: f64 = report.rank_times.iter().sum();
        assert!(
            (time_total - busy_total).abs() / busy_total < 1e-6,
            "profile time {time_total} vs summed rank times {busy_total}"
        );
    }

    #[test]
    fn conflicting_set_cannot_construct_profiler() {
        let bad = EventSet {
            name: "bad".into(),
            counters: vec![CounterKind::FpIns, CounterKind::L1Dcm],
        };
        assert!(ConeProfiler::new(bad).is_err());
    }

    #[test]
    fn provenance_names_event_set() {
        let e = profile(
            &pescan(&PescanConfig {
                ranks: 2,
                iterations: 1,
                ..PescanConfig::default()
            }),
            EventSet::l1_cache(),
        );
        assert!(e.provenance().label().contains("event set L1"));
        assert!(e.provenance().label().contains("pescan"));
    }
}
