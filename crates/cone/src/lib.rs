//! # cone — call-graph profiling with hardware counters
//!
//! Reproduces CONE, the paper's call-graph profiler: it tracks the call
//! graph at run time and maps *wall-clock time and hardware-counter
//! data* onto full call paths, producing CUBE experiments.
//!
//! Two properties of the original setup matter for the paper's §5.2 and
//! are modeled here:
//!
//! * **Event sets with hardware conflicts** ([`papi`]): the counter
//!   hardware has a limited number of programmable slots, and some
//!   combinations are impossible — on POWER4, floating-point
//!   instructions cannot be counted together with level-1 data-cache
//!   misses. Measuring both therefore takes *two runs*, whose profiles
//!   are then combined with the CUBE **merge** operator.
//! * **Profiles are cheap** ([`profiler`]): unlike per-event counter
//!   recording in traces, a call-graph profile stores one row per call
//!   path, so collecting counters with CONE and trace data with EXPERT
//!   separately — and merging — avoids the trace-size blowup.
//!
//! ```
//! use cone::{ConeProfiler, EventSet};
//! use simmpi::apps::{stencil, StencilConfig};
//! use simmpi::{simulate, MachineModel};
//!
//! let program = stencil(&StencilConfig::default());
//! let mut profiler = ConeProfiler::new(EventSet::flops()).unwrap();
//! simulate(&program, &MachineModel::default(), &mut profiler).unwrap();
//! let experiment = profiler.into_experiment().unwrap();
//! assert!(experiment.metadata().find_metric("PAPI_FP_INS").is_some());
//! ```

pub mod error;
pub mod papi;
pub mod profiler;

pub use error::ConeError;
pub use papi::{CounterKind, EventSet};
pub use profiler::ConeProfiler;
